"""K-way tournament merge over per-shard result streams.

Shard results arrive as independently ordered streams of
``(document, sort_bytes)`` pairs — FLEX keys already serialized to their
order-preserving byte encoding, so global document order is exactly
lexicographic byte order and the merge never decodes a key.  A binary
heap keyed on the head of each stream yields the global order in
``O(total · log shards)`` comparisons while holding only one buffered
block per shard (the streams are lazy; upstream credit-window flow
control bounds what sits behind them).

Collection partitioning assigns whole documents to shards and subtree
partitioning hands each shard a disjoint owned key range, so duplicates
across streams indicate a partitioning bug rather than a normal overlap;
``dedup=True`` (the default) drops exact adjacent duplicates anyway,
mirroring the set semantics of the unsharded engine's union merge.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, TypeVar

Item = TypeVar("Item")


def kway_merge(
    streams: Iterable[Iterator[Item]], dedup: bool = True
) -> Iterator[Item]:
    """Merge already-sorted streams into one sorted stream.

    Items must be mutually comparable (the coordinator feeds
    ``(doc_name_bytes, sort_bytes)`` tuples).  With ``dedup`` the merged
    stream drops items equal to their predecessor — cheap because equal
    items are adjacent in merged order.
    """
    heap: list[tuple[Item, int, Iterator[Item]]] = []
    for order, stream in enumerate(iter(s) for s in streams):
        first = next(stream, None)
        if first is not None:
            heap.append((first, order, stream))
    heapq.heapify(heap)
    previous: Item | None = None
    while heap:
        item, order, stream = heap[0]
        successor = next(stream, None)
        if successor is None:
            heapq.heappop(heap)
        else:
            heapq.heapreplace(heap, (successor, order, stream))
        if dedup and previous is not None and item == previous:
            continue
        previous = item
        yield item
