"""The scatter-gather coordinator over a shard directory.

:class:`ShardedDatabase` opens a directory written by
:mod:`repro.sharding.partitioner`, spawns one worker process per shard
(each owning its shard's ``.mass`` files and engines), and evaluates
XPath queries fleet-wide:

* **Analyze once** — the expression is parsed at the coordinator; a
  top-level ``count(path)`` short-circuits to summing per-shard exact
  counts (the counted B+-trees answer those without materialising
  results).
* **Prune** — each shard's manifest carries its name vocabulary; the
  satisfiability analyzer proves, per shard, whether the query can
  possibly match there.  Unsatisfiable shards are never contacted
  (``shards_pruned`` in the outcome is the evidence).  The fan-out cost
  model (:func:`repro.cost.estimator.estimate_fanout`) then routes to a
  single shard when per-shard statistics show only one can contribute.
* **Scatter** — survivors get the query over the framed pipe protocol
  with the per-shard budget (deadline / page / result caps enforce
  *inside* each worker via its own ``QueryGuard``).
* **Gather** — result keys stream back as ``sort_bytes`` blocks under
  credit-window flow control; a k-way heap merge interleaves the
  per-shard streams into global ``(document, key)`` order while the
  coordinator buffers at most ``window`` blocks per shard.
* **Capture** — a worker that crashes mid-query (or outlives the gather
  deadline) is captured as a typed per-shard error in the outcome
  (``on_error="capture"`` semantics); surviving shards' results still
  merge, the outcome is marked partial, and the dead worker is respawned
  for the next query.  ``on_error="raise"`` re-raises the first shard
  error instead.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Iterator

from repro.analysis.satisfiability import SatisfiabilityAnalyzer, names_only_schema
from repro.cost.estimator import estimate_fanout
from repro.errors import (
    BudgetExceededError,
    ExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ShardingError,
    ShardProtocolError,
    ShardWorkerCrashError,
    TransientStorageError,
)
from repro.mass.flexkey import FlexKey, decode_sort_bytes
from repro.sharding import protocol
from repro.sharding.merge import kway_merge
from repro.sharding.partitioner import ShardManifest, ShardSpec, load_manifest
from repro.sharding.protocol import send_json
from repro.sharding.worker import worker_main
from repro.xpath import ast
from repro.xpath.parser import parse_xpath

#: Extra wall-clock grace the coordinator allows beyond the per-shard
#: query deadline before it declares a worker hung.  Workers enforce the
#: deadline themselves; the gather backstop only fires for crashed or
#: wedged processes.
GATHER_GRACE_S = 2.0

#: Gather backstop when the query carries no deadline of its own.
DEFAULT_GATHER_TIMEOUT_S = 60.0

#: Worker → coordinator error names mapped back to typed exceptions.
_ERROR_TYPES: dict[str, type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        QueryTimeoutError,
        BudgetExceededError,
        QueryCancelledError,
        TransientStorageError,
        ExecutionError,
        ShardingError,
    )
}


def revive_error(name: str, message: str) -> ReproError:
    """Best-effort reconstruction of a worker-side typed error.

    The worker ships ``(type name, message)`` over the pipe; the type is
    restored so callers can catch the same exceptions they would see
    in-process.  Structured constructor arguments (for example
    ``BudgetExceededError.resource``) do not survive the trip — only the
    type and the rendered message do.
    """
    cls = _ERROR_TYPES.get(name)
    if cls is None:
        return ExecutionError(f"{name}: {message}")
    try:
        # Classes with structured constructors reject a bare message —
        # TypeError for a wrong arity, ValueError when the message lands
        # in a numeric slot (QueryTimeoutError formats timeout_ms).
        return cls(message)  # type: ignore[call-arg]
    except (TypeError, ValueError):
        error = cls.__new__(cls)
        Exception.__init__(error, message)
        return error


def split_count_expression(expression: str) -> str | None:
    """``count(inner)`` at the top level → ``inner``; else ``None``."""
    try:
        tree = parse_xpath(expression)
    except ReproError:
        return None
    if (
        isinstance(tree, ast.FunctionCall)
        and tree.name == "count"
        and len(tree.args) == 1
        and isinstance(tree.args[0], (ast.LocationPath, ast.UnionExpr))
    ):
        return tree.args[0].unparse()
    return None


def main_path_names(expression: str) -> list[list[str]]:
    """Per union branch, the name-index names required on the main path.

    A shard lacking any one of a branch's names cannot produce results
    for that branch — the routing signal :func:`estimate_fanout` scores.
    Predicates are ignored (they may be disjunctive); the satisfiability
    analyzer covers those soundly.
    """
    try:
        tree = parse_xpath(expression)
    except ReproError:
        return []
    if isinstance(tree, ast.FunctionCall) and tree.args:
        tree = tree.args[0]
    branches: list[ast.LocationPath] = []
    if isinstance(tree, ast.UnionExpr):
        queue = list(tree.branches)
        while queue:
            node = queue.pop()
            if isinstance(node, ast.UnionExpr):
                queue.extend(node.branches)
            elif isinstance(node, ast.LocationPath):
                branches.append(node)
            else:
                return []  # a branch we cannot analyze: no routing signal
    elif isinstance(tree, ast.LocationPath):
        branches.append(tree)
    else:
        return []
    result = []
    for path in branches:
        names = []
        for step in path.steps:
            test = step.test
            name = getattr(test, "name", None)
            if name and name != "*":
                if step.axis is ast.Axis.ATTRIBUTE:
                    names.append(f"@{name}")
                else:
                    names.append(name)
        result.append(names)
    return result


# -- subtree-manifest safety ---------------------------------------------------

#: Axes whose result set spans the whole document from any context node;
#: a range-partitioned worker only sees its own slice, so these can
#: never evaluate correctly shard-locally.
_SPANNING_AXES = (ast.Axis.FOLLOWING, ast.Axis.PRECEDING)

#: Axes that select among a node's siblings — broken when the context
#: node sits at the split depth (its siblings may live on another shard).
_SIBLING_AXES = (ast.Axis.FOLLOWING_SIBLING, ast.Axis.PRECEDING_SIBLING)

#: Subtree split points sit between the document element's children, so
#: every node at depth <= _SPLIT_DEPTH may have siblings (or positional
#: peers) on another shard.  Complete subtrees hang below that depth.
_SPLIT_DEPTH = 2


def _iter_expr_nodes(node: ast.XPathNode):
    """Every node of a predicate/expression tree, including nested paths."""
    yield node
    if isinstance(node, ast.LocationPath):
        for step in node.steps:
            yield from _iter_expr_nodes(step)
    elif isinstance(node, ast.Step):
        for predicate in node.predicates:
            yield from _iter_expr_nodes(predicate)
    elif isinstance(node, (ast.Comparison, ast.AndExpr, ast.OrExpr, ast.BinaryOp)):
        yield from _iter_expr_nodes(node.left)
        yield from _iter_expr_nodes(node.right)
    elif isinstance(node, ast.Negate):
        yield from _iter_expr_nodes(node.operand)
    elif isinstance(node, ast.FunctionCall):
        for arg in node.args:
            yield from _iter_expr_nodes(arg)
    elif isinstance(node, ast.UnionExpr):
        for branch in node.branches:
            yield from _iter_expr_nodes(branch)
    elif isinstance(node, ast.PathExpr):
        yield from _iter_expr_nodes(node.primary)
        for predicate in node.predicates:
            yield from _iter_expr_nodes(predicate)
        for step in node.steps:
            yield from _iter_expr_nodes(step)


def _is_positional(predicate: ast.XPathNode) -> bool:
    """A bare number, or any ``position()``/``last()`` use inside."""
    if isinstance(predicate, ast.NumberLiteral):
        return True
    return any(
        isinstance(node, ast.FunctionCall) and node.name in ("position", "last")
        for node in _iter_expr_nodes(predicate)
    )


def _step_depths(
    axis: ast.Axis, lo: int, hi: int | None
) -> tuple[int, int | None]:
    """Attainable node-depth interval after one step from ``[lo, hi]``.

    ``hi=None`` means unbounded.  The analysis only needs to be sound
    (never under-approximate the interval), not tight.
    """
    if axis in (ast.Axis.CHILD, ast.Axis.ATTRIBUTE, ast.Axis.NAMESPACE):
        return lo + 1, None if hi is None else hi + 1
    if axis is ast.Axis.DESCENDANT:
        return lo + 1, None
    if axis is ast.Axis.DESCENDANT_OR_SELF:
        return lo, None
    if axis is ast.Axis.SELF or axis in _SIBLING_AXES:
        return lo, hi
    if axis is ast.Axis.PARENT:
        return max(lo - 1, 0), None if hi is None else max(hi - 1, 0)
    if axis is ast.Axis.ANCESTOR:
        return 0, None if hi is None else max(hi - 1, 0)
    if axis is ast.Axis.ANCESTOR_OR_SELF:
        return 0, hi
    return 0, None  # following / preceding: anywhere in the document


def _depth_may_reach_split(lo: int, hi: int | None) -> bool:
    return lo <= _SPLIT_DEPTH and (hi is None or hi >= _SPLIT_DEPTH)


def _scan_steps(
    steps: tuple[ast.Step, ...], lo: int, hi: int | None, hazards: list[str]
) -> None:
    for step in steps:
        axis = step.axis
        if axis in _SPANNING_AXES:
            hazards.append(
                f"{axis.value}:: spans the whole document, which is split "
                "across shards"
            )
        node_lo, node_hi = _step_depths(axis, lo, hi)
        if axis in _SIBLING_AXES and _depth_may_reach_split(lo, hi):
            hazards.append(
                f"{axis.value}:: from a node at or above the split depth "
                f"({_SPLIT_DEPTH}) may cross a shard boundary"
            )
        if any(_is_positional(predicate) for predicate in step.predicates):
            if axis in (ast.Axis.DESCENDANT, ast.Axis.DESCENDANT_OR_SELF):
                hazards.append(
                    f"positional predicate on {axis.value}:: counts over the "
                    "whole document, which is split across shards"
                )
            elif _depth_may_reach_split(node_lo, node_hi):
                hazards.append(
                    "positional predicate may select among nodes at or "
                    f"above the split depth ({_SPLIT_DEPTH}), whose peers "
                    "may live on another shard"
                )
        for predicate in step.predicates:
            _scan_expr(predicate, node_lo, node_hi, hazards)
        lo, hi = node_lo, node_hi


def _scan_expr(
    node: ast.XPathNode, lo: int, hi: int | None, hazards: list[str]
) -> None:
    if isinstance(node, ast.LocationPath):
        if node.absolute:
            _scan_steps(node.steps, 0, 0, hazards)
        else:
            _scan_steps(node.steps, lo, hi, hazards)
    elif isinstance(node, (ast.Comparison, ast.AndExpr, ast.OrExpr, ast.BinaryOp)):
        _scan_expr(node.left, lo, hi, hazards)
        _scan_expr(node.right, lo, hi, hazards)
    elif isinstance(node, ast.Negate):
        _scan_expr(node.operand, lo, hi, hazards)
    elif isinstance(node, ast.FunctionCall):
        for arg in node.args:
            _scan_expr(arg, lo, hi, hazards)
    elif isinstance(node, ast.UnionExpr):
        for branch in node.branches:
            _scan_expr(branch, lo, hi, hazards)
    elif isinstance(node, ast.PathExpr):
        _scan_expr(node.primary, lo, hi, hazards)
        # The filter's result depth is unknown: scan conservatively.
        for predicate in node.predicates:
            _scan_expr(predicate, 0, None, hazards)
        _scan_steps(node.steps, 0, None, hazards)


def subtree_hazards(expression: str) -> list[str]:
    """Constructs that break shard-local evaluation on a subtree manifest.

    Range partitioning splits one document at depth-``_SPLIT_DEPTH``
    child boundaries, so each worker evaluates against only its slice of
    the document element's children.  Three construct families would
    silently merge wrong answers and are detected here (by a
    conservative attainable-depth analysis) so the coordinator can
    reject them instead:

    * positional predicates (``[2]``, ``position()``, ``last()``) that
      may select among nodes at or above the split depth, or that count
      over a document-spanning axis — each shard would number its local
      slice from 1;
    * sibling axes from context nodes at or above the split depth — the
      siblings may live on another shard;
    * ``following::`` / ``preceding::`` anywhere — by definition they
      span the whole document.

    Collection-partitioned manifests never split inside a document and
    are unaffected.  Returns human-readable reasons, empty when safe.
    """
    try:
        tree = parse_xpath(expression)
    except ReproError:
        return []  # let evaluation surface the parse error itself
    hazards: list[str] = []
    _scan_expr(tree, 0, 0, hazards)
    return hazards


# -- outcome model -------------------------------------------------------------


@dataclass
class ShardStatus:
    """One shard's fate for one query."""

    shard_id: int
    #: ``ok`` | ``pruned`` | ``skipped`` | ``error`` | ``crashed`` | ``timeout``
    state: str
    reason: str = ""
    error: ReproError | None = None
    keys: int = 0
    #: ``(document, error type name, message)`` captured per document.
    doc_errors: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def contacted(self) -> bool:
        return self.state not in ("pruned", "skipped")


@dataclass
class ShardedOutcome:
    """What a fleet-wide evaluation produced.

    For key queries ``rows`` is the merged result in global
    ``(document, key)`` order; ``keys()`` decodes them back to
    :class:`FlexKey`.  For a short-circuited ``count()`` only ``count``
    and ``per_document_counts`` are populated.
    """

    expression: str
    mode: str  # "keys" | "count"
    rows: list[tuple[str, bytes]] = field(default_factory=list)
    count: float | None = None
    per_document_counts: dict[str, float] = field(default_factory=dict)
    shard_status: list[ShardStatus] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    #: Each contacted shard's work counters (the fleet metrics satellite:
    #: per-worker ``io_snapshot`` totals, keyed by shard id).  Their max
    #: is the scatter's critical path; their sum equals ``counters``.
    per_shard_counters: dict[int, dict[str, int]] = field(default_factory=dict)
    route: str = "scatter"
    route_reason: str = ""
    elapsed_s: float = 0.0

    def __len__(self) -> int:
        if self.mode == "count":
            return int(self.count or 0)
        return len(self.rows)

    def keys(self) -> list[tuple[str, FlexKey]]:
        return [(doc, decode_sort_bytes(blob)) for doc, blob in self.rows]

    def labels(self) -> list[str]:
        if self.mode == "count":
            return [f"count() = {self.count:g}"]
        return [f"{doc}:{decode_sort_bytes(blob).pretty()}" for doc, blob in self.rows]

    @property
    def shards_contacted(self) -> int:
        return sum(1 for status in self.shard_status if status.contacted)

    @property
    def shards_pruned(self) -> int:
        return sum(1 for status in self.shard_status if not status.contacted)

    @property
    def failures(self) -> list[ShardStatus]:
        return [
            status
            for status in self.shard_status
            if status.error is not None or status.doc_errors
        ]

    @property
    def partial(self) -> bool:
        return bool(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    def first_error(self) -> ReproError | None:
        for status in self.shard_status:
            if status.error is not None:
                return status.error
            if status.doc_errors:
                doc, name, message = status.doc_errors[0]
                return revive_error(name, f"document {doc!r}: {message}")
        return None

    def describe(self) -> str:
        lines = [
            f"{self.expression}: {self.mode} via {self.route} "
            f"({self.shards_contacted} contacted, {self.shards_pruned} pruned)"
            + (f" — {self.route_reason}" if self.route_reason else "")
        ]
        if self.mode == "count":
            lines.append(f"  count = {self.count:g}")
        else:
            lines.append(f"  {len(self.rows)} result keys")
        for status in self.shard_status:
            line = f"  shard {status.shard_id}: {status.state}"
            if status.reason:
                line += f" ({status.reason})"
            if status.state == "ok":
                line += f", {status.keys} keys"
            if status.error is not None:
                line += f" [{type(status.error).__name__}: {status.error}]"
            lines.append(line)
            for doc, name, message in status.doc_errors:
                lines.append(f"    {doc}: {name}: {message}")
        return "\n".join(lines)


# -- worker handles ------------------------------------------------------------


class _WorkerHandle:
    """One shard's child process and its coordinator-side pipe end."""

    def __init__(self, spec: ShardSpec, directory: str, fault_config: dict):
        self.spec = spec
        self.directory = directory
        self.fault_config = fault_config
        self.process: multiprocessing.Process | None = None
        self.conn = None
        self.respawns = -1  # first spawn brings it to 0
        self.spawn()

    def spawn(self) -> None:
        parent, child = multiprocessing.Pipe(duplex=True)
        config = {
            "shard_id": self.spec.shard_id,
            "directory": self.directory,
            "documents": self.spec.documents,
            "range_lo": self.spec.range_lo,
            "range_hi": self.spec.range_hi,
            **self.fault_config,
        }
        # Decorrelate the workers' chaos schedules: same base seed, but
        # each shard (and each respawn) draws its own failure sequence.
        config["fault_seed"] = (
            int(config.get("fault_seed", 0))
            + 1000 * self.spec.shard_id
            + (self.respawns + 1)
        )
        process = multiprocessing.Process(
            target=worker_main,
            args=(child, config),
            name=f"repro-shard-{self.spec.shard_id}",
            daemon=True,
        )
        process.start()
        child.close()
        self.process = process
        self.conn = parent
        self.respawns += 1
        # The hello doubles as a liveness and protocol-version handshake.
        if not parent.poll(30.0):
            raise ShardWorkerCrashError(self.spec.shard_id, "no hello from worker")
        kind, payload = protocol.recv_frame(parent)
        if kind != "json" or payload.get("op") != "hello":
            raise ShardProtocolError(
                f"shard {self.spec.shard_id}: expected hello, got {payload!r}"
            )
        if payload.get("version") != protocol.PROTOCOL_VERSION:
            raise ShardProtocolError(
                f"shard {self.spec.shard_id}: protocol version "
                f"{payload.get('version')} != {protocol.PROTOCOL_VERSION}"
            )

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def respawn(self) -> None:
        self.shutdown(grace_s=0.5)
        self.spawn()

    def shutdown(self, grace_s: float = 5.0) -> None:
        if self.conn is not None:
            try:
                send_json(self.conn, {"op": "close"})
            except (OSError, ValueError):
                pass
        if self.process is not None:
            self.process.join(timeout=grace_s)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=grace_s)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=grace_s)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        self.conn = None
        self.process = None


class _ShardRun:
    """Per-query, per-shard gather state feeding the k-way merge."""

    def __init__(
        self,
        handle: _WorkerHandle,
        request_id: int,
        status: ShardStatus,
        budget_ms: float | None = None,
    ):
        self.handle = handle
        self.request_id = request_id
        self.status = status
        self.budget_ms = budget_ms
        self.blocks: deque[deque[tuple[str, bytes]]] = deque()
        self.current_doc: str | None = None
        self.finished = False
        #: A tainted worker (hung past the gather deadline) may have
        #: stale frames in its pipe; it is replaced after the query.
        self.tainted = False
        self.counters: dict[str, int] = {}
        self.count_total: float | None = None
        self.per_doc: dict[str, float] = {}

    def fail(self, error: ReproError, state: str) -> None:
        self.status.error = error
        self.status.state = state
        self.finished = True

    def has_items(self) -> bool:
        return bool(self.blocks)

    def pop_item(self) -> tuple[str, bytes]:
        head = self.blocks[0]
        item = head.popleft()
        if not head:
            self.blocks.popleft()
            # Block fully consumed: grant the worker one more credit.
            if not self.finished and self.handle.conn is not None:
                try:
                    send_json(
                        self.handle.conn,
                        {"op": "credit", "id": self.request_id, "n": 1},
                    )
                except (OSError, ValueError):
                    pass
        return item


# -- the coordinator -----------------------------------------------------------


class ShardedDatabase:
    """A shard directory fronted by one worker process per shard."""

    def __init__(
        self,
        directory: str,
        fault_rates: dict[str, float] | None = None,
        fault_seed: int = 0,
        fault_max_failures: int | None = None,
        gather_timeout_s: float = DEFAULT_GATHER_TIMEOUT_S,
    ):
        self._closed = False
        self.workers: list[_WorkerHandle] = []
        self._workers_by_id: dict[int, _WorkerHandle] = {}
        self.manifest: ShardManifest = load_manifest(directory)
        self.directory = directory
        self.gather_timeout_s = gather_timeout_s
        self._request_id = 0
        self._analyzers: dict[int, SatisfiabilityAnalyzer] = {}
        self._fleet_totals: dict[str, int] = {}
        self._queries = 0
        self._crashes_captured = 0
        fault_config = {
            "fault_rates": dict(fault_rates or {}),
            "fault_seed": fault_seed,
            "fault_max_failures": fault_max_failures,
        }
        try:
            for spec in self.manifest.shards:
                handle = _WorkerHandle(spec, directory, fault_config)
                self.workers.append(handle)
                # Shards are addressed by manifest id, never list position
                # — a hand-edited or reordered manifest must still route
                # each query to the worker that owns the shard.
                self._workers_by_id[spec.shard_id] = handle
        except ReproError:
            self.close()  # don't leak the workers that did spawn
            raise

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker; idempotent, leaves no child running."""
        if self._closed:
            return
        self._closed = True
        for handle in self.workers:
            handle.shutdown()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort: tests use close() explicitly
        try:
            self.close()
        except (OSError, ValueError, RuntimeError, ReproError):
            pass

    def _ensure_open(self) -> None:
        if self._closed:
            raise ShardingError("sharded database is closed")

    def _worker(self, shard_id: int) -> _WorkerHandle:
        handle = self._workers_by_id.get(shard_id)
        if handle is None:
            raise ShardingError(f"manifest names no shard with id {shard_id}")
        return handle

    def _check_supported(self, expression: str) -> None:
        """Reject constructs a range-partitioned fleet cannot answer."""
        if not self.manifest.is_range_partitioned:
            return
        hazards = subtree_hazards(expression)
        if hazards:
            raise ShardingError(
                f"{expression!r} is not supported on a subtree-partitioned "
                f"shard directory: {hazards[0]}.  Positional predicates, "
                "sibling axes near the split depth, and following::/"
                "preceding:: would evaluate against one shard's slice of "
                "the document; evaluate against the unsharded store instead."
            )

    # -- pruning / routing --------------------------------------------------

    def _analyzer(self, spec: ShardSpec) -> SatisfiabilityAnalyzer:
        analyzer = self._analyzers.get(spec.shard_id)
        if analyzer is None:
            root = spec.roots[0] if len(spec.roots) == 1 else ""
            schema = names_only_schema(
                frozenset(spec.elements), frozenset(spec.attributes), root=root
            )
            analyzer = SatisfiabilityAnalyzer(schema)
            self._analyzers[spec.shard_id] = analyzer
        return analyzer

    def plan_route(self, expression: str) -> tuple[list[ShardStatus], list[int]]:
        """Decide, per shard, prune vs contact; returns statuses + targets."""
        statuses: list[ShardStatus] = []
        survivors: list[ShardSpec] = []
        try:
            tree = parse_xpath(expression)
        except ReproError:
            tree = None
        if isinstance(tree, ast.FunctionCall) and tree.args:
            sat_target = tree.args[0]
        else:
            sat_target = tree
        for spec in self.manifest.shards:
            if spec.total_nodes == 0:
                statuses.append(
                    ShardStatus(spec.shard_id, "pruned", reason="empty shard")
                )
                continue
            if sat_target is not None and isinstance(
                sat_target, (ast.LocationPath, ast.UnionExpr, ast.PathExpr)
            ):
                report = self._analyzer(spec).analyze(sat_target)
                if not report.satisfiable:
                    reason = report.reasons[0] if report.reasons else "unsatisfiable"
                    statuses.append(
                        ShardStatus(spec.shard_id, "pruned", reason=reason)
                    )
                    continue
            statuses.append(ShardStatus(spec.shard_id, "ok"))
            survivors.append(spec)
        decision = estimate_fanout(
            {spec.shard_id: spec.name_counts for spec in survivors},
            main_path_names(expression),
        )
        dropped = {spec.shard_id for spec in survivors} - set(decision.shard_ids)
        for status in statuses:
            if status.shard_id in dropped:
                status.state = "skipped"
                status.reason = "fan-out model: no matching names"
        return statuses, list(decision.shard_ids)

    # -- evaluation ---------------------------------------------------------

    def evaluate(
        self,
        expression: str,
        timeout_ms: float | None = None,
        max_pages: int | None = None,
        max_results: int | None = None,
        on_error: str = "capture",
        block_keys: int = protocol.DEFAULT_BLOCK_KEYS,
        window: int = protocol.DEFAULT_WINDOW,
    ) -> ShardedOutcome:
        """Scatter one query, gather and merge; budgets apply per shard."""
        self._ensure_open()
        self._check_supported(expression)
        started = time.monotonic()
        self._queries += 1
        self._request_id += 1
        request_id = self._request_id
        inner = split_count_expression(expression)
        mode = "count" if inner is not None else "keys"
        statuses, targets = self.plan_route(expression)
        outcome = ShardedOutcome(expression=expression, mode=mode)
        outcome.shard_status = statuses
        if len(targets) <= 1:
            outcome.route = "single" if targets else "empty"
        outcome.route_reason = (
            f"{len(targets)}/{self.manifest.shard_count} shards after "
            "pruning + fan-out costing"
        )
        by_id = {status.shard_id: status for status in statuses}
        runs: list[_ShardRun] = []
        for shard_id in targets:
            handle = self._worker(shard_id)
            status = by_id[shard_id]
            if not handle.alive:
                try:
                    handle.respawn()
                except ReproError as error:
                    status.error = ShardWorkerCrashError(shard_id, str(error))
                    status.state = "crashed"
                    continue
            run = _ShardRun(handle, request_id, status, budget_ms=timeout_ms)
            message = {
                "op": "query",
                "id": request_id,
                "expr": expression,
                "mode": mode,
                "timeout_ms": timeout_ms,
                "max_pages": max_pages,
                "max_results": max_results,
                "block": block_keys,
                "window": window,
            }
            if inner is not None:
                message["inner"] = inner
            try:
                send_json(handle.conn, message)
            except (OSError, ValueError) as error:
                run.fail(ShardWorkerCrashError(shard_id, str(error)), "crashed")
            runs.append(run)
        deadline = started + (
            timeout_ms / 1000.0 + GATHER_GRACE_S
            if timeout_ms is not None
            else self.gather_timeout_s
        )
        if mode == "count":
            self._gather_counts(runs, deadline, outcome)
        else:
            outcome.rows = list(
                kway_merge([self._shard_stream(run, runs, deadline) for run in runs])
            )
        for run in runs:
            if isinstance(run.status.error, ShardWorkerCrashError):
                self._crashes_captured += 1
            if run.tainted or isinstance(run.status.error, ShardWorkerCrashError):
                try:
                    run.handle.respawn()
                except ReproError:
                    pass  # next query will retry the respawn
            if run.counters:
                outcome.per_shard_counters[run.status.shard_id] = dict(run.counters)
            for counter, value in run.counters.items():
                outcome.counters[counter] = outcome.counters.get(counter, 0) + value
        for counter, value in outcome.counters.items():
            self._fleet_totals[counter] = self._fleet_totals.get(counter, 0) + value
        outcome.elapsed_s = time.monotonic() - started
        if on_error == "raise":
            error = outcome.first_error()
            if error is not None:
                raise error
        return outcome

    # -- gather machinery ---------------------------------------------------

    def _shard_stream(
        self, run: _ShardRun, runs: list[_ShardRun], deadline: float
    ) -> Iterator[tuple[str, bytes]]:
        """Lazy per-shard item stream; pumps the shared pipes on demand."""
        while True:
            while not run.has_items():
                if run.finished:
                    return
                self._pump(runs, deadline)
            yield run.pop_item()

    def _pump(self, runs: list[_ShardRun], deadline: float) -> None:
        """Receive at least one frame for *some* unfinished run."""
        active = {
            run.handle.conn: run
            for run in runs
            if not run.finished and run.handle.conn is not None
        }
        if not active:
            return
        remaining = deadline - time.monotonic()
        ready = connection_wait(list(active), max(0.0, remaining)) if remaining > 0 else []
        if not ready:
            # Backstop deadline: every unfinished shard is declared hung.
            for run in active.values():
                try:
                    send_json(run.handle.conn, {"op": "cancel", "id": run.request_id})
                except (OSError, ValueError):
                    pass
                budget = run.budget_ms or self.gather_timeout_s * 1000.0
                run.fail(QueryTimeoutError(budget), "timeout")
                run.tainted = True  # pipe may hold stale frames: replace it
            return
        for conn in ready:
            run = active[conn]
            try:
                kind, payload = protocol.recv_frame(conn)
            except (EOFError, OSError):
                run.fail(
                    ShardWorkerCrashError(
                        run.status.shard_id,
                        f"pipe closed (exit code {run.handle.process.exitcode})"
                        if run.handle.process is not None
                        else "pipe closed",
                    ),
                    "crashed",
                )
                continue
            except ShardProtocolError as error:
                run.fail(error, "error")
                continue
            self._apply_frame(run, kind, payload)

    def _apply_frame(self, run: _ShardRun, kind: str, payload) -> None:
        if kind == "block":
            request_id, keys = payload
            if request_id != run.request_id:
                return  # straggler from a cancelled request
            doc = run.current_doc or ""
            run.blocks.append(deque((doc, blob) for blob in keys))
            run.status.keys += len(keys)
            return
        op = payload.get("op")
        if payload.get("id") not in (None, run.request_id):
            return  # stale control message
        if op == "doc":
            run.current_doc = payload.get("doc", "")
        elif op == "doc_error":
            run.status.doc_errors.append(
                (
                    payload.get("doc", ""),
                    payload.get("error", "ExecutionError"),
                    payload.get("message", ""),
                )
            )
        elif op == "count_result":
            run.count_total = float(payload.get("total", 0.0))
            run.per_doc = {
                doc: float(value)
                for doc, value in (payload.get("per_doc") or {}).items()
            }
            for entry in payload.get("errors") or ():
                run.status.doc_errors.append(
                    (
                        entry.get("doc", ""),
                        entry.get("error", "ExecutionError"),
                        entry.get("message", ""),
                    )
                )
        elif op == "done":
            run.counters = {
                str(k): int(v) for k, v in (payload.get("counters") or {}).items()
            }
            run.finished = True

    def _gather_counts(
        self, runs: list[_ShardRun], deadline: float, outcome: ShardedOutcome
    ) -> None:
        while any(not run.finished for run in runs):
            self._pump(runs, deadline)
        total = 0.0
        for run in runs:
            if run.count_total is None:
                continue
            total += run.count_total
            for doc, value in run.per_doc.items():
                outcome.per_document_counts[doc] = (
                    outcome.per_document_counts.get(doc, 0.0) + value
                )
        outcome.count = total

    # -- inspection ---------------------------------------------------------

    def explain(self, expression: str, timeout_s: float = 30.0) -> str:
        """Routing decision plus each contacted shard's plan."""
        self._ensure_open()
        self._check_supported(expression)
        statuses, targets = self.plan_route(expression)
        lines = [f"route: {len(targets)}/{self.manifest.shard_count} shards"]
        for status in statuses:
            lines.append(
                f"  shard {status.shard_id}: "
                + ("contact" if status.shard_id in targets else status.state)
                + (f" ({status.reason})" if status.reason else "")
            )
        sections = ["\n".join(lines)]
        self._request_id += 1
        request_id = self._request_id
        deadline = time.monotonic() + timeout_s
        for shard_id in targets:
            handle = self._worker(shard_id)
            if not handle.alive:
                continue
            try:
                send_json(
                    handle.conn,
                    {"op": "explain", "id": request_id, "expr": expression},
                )
                text = None
                while text is None and time.monotonic() < deadline:
                    if not handle.conn.poll(deadline - time.monotonic()):
                        break
                    kind, payload = protocol.recv_frame(handle.conn)
                    if kind == "json" and payload.get("op") == "explained":
                        text = payload.get("text", "")
                if text is not None:
                    sections.append(f"shard {shard_id}:\n{text}")
            except (EOFError, OSError, ShardProtocolError):
                sections.append(f"shard {shard_id}: worker unavailable")
        return "\n\n".join(sections)

    def stats(self) -> dict:
        """Fleet-level metrics: cumulative counters, crash/respawn counts."""
        return {
            "shards": self.manifest.shard_count,
            "scheme": self.manifest.scheme,
            "documents": len(self.manifest.document_names()),
            "total_nodes": self.manifest.total_nodes,
            "queries": self._queries,
            "crashes_captured": self._crashes_captured,
            "respawns": sum(handle.respawns for handle in self.workers),
            "workers_alive": sum(1 for handle in self.workers if handle.alive),
            "fleet_counters": dict(self._fleet_totals),
        }

    def ping(self, timeout_s: float = 5.0) -> dict[int, bool]:
        """Liveness probe per shard."""
        self._ensure_open()
        alive: dict[int, bool] = {}
        for handle in self.workers:
            ok = False
            if handle.alive and handle.conn is not None:
                try:
                    send_json(handle.conn, {"op": "ping"})
                    if handle.conn.poll(timeout_s):
                        kind, payload = protocol.recv_frame(handle.conn)
                        ok = kind == "json" and payload.get("op") == "pong"
                except (EOFError, OSError, ShardProtocolError):
                    ok = False
            alive[handle.spec.shard_id] = ok
        return alive
