"""Serving bridge: a sharded database behind the TCP frontend.

:class:`ShardQueryServer` gives a :class:`ShardedDatabase` the same
evaluate/stats surface that :class:`repro.serving.frontend.TcpFrontend`
expects from a :class:`repro.serving.server.QueryServer`, so ``repro
serve --shard-dir`` fronts a whole worker fleet with the existing line
protocol — clients cannot tell whether one engine or eight processes
answered.

The coordinator's pipes are single-owner, so fleet evaluation is
serialized under a lock; concurrency *within* a query comes from the
worker processes.  Failures keep ``on_error="capture"`` semantics: a
crashed worker or a per-document error surfaces as a typed, partial
:class:`~repro.serving.server.QueryOutcome` instead of a hung socket.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ReproError, ServerClosedError
from repro.serving.server import QueryOutcome
from repro.sharding.coordinator import ShardedDatabase, ShardedOutcome


class ShardQueryServer:
    """Adapts a :class:`ShardedDatabase` to the serving frontends."""

    def __init__(self, database: ShardedDatabase):
        self.database = database
        self._lock = threading.Lock()
        self._closed = False
        self._served = 0

    # -- QueryServer surface -------------------------------------------------

    def evaluate(
        self,
        expression: str,
        timeout_ms: float | None = None,
        max_pages: int | None = None,
        max_results: int | None = None,
        on_error: str = "capture",
        **_ignored,
    ) -> QueryOutcome:
        started = time.monotonic()
        if self._closed:
            error = ServerClosedError("shard server is closed")
            if on_error == "raise":
                raise error
            return QueryOutcome(expression=expression, ok=False, error=error)
        queued = time.monotonic()
        with self._lock:
            queued_s = time.monotonic() - queued
            try:
                outcome = self.database.evaluate(
                    expression,
                    timeout_ms=timeout_ms,
                    max_pages=max_pages,
                    max_results=max_results,
                    on_error="capture",
                )
            except ReproError as error:
                if on_error == "raise":
                    raise
                return QueryOutcome(
                    expression=expression,
                    ok=False,
                    error=error,
                    queued_s=queued_s,
                    service_s=time.monotonic() - started,
                )
            self._served += 1
        return self._to_outcome(outcome, queued_s, started, on_error)

    def _to_outcome(
        self,
        outcome: ShardedOutcome,
        queued_s: float,
        started: float,
        on_error: str,
    ) -> QueryOutcome:
        error = outcome.first_error()
        if error is not None and on_error == "raise":
            raise error
        return QueryOutcome(
            expression=outcome.expression,
            ok=outcome.ok,
            epoch=0,  # shard stores are immutable once built
            result=outcome if outcome.ok or outcome.rows else None,
            error=error,
            partial=outcome.partial,
            queued_s=queued_s,
            service_s=time.monotonic() - started,
        )

    def stats(self) -> dict:
        data = self.database.stats()
        data["served"] = self._served
        data["closed"] = self._closed
        return data

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self.database.close()

    def __enter__(self) -> "ShardQueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
