"""Partitioned collections with multiprocess scatter-gather execution.

ROADMAP item 2: shard a database of documents (or one huge document split
by FLEX-key subtree ranges) across ``multiprocessing`` worker processes,
each owning its own crash-safe ``.mass`` files and
:class:`~repro.engine.engine.VamanaEngine`.  A coordinator analyzes the
query once, prunes shards that provably cannot contribute, scatters the
expression to the survivors over a pickle-free framed pipe protocol, and
merges the streamed result blocks back into global document order with a
k-way heap merge on :attr:`~repro.mass.flexkey.FlexKey.sort_bytes` —
the order-preserving byte encoding makes the cross-shard merge a pure
byte comparison (modeled on Apache VXQuery's data-parallel partitioned
evaluation).

Public surface:

* :func:`~repro.sharding.partitioner.build_shards` /
  :func:`~repro.sharding.partitioner.load_manifest` — partition documents
  (hash / round-robin by name, or one document by subtree key ranges)
  into a shard directory with a JSON manifest.
* :class:`~repro.sharding.coordinator.ShardedDatabase` — open a shard
  directory, spawn one worker process per shard, and evaluate queries
  scatter-gather with per-shard guards, shard pruning, COUNT()
  short-circuiting and worker-crash capture.
* :func:`~repro.sharding.merge.kway_merge` — the tournament merge over
  per-shard block iterators.
* :func:`~repro.sharding.partitioner.fsck_shards` — verify every
  per-shard store file (``repro fsck <dir>``).
* :class:`~repro.sharding.serving.ShardQueryServer` — the serving bridge
  that lets :class:`~repro.serving.frontend.TcpFrontend` sit in front of
  a sharded database.
"""

from repro.sharding.coordinator import ShardedDatabase, ShardedOutcome, ShardStatus
from repro.sharding.merge import kway_merge
from repro.sharding.partitioner import (
    ShardFsckReport,
    ShardManifest,
    ShardSpec,
    build_shards,
    build_subtree_shards,
    fsck_shards,
    load_manifest,
    partition_names,
)
from repro.sharding.serving import ShardQueryServer

__all__ = [
    "ShardedDatabase",
    "ShardedOutcome",
    "ShardStatus",
    "ShardFsckReport",
    "ShardManifest",
    "ShardSpec",
    "ShardQueryServer",
    "build_shards",
    "build_subtree_shards",
    "fsck_shards",
    "kway_merge",
    "load_manifest",
    "partition_names",
]
