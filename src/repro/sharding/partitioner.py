"""Partitioning documents into a shard directory with a JSON manifest.

Two partitioning families:

* **Collection partitioning** (``hash`` / ``round_robin``): a collection
  of named documents is spread over ``N`` shards — hash keeps placement
  stable as documents come and go, round-robin balances counts exactly.
  A document lives entirely on one shard, so per-shard evaluation is
  exactly per-document evaluation and the cross-shard merge never
  interleaves keys of the same document.

* **Subtree partitioning** (``subtree``): one huge document is split by
  FLEX-key ranges at the document element's child boundaries, balanced
  by exact subtree node counts from the counted node index.  Every shard
  stores the spine (document node + document element) so structural
  context is intact, and additionally *owns* a half-open key range
  ``[lo, hi)``; workers filter their results to the owned range, which
  keeps shard results disjoint — the merge stays a byte comparison and
  per-shard counts sum exactly.

The shard directory layout::

    <dir>/manifest.json
    <dir>/shard-000/<doc>.mass
    <dir>/shard-001/<doc>.mass
    ...

Each ``.mass`` file is a normal crash-safe store file —
:func:`fsck_shards` runs the per-file checker over the whole fleet and
``repro fsck <dir>`` reports one summary.

The manifest records, per shard, the name vocabulary (elements /
attributes / roots) and per-name entry counts straight from the name
index.  The coordinator feeds the vocabulary to the satisfiability
analyzer to prune shards that provably cannot contribute to a query, and
the counts to the fan-out cost model that picks scatter vs. single-shard
routing.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ShardingError, StorageError
from repro.mass.flexkey import FlexKey
from repro.mass.persistence import FsckReport, fsck_store, save_store
from repro.mass.records import NodeKind, NodeRecord
from repro.mass.store import MassStore

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1

SCHEMES = ("hash", "round_robin", "subtree")


def _stable_hash(name: str) -> int:
    """Process-independent document hash (PYTHONHASHSEED-proof)."""
    return zlib.crc32(name.encode("utf-8"))


def partition_names(
    names: Sequence[str], shards: int, scheme: str = "hash"
) -> dict[str, int]:
    """Assign each document name to a shard id."""
    if shards < 1:
        raise ShardingError(f"shard count must be >= 1, got {shards}")
    if scheme == "hash":
        return {name: _stable_hash(name) % shards for name in names}
    if scheme == "round_robin":
        return {name: index % shards for index, name in enumerate(sorted(names))}
    raise ShardingError(f"unknown collection partitioning scheme {scheme!r}")


_SAFE_CHARS = re.compile(r"[^A-Za-z0-9._-]")


def _safe_filename(name: str, taken: set[str]) -> str:
    base = _SAFE_CHARS.sub("_", name) or "document"
    candidate = base
    while candidate in taken:
        candidate = f"{base}-{_stable_hash(candidate):08x}"
    taken.add(candidate)
    return candidate


# -- manifest model ------------------------------------------------------------


@dataclass
class ShardSpec:
    """One shard's entry in the manifest."""

    shard_id: int
    documents: list[dict] = field(default_factory=list)
    elements: list[str] = field(default_factory=list)
    attributes: list[str] = field(default_factory=list)
    roots: list[str] = field(default_factory=list)
    #: Name-index entry counts keyed by *index name* (``person``,
    #: ``@id``, ``#text``, ``?target``), summed over the shard's
    #: documents — the fan-out cost model's per-shard statistics.
    name_counts: dict[str, int] = field(default_factory=dict)
    total_nodes: int = 0
    #: Owned key range (subtree scheme only), as hex ``sort_bytes``.
    range_lo: str | None = None
    range_hi: str | None = None

    @property
    def files(self) -> list[str]:
        return [doc["file"] for doc in self.documents]

    def owned_range(self) -> tuple[bytes | None, bytes | None]:
        lo = bytes.fromhex(self.range_lo) if self.range_lo else None
        hi = bytes.fromhex(self.range_hi) if self.range_hi else None
        return lo, hi

    def to_json(self) -> dict:
        return {
            "id": self.shard_id,
            "documents": self.documents,
            "elements": sorted(self.elements),
            "attributes": sorted(self.attributes),
            "roots": sorted(self.roots),
            "name_counts": self.name_counts,
            "total_nodes": self.total_nodes,
            "range_lo": self.range_lo,
            "range_hi": self.range_hi,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ShardSpec":
        return cls(
            shard_id=data["id"],
            documents=list(data.get("documents", ())),
            elements=list(data.get("elements", ())),
            attributes=list(data.get("attributes", ())),
            roots=list(data.get("roots", ())),
            name_counts=dict(data.get("name_counts", {})),
            total_nodes=data.get("total_nodes", 0),
            range_lo=data.get("range_lo"),
            range_hi=data.get("range_hi"),
        )


@dataclass
class ShardManifest:
    """The shard directory's self-description (``manifest.json``)."""

    directory: str
    scheme: str
    shards: list[ShardSpec]

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def is_range_partitioned(self) -> bool:
        return self.scheme == "subtree"

    @property
    def total_nodes(self) -> int:
        return sum(spec.total_nodes for spec in self.shards)

    def document_names(self) -> list[str]:
        names = []
        for spec in self.shards:
            names.extend(doc["name"] for doc in spec.documents)
        # Range-partitioned shards share one document name.
        return sorted(set(names))

    def to_json(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "scheme": self.scheme,
            "shards": [spec.to_json() for spec in self.shards],
        }

    def save(self) -> str:
        path = os.path.join(self.directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as out:
            json.dump(self.to_json(), out, indent=1, sort_keys=True)
        os.replace(tmp, path)
        return path


def load_manifest(directory: str) -> ShardManifest:
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ShardingError(f"{directory}: not a shard directory: {error}") from error
    except json.JSONDecodeError as error:
        raise ShardingError(f"{path}: corrupt manifest: {error}") from error
    if data.get("format") != MANIFEST_FORMAT:
        raise ShardingError(
            f"{path}: unsupported manifest format {data.get('format')!r}"
        )
    shards = [ShardSpec.from_json(entry) for entry in data["shards"]]
    # Shard ids are the routing addresses; a duplicated id would make a
    # query's target ambiguous.  Order and contiguity are NOT required —
    # the coordinator looks workers up by id, never by list position.
    seen: set[int] = set()
    for spec in shards:
        if spec.shard_id in seen:
            raise ShardingError(f"{path}: duplicate shard id {spec.shard_id}")
        seen.add(spec.shard_id)
    return ShardManifest(
        directory=directory,
        scheme=data["scheme"],
        shards=shards,
    )


# -- vocabulary / statistics ---------------------------------------------------


def _harvest_vocabulary(spec: ShardSpec, store: MassStore) -> None:
    """Fold one store's name universe and counts into the shard spec."""
    elements = set(spec.elements)
    attributes = set(spec.attributes)
    for index_name in store.name_index.distinct_names():
        count = store.name_index.count(index_name)
        spec.name_counts[index_name] = spec.name_counts.get(index_name, 0) + count
        if index_name.startswith("@"):
            attributes.add(index_name[1:])
        elif not index_name.startswith(("#", "?")):
            elements.add(index_name)
    spec.elements = sorted(elements)
    spec.attributes = sorted(attributes)
    roots = set(spec.roots)
    try:
        roots.add(store.root_element().name)
    except StorageError:
        pass  # an empty slice still describes its (empty) vocabulary
    spec.roots = sorted(roots)
    spec.total_nodes += len(store.node_index)


# -- collection partitioning ---------------------------------------------------


def build_shards(
    stores: Iterable[tuple[str, MassStore]],
    directory: str,
    shards: int,
    scheme: str = "hash",
) -> ShardManifest:
    """Partition named document stores into ``directory``.

    Documents are placed by :func:`partition_names`; each lands as one
    crash-safe ``.mass`` file under its shard's subdirectory.  Empty
    shards are legal (hash skew, more shards than documents) and stay
    addressable — the coordinator simply always prunes them.
    """
    pairs = list(stores)
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        raise ShardingError("duplicate document names in the collection")
    placement = partition_names(names, shards, scheme)
    os.makedirs(directory, exist_ok=True)
    specs = [ShardSpec(shard_id=index) for index in range(shards)]
    taken: dict[int, set[str]] = {index: set() for index in range(shards)}
    for name, store in pairs:
        shard_id = placement[name]
        spec = specs[shard_id]
        subdir = f"shard-{shard_id:03d}"
        os.makedirs(os.path.join(directory, subdir), exist_ok=True)
        filename = _safe_filename(name, taken[shard_id]) + ".mass"
        relative = os.path.join(subdir, filename)
        save_store(store, os.path.join(directory, relative))
        spec.documents.append(
            {"name": name, "file": relative, "nodes": len(store.node_index)}
        )
        _harvest_vocabulary(spec, store)
    for spec in specs:
        spec.documents.sort(key=lambda doc: doc["name"])
    manifest = ShardManifest(directory=directory, scheme=scheme, shards=specs)
    manifest.save()
    return manifest


# -- subtree (range) partitioning ----------------------------------------------


def _split_points(store: MassStore, shards: int) -> list[FlexKey]:
    """Pick ``shards - 1`` split keys at document-element child boundaries.

    Children (attributes included — each is a unit subtree) are walked in
    document order, accumulating exact subtree node counts from the
    counted node index; a split lands whenever the running shard reaches
    its proportional share of the remaining nodes.
    """
    root_key = None
    for record in store.node_index.scan(None, None):
        if record.kind is NodeKind.ELEMENT and record.key.depth == 1:
            root_key = record.key
            break
    if root_key is None:
        raise ShardingError(f"document {store.name!r} has no document element")
    children: list[tuple[FlexKey, int]] = []
    lo = root_key
    hi = root_key.subtree_upper_bound()
    for record in store.node_index.scan(lo, hi, inclusive_lo=False):
        if record.key.depth == 2:
            size = store.node_index.count_range(
                record.key, record.key.subtree_upper_bound()
            )
            children.append((record.key, size))
    if len(children) < shards:
        raise ShardingError(
            f"document {store.name!r} has {len(children)} top-level subtrees; "
            f"cannot range-partition into {shards} shards"
        )
    splits: list[FlexKey] = []
    remaining_nodes = sum(size for _, size in children)
    remaining_shards = shards
    acc = 0
    for key, size in children:
        target = remaining_nodes / remaining_shards
        if acc >= target and len(splits) < shards - 1:
            splits.append(key)
            remaining_nodes -= acc
            remaining_shards -= 1
            acc = 0
        acc += size
    if len(splits) < shards - 1:
        # Degenerate balance (one giant subtree swallowed several
        # shares): fill with unused child boundaries so every shard
        # still gets a non-empty range.
        used = set(splits)
        for key, _ in reversed(children[1:]):
            if len(splits) >= shards - 1:
                break
            if key not in used:
                splits.append(key)
                used.add(key)
    splits.sort()
    return splits


def build_subtree_shards(
    store: MassStore, directory: str, shards: int
) -> ShardManifest:
    """Split one document by FLEX-key subtree ranges into ``directory``.

    Every shard's store holds the spine (document node + document
    element) plus the records of its owned range, so per-shard engines
    see a well-formed document.  The manifest records each shard's owned
    ``[lo, hi)`` byte range; workers filter results to it, keeping shard
    results disjoint.
    """
    if shards < 1:
        raise ShardingError(f"shard count must be >= 1, got {shards}")
    os.makedirs(directory, exist_ok=True)
    records = list(store.node_index.scan(None, None))
    if not records:
        raise ShardingError("cannot range-partition an empty store")
    spine: list[NodeRecord] = [
        record
        for record in records
        if record.key.depth == 0
        or (record.key.depth == 1 and record.kind is NodeKind.ELEMENT)
    ]
    splits = _split_points(store, shards) if shards > 1 else []
    bounds: list[tuple[bytes | None, bytes | None]] = []
    edges: list[bytes | None] = (
        [None] + [key.sort_bytes for key in splits] + [None]
    )
    for index in range(shards):
        bounds.append((edges[index], edges[index + 1]))
    specs: list[ShardSpec] = []
    taken: set[str] = set()
    filename = _safe_filename(store.name, taken) + ".mass"
    spine_keys = {record.key for record in spine}
    for shard_id, (lo, hi) in enumerate(bounds):
        slice_records = [
            record
            for record in records
            if record.key in spine_keys
            or (
                (lo is None or record.key.sort_bytes >= lo)
                and (hi is None or record.key.sort_bytes < hi)
            )
        ]
        shard_store = MassStore(
            name=store.name,
            page_size=store.pages.page_size,
            buffer_capacity=store.buffer.capacity,
            byte_keys=store.byte_keys,
        )
        shard_store.bulk_load(slice_records)
        subdir = f"shard-{shard_id:03d}"
        os.makedirs(os.path.join(directory, subdir), exist_ok=True)
        relative = os.path.join(subdir, filename)
        save_store(shard_store, os.path.join(directory, relative))
        spec = ShardSpec(
            shard_id=shard_id,
            documents=[
                {
                    "name": store.name,
                    "file": relative,
                    "nodes": len(shard_store.node_index),
                }
            ],
            range_lo=lo.hex() if lo is not None else None,
            range_hi=hi.hex() if hi is not None else None,
        )
        _harvest_vocabulary(spec, shard_store)
        specs.append(spec)
    manifest = ShardManifest(directory=directory, scheme="subtree", shards=specs)
    manifest.save()
    return manifest


# -- fleet fsck ----------------------------------------------------------------


@dataclass
class ShardFsckReport:
    """Per-file verification results for a whole shard directory."""

    directory: str
    reports: list[tuple[int, str, FsckReport]] = field(default_factory=list)
    missing: list[tuple[int, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.missing and all(
            report.ok for _, _, report in self.reports
        )

    @property
    def damaged(self) -> list[tuple[int, str, FsckReport]]:
        return [entry for entry in self.reports if not entry[2].ok]

    def describe(self) -> str:
        lines = [
            f"{self.directory}: {len(self.reports)} store file(s) across "
            f"{len({shard for shard, _, _ in self.reports} | {shard for shard, _ in self.missing})} shard(s)"
        ]
        for shard_id, path, report in self.reports:
            status = "clean" if report.ok else "CORRUPT"
            lines.append(
                f"  shard {shard_id}: {path}: {status} "
                f"({report.readable_records}/{report.declared_records} records"
                + (
                    f", {report.dropped_records} dropped"
                    if report.dropped_records
                    else ""
                )
                + ")"
            )
            for error in report.errors:
                lines.append(f"    error: {error}")
        for shard_id, path in self.missing:
            lines.append(f"  shard {shard_id}: {path}: MISSING")
        lines.append("summary: " + ("all shards clean" if self.ok else "DAMAGED"))
        return "\n".join(lines)


def fsck_shards(directory: str) -> ShardFsckReport:
    """Verify every per-shard ``.mass`` file named by the manifest."""
    manifest = load_manifest(directory)
    report = ShardFsckReport(directory=directory)
    for spec in manifest.shards:
        for doc in spec.documents:
            path = os.path.join(directory, doc["file"])
            if not os.path.exists(path):
                report.missing.append((spec.shard_id, doc["file"]))
                continue
            report.reports.append(
                (spec.shard_id, doc["file"], fsck_store(path))
            )
    return report
