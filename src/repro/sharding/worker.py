"""The shard worker process: one process, one shard's stores and engines.

:func:`worker_main` is the child-process entry point.  It opens the
shard's crash-safe ``.mass`` files, builds one
:class:`~repro.engine.engine.VamanaEngine` per document (each with its
own plan cache, warmed across queries), and serves the coordinator's
framed pipe protocol (:mod:`repro.sharding.protocol`) until told to
close.

Per query the worker:

* arms one :class:`~repro.resilience.guard.QueryGuard` for the whole
  shard (the coordinator's per-shard budget — deadline, page and result
  caps all enforce locally, inside this process),
* evaluates the expression against each of its documents, streaming
  result keys as ``sort_bytes`` blocks under credit-window flow control
  (at most ``window`` unacknowledged blocks in flight),
* filters to its owned key range when the shard is a subtree slice, so
  replicated spine nodes are reported by exactly one shard,
* captures per-document failures as typed ``doc_error`` messages —
  ``on_error="capture"`` semantics, one bad document never poisons the
  shard — and finishes with a ``done`` message carrying the shard's
  aggregated work counters for the coordinator's fleet metrics.

Chaos: the ``shard.worker.crash`` fault site consults a seeded
:class:`~repro.resilience.faults.FaultInjector` at the top of query
handling and *hard-kills the process* (``os._exit``) when it fires —
exercising the coordinator's crash capture exactly the way a real worker
death would, with no Python cleanup softening the blow.
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.engine.engine import VamanaEngine
from repro.errors import ReproError
from repro.mass.persistence import open_store
from repro.resilience.faults import FaultInjector
from repro.resilience.guard import QueryGuard
from repro.sharding import protocol
from repro.sharding.protocol import recv_frame, send_block, send_json

#: The chaos site consulted once per query; when it fires the process
#: dies with ``os._exit`` — no exception, no flush, no goodbye.
CRASH_SITE = "shard.worker.crash"


class _Cancelled(Exception):
    """Internal: the coordinator cancelled the in-flight request."""


class _ShardWorker:
    def __init__(self, conn, config: dict):
        self.conn = conn
        self.shard_id = int(config["shard_id"])
        directory = config["directory"]
        lo = config.get("range_lo")
        hi = config.get("range_hi")
        self.range_lo: bytes | None = bytes.fromhex(lo) if lo else None
        self.range_hi: bytes | None = bytes.fromhex(hi) if hi else None
        self.injector: FaultInjector | None = None
        rates = config.get("fault_rates") or {}
        if rates:
            self.injector = FaultInjector(
                seed=int(config.get("fault_seed", 0)),
                rates=dict(rates),
                max_failures=config.get("fault_max_failures"),
            )
        self._directory = directory
        self._documents = sorted(
            config["documents"], key=lambda entry: entry["name"]
        )
        # Stores open lazily on the first query so the hello handshake is
        # instant no matter how large the shard is.
        self._engines: list[tuple[str, VamanaEngine]] | None = None

    @property
    def engines(self) -> list[tuple[str, VamanaEngine]]:
        if self._engines is None:
            engines = []
            for doc in self._documents:
                store = open_store(os.path.join(self._directory, doc["file"]))
                store.name = doc["name"]
                engines.append((doc["name"], VamanaEngine(store)))
            self._engines = engines
        return self._engines

    # -- chaos ---------------------------------------------------------------

    def _maybe_crash(self) -> None:
        if self.injector is None:
            return
        self.injector.accesses[CRASH_SITE] += 1
        if self.injector.should_fail(CRASH_SITE):
            self.injector.failures[CRASH_SITE] += 1
            os._exit(17)

    # -- owned-range filtering ----------------------------------------------

    def _owns(self, sort_bytes: bytes) -> bool:
        if self.range_lo is not None and sort_bytes < self.range_lo:
            return False
        if self.range_hi is not None and sort_bytes >= self.range_hi:
            return False
        return True

    # -- serving loop --------------------------------------------------------

    def run(self) -> None:
        send_json(
            self.conn,
            {
                "op": "hello",
                "shard": self.shard_id,
                "version": protocol.PROTOCOL_VERSION,
                "pid": os.getpid(),
                "documents": [doc["name"] for doc in self._documents],
            },
        )
        # Open the shard's stores now, after the (instant) hello but
        # before serving: a pong therefore certifies the shard is warm,
        # and query deadlines never pay for store deserialization.
        self.engines
        while True:
            try:
                kind, payload = recv_frame(self.conn)
            except (EOFError, OSError):
                return  # coordinator went away; nothing left to serve
            if kind != "json":
                continue  # stray key block: only workers send those
            op = payload.get("op")
            if op == "close":
                send_json(self.conn, {"op": "closed"})
                return
            if op == "ping":
                send_json(self.conn, {"op": "pong", "shard": self.shard_id})
            elif op == "query":
                self._handle_query(payload)
            elif op == "explain":
                self._handle_explain(payload)
            # credit / cancel for a finished request: stale, ignore.

    # -- queries -------------------------------------------------------------

    def _handle_query(self, payload: dict) -> None:
        request_id = int(payload["id"])
        self._maybe_crash()
        for _, engine in self.engines:
            engine.store.reset_metrics()
        guard = None
        if any(
            payload.get(knob) is not None
            for knob in ("timeout_ms", "max_pages", "max_results")
        ):
            guard = QueryGuard(
                timeout_ms=payload.get("timeout_ms"),
                max_pages=payload.get("max_pages"),
                max_results=payload.get("max_results"),
            )
        try:
            if payload.get("mode") == "count":
                self._run_count(request_id, payload, guard)
            else:
                self._run_keys(request_id, payload, guard)
        except _Cancelled:
            send_json(self.conn, {"op": "done", "id": request_id, "cancelled": True})
            return
        send_json(
            self.conn,
            {
                "op": "done",
                "id": request_id,
                "counters": self._fleet_counters(),
                "epochs": {
                    name: engine.store.epoch for name, engine in self.engines
                },
            },
        )

    def _run_keys(self, request_id: int, payload: dict, guard) -> None:
        expr = payload["expr"]
        block_keys = int(payload.get("block") or protocol.DEFAULT_BLOCK_KEYS)
        # One credit window per *request*, shared across the shard's
        # documents — the protocol bounds unacknowledged blocks in
        # flight, and a multi-document shard gets no extra allowance.
        credits = int(payload.get("window") or protocol.DEFAULT_WINDOW)
        for name, engine in self.engines:
            try:
                result = engine.evaluate(expr, guard=guard)
            except ReproError as error:
                send_json(
                    self.conn,
                    {
                        "op": "doc_error",
                        "id": request_id,
                        "doc": name,
                        "error": type(error).__name__,
                        "message": str(error),
                        "partial": False,
                    },
                )
                continue
            send_json(self.conn, {"op": "doc", "id": request_id, "doc": name})
            owned = (
                key.sort_bytes
                for key in result.keys
                if self._owns(key.sort_bytes)
            )
            credits = self._stream_blocks(request_id, owned, block_keys, credits)

    def _stream_blocks(
        self, request_id: int, keys: Iterator[bytes], block_keys: int, credits: int
    ) -> int:
        """Send key blocks within ``credits``; return the credits left."""
        block: list[bytes] = []

        def flush() -> None:
            nonlocal credits
            while credits <= 0:
                credits += self._absorb_control(request_id)
            send_block(self.conn, request_id, block)
            credits -= 1
            block.clear()

        for sort_bytes in keys:
            block.append(sort_bytes)
            if len(block) >= block_keys:
                while self.conn.poll(0):  # sweep pending credits/cancel
                    credits += self._absorb_control(request_id)
                flush()
        if block:
            flush()
        return credits

    def _absorb_control(self, request_id: int) -> int:
        """Block for one control message; return the credits it granted."""
        try:
            kind, payload = recv_frame(self.conn)
        except (EOFError, OSError):
            raise _Cancelled() from None
        if kind != "json":
            return 0
        op = payload.get("op")
        if op == "cancel" and payload.get("id") == request_id:
            raise _Cancelled()
        if op == "close":
            os._exit(0)
        if op == "credit" and payload.get("id") == request_id:
            return int(payload.get("n", 1))
        return 0

    def _run_count(self, request_id: int, payload: dict, guard) -> None:
        expr = payload["expr"]
        inner = payload.get("inner")
        per_doc: dict[str, float] = {}
        errors = []
        for name, engine in self.engines:
            try:
                if inner and (self.range_lo is not None or self.range_hi is not None):
                    # A subtree slice must count only the keys it owns —
                    # the replicated spine would otherwise be counted by
                    # every shard.
                    result = engine.evaluate(inner, guard=guard)
                    per_doc[name] = float(
                        sum(1 for key in result.keys if self._owns(key.sort_bytes))
                    )
                else:
                    # The same per-shard budget governs count mode: the
                    # guard threads into the embedded node-set scans.
                    value = engine.evaluate_value(expr, guard=guard)
                    per_doc[name] = float(value if not isinstance(value, list) else len(value))
            except ReproError as error:
                errors.append(
                    {
                        "doc": name,
                        "error": type(error).__name__,
                        "message": str(error),
                    }
                )
        send_json(
            self.conn,
            {
                "op": "count_result",
                "id": request_id,
                "total": sum(per_doc.values()),
                "per_doc": per_doc,
                "errors": errors,
            },
        )

    # -- explain / metrics ----------------------------------------------------

    def _handle_explain(self, payload: dict) -> None:
        request_id = int(payload["id"])
        sections = []
        for name, engine in self.engines:
            try:
                sections.append(f"document {name!r}:\n{engine.explain(payload['expr'])}")
            except ReproError as error:
                sections.append(f"document {name!r}: {type(error).__name__}: {error}")
        send_json(
            self.conn,
            {
                "op": "explained",
                "id": request_id,
                "text": "\n\n".join(sections) or "(empty shard)",
            },
        )

    def _fleet_counters(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for _, engine in self.engines:
            for counter, value in engine.store.io_snapshot().items():
                if isinstance(value, (int, float)):
                    totals[counter] = totals.get(counter, 0) + int(value)
        return totals


def worker_main(conn, config: dict) -> None:
    """Child-process entry point (must stay module-level: spawn-safe)."""
    try:
        _ShardWorker(conn, config).run()
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
