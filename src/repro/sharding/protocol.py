"""Framed pipe protocol between the shard coordinator and its workers.

The scatter-gather layer deliberately avoids pickle on the wire: a worker
is a separate trust and failure domain, and the protocol must stay
debuggable and version-checkable after a crash.  Every message is one
``Connection.send_bytes`` frame tagged by its first byte:

* ``J`` — a UTF-8 JSON control message (``{"op": ..., "id": ...}``),
* ``K`` — a key block: ``u32 request id | u32 count`` followed by
  ``count`` entries of ``u16 length | sort_bytes``.  Key blocks carry
  result keys as their order-preserving byte encoding — exactly what the
  coordinator's k-way merge compares, so nothing is decoded on the hot
  path.

Control messages (coordinator → worker)::

    {"op": "query", "id": n, "expr": ..., "mode": "keys"|"count",
     "timeout_ms": ..., "max_pages": ..., "max_results": ...,
     "block": N, "window": W}
    {"op": "credit", "id": n, "n": k}      # flow control: k more blocks
    {"op": "cancel", "id": n}
    {"op": "explain", "id": n, "expr": ...}
    {"op": "ping"} / {"op": "close"}

and (worker → coordinator)::

    {"op": "doc", "id": n, "doc": name}    # blocks that follow belong here
    {"op": "doc_error", "id": n, "doc": name, "error": type, "message": m,
     "partial": bool}
    {"op": "count_result", "id": n, "total": c, "per_doc": {...}}
    {"op": "done", "id": n, "counters": {...}, "epochs": {...}}
    {"op": "explained", "id": n, "text": ...} / {"op": "pong"}

Flow control is a credit window: a worker may have at most ``window``
unconsumed key blocks in flight and then blocks until the coordinator
acknowledges one with a credit — so no shard's full result is ever
buffered at the coordinator, however skewed the shard sizes are.
"""

from __future__ import annotations

import json
import struct
from typing import Iterable

from repro.errors import ShardProtocolError

#: Protocol version, checked in the worker hello; bumped on any frame
#: format change so a stale worker binary fails loudly, not subtly.
PROTOCOL_VERSION = 1

JSON_TAG = 0x4A  # 'J'
BLOCK_TAG = 0x4B  # 'K'

#: Default number of key blocks a worker may send before waiting for a
#: credit.  Bounds coordinator-side buffering per shard at
#: ``window * block size`` keys.
DEFAULT_WINDOW = 8

#: Default keys per block frame.
DEFAULT_BLOCK_KEYS = 512


def encode_json(payload: dict) -> bytes:
    return b"J" + json.dumps(payload, separators=(",", ":")).encode("utf-8")


def encode_block(request_id: int, keys: Iterable[bytes]) -> bytes:
    """Frame one block of ``sort_bytes`` entries."""
    entries = list(keys)
    chunks = [b"K", struct.pack("<II", request_id, len(entries))]
    for key in entries:
        if len(key) > 0xFFFF:
            raise ShardProtocolError(f"key encoding too large: {len(key)} bytes")
        chunks.append(struct.pack("<H", len(key)))
        chunks.append(key)
    return b"".join(chunks)


def decode_frame(frame: bytes) -> tuple[str, object]:
    """``("json", dict)`` or ``("block", (request_id, [sort_bytes...]))``."""
    if not frame:
        raise ShardProtocolError("empty frame")
    tag = frame[0]
    if tag == JSON_TAG:
        try:
            payload = json.loads(frame[1:].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ShardProtocolError(f"bad JSON frame: {error}") from error
        if not isinstance(payload, dict) or "op" not in payload:
            raise ShardProtocolError("JSON frame must be an object with an 'op'")
        return "json", payload
    if tag == BLOCK_TAG:
        try:
            request_id, count = struct.unpack_from("<II", frame, 1)
            keys: list[bytes] = []
            offset = 9
            for _ in range(count):
                (length,) = struct.unpack_from("<H", frame, offset)
                offset += 2
                end = offset + length
                if end > len(frame):
                    raise ShardProtocolError("key block runs past frame end")
                keys.append(frame[offset:end])
                offset = end
            if offset != len(frame):
                raise ShardProtocolError(
                    f"key block has {len(frame) - offset} trailing bytes"
                )
        except struct.error as error:
            raise ShardProtocolError(f"bad key block frame: {error}") from error
        return "block", (request_id, keys)
    raise ShardProtocolError(f"unknown frame tag {tag:#04x}")


def send_json(conn, payload: dict) -> None:
    conn.send_bytes(encode_json(payload))


def send_block(conn, request_id: int, keys: Iterable[bytes]) -> None:
    conn.send_bytes(encode_block(request_id, keys))


def recv_frame(conn) -> tuple[str, object]:
    return decode_frame(conn.recv_bytes())
