"""Deterministic fault injection for storage and persistence paths.

A :class:`FaultInjector` is a seeded random source that the storage layer
consults at well-known *sites*:

* ``buffer.touch``     — every :meth:`repro.mass.pages.BufferPool.touch`,
* ``pages.get``        — every :meth:`repro.mass.pages.PageManager.get`,
* ``persistence.save`` — inside :func:`repro.mass.persistence.save_store`,
  after the temporary file is written but before the atomic rename (a
  simulated crash mid-save),
* ``persistence.open`` — at the top of
  :func:`repro.mass.persistence.open_store`.

The concurrent query server (:mod:`repro.serving`) adds four
*concurrency* sites, consulted at the edges where a races-and-crashes
bug would corrupt snapshot isolation:

* ``snapshot.acquire`` — before a reader pins a store snapshot (an
  injected failure must reject the request cleanly, never leak a pin),
* ``snapshot.release`` — after a snapshot's refcount is dropped (the
  bookkeeping is already done, so an injected failure surfaces as a
  typed error while refcounts still drain to zero),
* ``writer.publish``   — between building the new store version and the
  atomic pointer swap (a simulated writer crash mid-publish: readers
  must keep seeing the old epoch, never a torn one),
* ``worker.crash``     — at the top of a worker's query evaluation (a
  simulated worker death; the server must release the snapshot and
  surface a typed error).

Each site can fail with its own probability (raising
:class:`~repro.errors.TransientStorageError`) and/or add latency through
an injectable sleep.  Identical seeds produce identical failure schedules,
so every resilience test is reproducible bit-for-bit.

Byte-corruption helpers live here too: they flip bytes at chosen (or
seeded-random) offsets in a persisted store file, which the persistence
tests use to exercise checksum detection and ``recover=True`` salvage.
"""

from __future__ import annotations

import os
import random
import time
from collections import Counter
from typing import Callable, Iterable, Sequence

from repro.errors import StorageError, TransientStorageError

#: The serving layer's concurrency fault sites (see module docstring).
SERVING_FAULT_SITES = (
    "snapshot.acquire",
    "snapshot.release",
    "writer.publish",
    "worker.crash",
)

#: The partitioned-execution layer's chaos sites.  ``shard.worker.crash``
#: is consulted by each shard worker at the top of query handling and —
#: unlike every other site — *hard-kills the worker process*
#: (``os._exit``) instead of raising, so the coordinator's crash capture
#: is exercised by a real process death: closed pipe, nonzero exit code,
#: no Python cleanup.  Seeds are decorrelated per shard and per respawn
#: by the coordinator, so a fleet under chaos fails shard-by-shard, not
#: in lockstep.
SHARD_FAULT_SITES = ("shard.worker.crash",)


def corrupt_bytes(data: bytes, offsets: Iterable[int], xor_mask: int = 0xFF) -> bytes:
    """Return ``data`` with the byte at each offset XOR-flipped."""
    blob = bytearray(data)
    for offset in offsets:
        if not 0 <= offset < len(blob):
            raise ValueError(f"offset {offset} outside 0..{len(blob) - 1}")
        blob[offset] ^= xor_mask
    return bytes(blob)


def corrupt_file(path: str, offsets: Sequence[int], xor_mask: int = 0xFF) -> list[int]:
    """Flip bytes in place at ``offsets``; returns the offsets touched."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
        flipped = corrupt_bytes(blob, offsets, xor_mask)
        with open(path, "wb") as handle:
            handle.write(flipped)
    except OSError as error:
        raise StorageError(f"{path}: cannot corrupt file: {error}") from error
    return list(offsets)


def truncate_file(path: str, size: int) -> int:
    """Cut the file down to ``size`` bytes (a simulated torn write)."""
    try:
        os.truncate(path, size)
    except OSError as error:
        raise StorageError(f"{path}: cannot truncate file: {error}") from error
    return size


class FaultInjector:
    """Seeded, per-site fault and latency injection.

    ``rates`` maps a site name to a failure probability in [0, 1];
    ``default_rate`` applies to sites not listed.  ``max_failures`` caps
    the total injected failures (handy for "fail twice, then recover"
    retry tests).  ``latency_s`` sleeps before every consulted access via
    the injectable ``sleep`` (pass a stub for deterministic tests).
    """

    def __init__(
        self,
        seed: int = 0,
        rates: dict[str, float] | None = None,
        default_rate: float = 0.0,
        latency_s: float = 0.0,
        sleep: Callable[[float], None] | None = None,
        max_failures: int | None = None,
    ):
        self.seed = seed
        self.rates = dict(rates or {})
        self.default_rate = default_rate
        self.latency_s = latency_s
        self.max_failures = max_failures
        self._sleep = sleep if sleep is not None else time.sleep
        self._rng = random.Random(seed)
        #: Per-site counters: how often each site was consulted / failed.
        self.accesses: Counter[str] = Counter()
        self.failures: Counter[str] = Counter()
        self.delays = 0

    # -- wiring -------------------------------------------------------------

    def attach(self, store) -> "FaultInjector":
        """Install on a store's buffer pool and page manager."""
        store.buffer.fault_injector = self
        store.pages.fault_injector = self
        return self

    def detach(self, store) -> None:
        store.buffer.fault_injector = None
        store.pages.fault_injector = None

    # -- injection ----------------------------------------------------------

    def rate_for(self, site: str) -> float:
        return self.rates.get(site, self.default_rate)

    def total_failures(self) -> int:
        return sum(self.failures.values())

    def should_fail(self, site: str) -> bool:
        rate = self.rate_for(site)
        if rate <= 0.0:
            return False
        if self.max_failures is not None and self.total_failures() >= self.max_failures:
            return False
        return self._rng.random() < rate

    def on_access(self, site: str) -> None:
        """Consulted by an instrumented site; may sleep and/or raise."""
        self.accesses[site] += 1
        if self.latency_s > 0.0:
            self.delays += 1
            self._sleep(self.latency_s)
        if self.should_fail(site):
            self.failures[site] += 1
            raise TransientStorageError(
                f"injected fault at {site} (access {self.accesses[site]})"
            )

    # ``maybe_fail`` reads better at call sites that only ever fail.
    maybe_fail = on_access

    # -- corruption ---------------------------------------------------------

    def corrupt_store_file(
        self, path: str, count: int = 1, lo: int = 4, hi: int | None = None
    ) -> list[int]:
        """Flip ``count`` seeded-random bytes of ``path`` within [lo, hi).

        ``lo`` defaults past the magic so the file still *looks* like a
        store — the interesting corruption is in the body, where only the
        checksums can catch it.
        """
        size = os.path.getsize(path)
        upper = size if hi is None else min(hi, size)
        if upper <= lo:
            raise ValueError(f"empty corruption window [{lo}, {upper})")
        offsets = sorted(
            self._rng.sample(range(lo, upper), min(count, upper - lo))
        )
        return corrupt_file(path, offsets)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector seed={self.seed} rates={self.rates!r} "
            f"failures={self.total_failures()}>"
        )
