"""Bounded retries with exponential backoff, full jitter and deadline caps.

Transient storage faults (see :class:`~repro.errors.TransientStorageError`)
deserve a retry; everything else is permanent and propagates immediately.
The sleep function is injectable so tests assert the exact backoff
schedule without waiting on a real clock.

Three refinements matter under concurrent serving:

* **Full jitter** (``jitter=True``): the delay before retry *k* is drawn
  uniformly from ``[0, min(base * multiplier**(k-1), max_delay)]``, so a
  burst of rejected clients does not retry in lockstep and re-overload
  the server (the AWS "full jitter" schedule).  Deterministic with an
  injected ``rng``.
* **Deadline cap** (``guard=``): when the caller operates under a
  :class:`~repro.resilience.QueryGuard` deadline, every sleep is capped
  by the guard's remaining budget and a retry whose backoff would
  outlive the deadline re-raises immediately — retries can never outlive
  the request budget.
* **Server hints**: a :class:`~repro.errors.ServerOverloadedError` carries
  ``retry_after_s``; when it is larger than the computed backoff, the
  hint wins (still subject to the deadline cap).
"""

from __future__ import annotations

import random
import time
from typing import Callable, TypeVar

from repro.errors import ServerOverloadedError, TransientStorageError

T = TypeVar("T")


def backoff_delay(
    attempt: int,
    base_delay: float,
    multiplier: float,
    max_delay: float,
    jitter: bool = False,
    rng: random.Random | None = None,
) -> float:
    """The sleep before retry ``attempt`` (1-based).

    Without jitter this is the classic capped exponential
    ``min(base * multiplier**(attempt-1), max_delay)``; with jitter the
    delay is uniform in ``[0, that]``.
    """
    ceiling = min(base_delay * multiplier ** (attempt - 1), max_delay)
    if not jitter:
        return ceiling
    return (rng.uniform if rng is not None else random.uniform)(0.0, ceiling)


def with_retries(
    fn: Callable[[], T],
    attempts: int = 3,
    base_delay: float = 0.01,
    multiplier: float = 2.0,
    max_delay: float = 1.0,
    retry_on: tuple[type[BaseException], ...] = (TransientStorageError,),
    sleep: Callable[[float], None] = time.sleep,
    jitter: bool = False,
    rng: random.Random | None = None,
    guard=None,
) -> T:
    """Call ``fn`` up to ``attempts`` times, backing off exponentially.

    Delay before retry *k* (1-based) is ``min(base_delay * multiplier**(k-1),
    max_delay)`` — drawn uniformly from ``[0, that]`` with ``jitter=True``
    (pass ``rng`` for a seeded schedule).  The final failure re-raises the
    original exception.

    ``guard`` (a :class:`~repro.resilience.QueryGuard`) caps every sleep by
    the guard's remaining deadline: if the chosen delay would not fit in
    the remaining budget, the retry is abandoned and the error re-raised
    immediately, so the total retry sleep never exceeds the deadline.

    A caught :class:`~repro.errors.ServerOverloadedError` whose
    ``retry_after_s`` exceeds the computed backoff raises the delay to the
    server's hint (the deadline cap still applies).
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as error:
            if attempt == attempts:
                raise
            delay = backoff_delay(
                attempt, base_delay, multiplier, max_delay, jitter=jitter, rng=rng
            )
            if isinstance(error, ServerOverloadedError):
                delay = max(delay, error.retry_after_s)
            if guard is not None:
                remaining_ms = guard.remaining_ms()
                if remaining_ms is not None and delay * 1000.0 >= remaining_ms:
                    raise  # the backoff would outlive the request deadline
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


def save_store_with_retries(store, path: str, **retry_options) -> int:
    """:func:`repro.mass.persistence.save_store` under :func:`with_retries`.

    ``fault_injector`` (if given) is forwarded to ``save_store`` so an
    injected mid-save crash exercises the retry loop; remaining keyword
    arguments parameterize :func:`with_retries`.
    """
    from repro.mass.persistence import save_store

    fault_injector = retry_options.pop("fault_injector", None)
    return with_retries(
        lambda: save_store(store, path, fault_injector=fault_injector),
        **retry_options,
    )


def open_store_with_retries(path: str, **options):
    """:func:`repro.mass.persistence.open_store` under :func:`with_retries`.

    Retry parameters (``attempts``, ``base_delay``, ``multiplier``,
    ``max_delay``, ``sleep``, ``jitter``, ``rng``, ``guard``) are peeled
    off; everything else goes to ``open_store`` (``recover``,
    ``fault_injector``, store options).
    """
    from repro.mass.persistence import open_store

    retry_options = {
        name: options.pop(name)
        for name in (
            "attempts", "base_delay", "multiplier", "max_delay", "sleep",
            "jitter", "rng", "guard",
        )
        if name in options
    }
    return with_retries(lambda: open_store(path, **options), **retry_options)
