"""Bounded retries with exponential backoff.

Transient storage faults (see :class:`~repro.errors.TransientStorageError`)
deserve a retry; everything else is permanent and propagates immediately.
The sleep function is injectable so tests assert the exact backoff
schedule without waiting on a real clock.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

from repro.errors import TransientStorageError

T = TypeVar("T")


def with_retries(
    fn: Callable[[], T],
    attempts: int = 3,
    base_delay: float = 0.01,
    multiplier: float = 2.0,
    max_delay: float = 1.0,
    retry_on: tuple[type[BaseException], ...] = (TransientStorageError,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` up to ``attempts`` times, backing off exponentially.

    Delay before retry *k* (1-based) is ``min(base_delay * multiplier**(k-1),
    max_delay)``.  The final failure re-raises the original exception.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on:
            if attempt == attempts:
                raise
            sleep(min(base_delay * multiplier ** (attempt - 1), max_delay))
    raise AssertionError("unreachable")  # pragma: no cover


def save_store_with_retries(store, path: str, **retry_options) -> int:
    """:func:`repro.mass.persistence.save_store` under :func:`with_retries`.

    ``fault_injector`` (if given) is forwarded to ``save_store`` so an
    injected mid-save crash exercises the retry loop; remaining keyword
    arguments parameterize :func:`with_retries`.
    """
    from repro.mass.persistence import save_store

    fault_injector = retry_options.pop("fault_injector", None)
    return with_retries(
        lambda: save_store(store, path, fault_injector=fault_injector),
        **retry_options,
    )


def open_store_with_retries(path: str, **options):
    """:func:`repro.mass.persistence.open_store` under :func:`with_retries`.

    Retry parameters (``attempts``, ``base_delay``, ``multiplier``,
    ``max_delay``, ``sleep``) are peeled off; everything else goes to
    ``open_store`` (``recover``, ``fault_injector``, store options).
    """
    from repro.mass.persistence import open_store

    retry_options = {
        name: options.pop(name)
        for name in ("attempts", "base_delay", "multiplier", "max_delay", "sleep")
        if name in options
    }
    return with_retries(lambda: open_store(path, **options), **retry_options)
