"""Per-query resource governor.

The paper's scalability claim rests on operators that bound the work per
``next_tuple``/``next_block`` call; :class:`QueryGuard` turns that
property into an operational guarantee.  One guard travels with a query
through every pipelined operator (and into predicate sub-plans via the
expression evaluator / :class:`~repro.algebra.execution.EvalContext`),
and each ``next_tuple`` and ``next_block`` — plus every predicate
candidate, plus every 64 entries of a coalesced batch scan — calls
:meth:`QueryGuard.checkpoint`.  Because no operator does unbounded work
between checkpoints, a violated limit surfaces within a bounded number of
index operations, independent of document size.

Limits (all optional, combinable):

* **deadline** — wall-clock budget in milliseconds (``timeout_ms``),
* **page budget** — logical page reads charged against the bound store's
  :class:`~repro.mass.pages.PageStats` (``max_pages``),
* **result cap** — tuples the root operator may emit (``max_results``),
* **cancellation** — a cooperative flag another thread/owner may set via
  :meth:`cancel`.

The clock is injectable so tests exercise deadlines deterministically.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro.errors import (
    BudgetExceededError,
    QueryCancelledError,
    QueryTimeoutError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mass.store import MassStore


class QueryGuard:
    """Deadline, page-read budget, result cap and cancellation for one query."""

    __slots__ = (
        "timeout_ms",
        "max_pages",
        "max_results",
        "clock",
        "_started",
        "_deadline",
        "_page_stats",
        "_pages_base",
        "_results",
        "_cancelled",
        "checkpoints",
    )

    def __init__(
        self,
        timeout_ms: float | None = None,
        max_pages: int | None = None,
        max_results: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if timeout_ms is not None and timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be positive, got {timeout_ms}")
        if max_pages is not None and max_pages < 0:
            raise ValueError(f"max_pages must be >= 0, got {max_pages}")
        if max_results is not None and max_results < 0:
            raise ValueError(f"max_results must be >= 0, got {max_results}")
        self.timeout_ms = timeout_ms
        self.max_pages = max_pages
        self.max_results = max_results
        self.clock = clock
        self._started = clock()
        self._deadline = (
            self._started + timeout_ms / 1000.0 if timeout_ms is not None else None
        )
        self._page_stats = None
        self._pages_base = 0
        self._results = 0
        self._cancelled = False
        #: Total checkpoint calls — a cheap proxy for "work performed",
        #: useful when asserting that enforcement happened in bounded time.
        self.checkpoints = 0

    # -- lifecycle ----------------------------------------------------------

    def bind(self, store: "MassStore") -> "QueryGuard":
        """Attach to a store and restart the clock: execution begins now.

        Binding captures the store's current logical-read counter so the
        page budget charges only pages this query touches.
        """
        self._page_stats = store.pages.stats
        self._pages_base = self._page_stats.logical_reads
        self._started = self.clock()
        if self.timeout_ms is not None:
            self._deadline = self._started + self.timeout_ms / 1000.0
        return self

    def cancel(self) -> None:
        """Cooperatively cancel: the next checkpoint raises."""
        self._cancelled = True

    # -- accounting ---------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def elapsed_ms(self) -> float:
        return (self.clock() - self._started) * 1000.0

    def remaining_ms(self) -> float | None:
        """Milliseconds left before the deadline; None without one.

        Never negative — an expired deadline reports 0.0, which retry
        wrappers treat as "do not sleep, re-raise now".
        """
        if self._deadline is None:
            return None
        return max(0.0, (self._deadline - self.clock()) * 1000.0)

    def pages_used(self) -> int:
        if self._page_stats is None:
            return 0
        return self._page_stats.logical_reads - self._pages_base

    def results_used(self) -> int:
        return self._results

    # -- enforcement --------------------------------------------------------

    def checkpoint(self) -> None:
        """Raise the matching typed error if any limit is violated.

        Called from every ``Operator.next_tuple``/``next_block`` and once per predicate
        candidate, so it must stay cheap: a few attribute loads and
        comparisons, one clock read when a deadline is set.
        """
        self.checkpoints += 1
        if self._cancelled:
            raise QueryCancelledError()
        if self._deadline is not None:
            now = self.clock()
            if now > self._deadline:
                raise QueryTimeoutError(
                    self.timeout_ms, (now - self._started) * 1000.0
                )
        if self.max_pages is not None and self._page_stats is not None:
            used = self._page_stats.logical_reads - self._pages_base
            if used > self.max_pages:
                raise BudgetExceededError("page-read", used, self.max_pages)

    def tally_result(self) -> None:
        """Count one emitted result tuple and re-check all limits."""
        self._results += 1
        if self.max_results is not None and self._results > self.max_results:
            raise BudgetExceededError("result", self._results, self.max_results)
        self.checkpoint()

    def __repr__(self) -> str:
        limits = []
        if self.timeout_ms is not None:
            limits.append(f"timeout={self.timeout_ms:.0f}ms")
        if self.max_pages is not None:
            limits.append(f"max_pages={self.max_pages}")
        if self.max_results is not None:
            limits.append(f"max_results={self.max_results}")
        if self._cancelled:
            limits.append("cancelled")
        return f"<QueryGuard {' '.join(limits) or 'unlimited'}>"
