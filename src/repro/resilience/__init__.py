"""``repro.resilience`` — the operational robustness layer.

Three legs, cross-cutting the whole engine:

* :class:`QueryGuard` — per-query wall-clock deadline, page-read budget,
  result-cardinality cap and cooperative cancellation, checkpointed in
  every pipelined operator (`repro.algebra.execution`);
* :class:`FaultInjector` — seeded, deterministic fault/latency injection
  at the buffer-pool, page-manager and persistence sites, plus byte
  corruption helpers for store files;
* :func:`with_retries` — bounded exponential-backoff retry used around
  store save/open.

See ``DESIGN.md`` § "Resilience & operational limits".
"""

from repro.resilience.guard import QueryGuard
from repro.resilience.faults import (
    SERVING_FAULT_SITES,
    FaultInjector,
    corrupt_bytes,
    corrupt_file,
    truncate_file,
)
from repro.resilience.retry import (
    backoff_delay,
    open_store_with_retries,
    save_store_with_retries,
    with_retries,
)

__all__ = [
    "QueryGuard",
    "FaultInjector",
    "SERVING_FAULT_SITES",
    "corrupt_bytes",
    "corrupt_file",
    "truncate_file",
    "backoff_delay",
    "with_retries",
    "save_store_with_retries",
    "open_store_with_retries",
]
