"""Seeded chaos stress for the serving layer: 64 readers vs 1 writer.

:func:`run_chaos` stands up a :class:`~repro.serving.QueryServer` with a
seeded :class:`~repro.resilience.FaultInjector` firing at every serving
concurrency site, then interleaves a configurable swarm of reader
threads with one mutating writer and checks the snapshot-isolation
invariants the design promises:

* **no torn reads** — every successful outcome's key sequence is
  byte-identical (``FlexKey.sort_bytes``) to a serial evaluation of the
  same expression at the outcome's pinned epoch.  Serial answers are
  recorded per epoch: once before the swarm starts (epoch 0) and by the
  writer immediately after each successful publish — legitimate because
  versions are immutable, so a serial answer computed at any time is
  *the* answer for that epoch;
* **monotone epochs** — each reader's successive successful outcomes
  never observe a decreasing epoch, and every observed epoch was
  actually published;
* **refcounts drain** — after the swarm and server shutdown, acquires
  equal releases, no snapshot stays pinned, and only the current version
  remains live;
* **typed failures only** — injected crashes, shed requests and expired
  deadlines surface as :class:`~repro.errors.ReproError` subclasses; any
  other exception (or an unresolved future) is a harness failure;
* **no hangs** — the harness carries its own watchdog: every join is
  bounded by the config deadline and a still-alive thread is reported as
  a failure rather than blocking forever.

Everything is seeded — the injector schedule, each reader's query picks,
and the writer's retry jitter — so a failing run replays exactly.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.tv.oracle import compare_sequences
from repro.errors import (
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
    TransientStorageError,
)
from repro.mass.flexkey import FlexKey
from repro.mass.loader import load_xml
from repro.model import Axis, NodeTest
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import with_retries
from repro.serving.server import QueryServer

#: Node-set expressions the readers draw from (over :func:`chaos_document`).
CHAOS_EXPRESSIONS = (
    "/site/people/person/name",
    "//person[age]/name",
    "//item/price",
    "/site//name",
    "//person[name]",
    "/site/items/item",
)

DEFAULT_FAULT_RATES = {
    "snapshot.acquire": 0.02,
    "snapshot.release": 0.02,
    "writer.publish": 0.25,
    "worker.crash": 0.03,
}


def chaos_document(people: int = 12, items: int = 8) -> str:
    parts = ["<site>", "<people>"]
    for i in range(people):
        parts.append(
            f"<person><name>p{i}</name><age>{20 + i}</age></person>"
        )
    parts.append("</people><items>")
    for i in range(items):
        parts.append(f"<item><name>item{i}</name><price>{i * 3}</price></item>")
    parts.append("</items></site>")
    return "".join(parts)


@dataclass
class ChaosConfig:
    seed: int = 0
    readers: int = 64
    queries_per_reader: int = 3
    writer_batches: int = 6
    workers: int = 2
    max_queue_depth: int = 32
    timeout_ms: float = 5_000.0
    #: Wall-clock ceiling for the whole run (watchdog, not a test timeout).
    deadline_s: float = 60.0
    fault_rates: dict = field(default_factory=lambda: dict(DEFAULT_FAULT_RATES))
    expressions: tuple = CHAOS_EXPRESSIONS
    writer_pause_s: float = 0.002
    #: Injected clock for the deadline/watchdog math, threaded through to
    #: the server and admission controller — fake-clock testable, like
    #: the rest of the serving package.  (Thread back-off ``sleep`` calls
    #: stay real: they pace the OS scheduler, not the deadline logic.)
    clock: Callable[[], float] = time.monotonic


@dataclass
class ChaosReport:
    ok: bool
    problems: list
    requests: int
    successes: int
    error_counts: dict
    epochs_published: list
    epochs_observed: list
    failed_batches: int
    server_stats: dict
    injector_failures: dict
    #: Dynamic race-detector reports (``race_detect=True`` runs only).
    races: list = field(default_factory=list)

    def summary(self) -> str:
        head = "chaos OK" if self.ok else f"chaos FAILED ({len(self.problems)} problems)"
        lines = [
            f"{head}: {self.successes}/{self.requests} requests succeeded, "
            f"epochs {self.epochs_published}, "
            f"{self.failed_batches} writer batches abandoned",
            f"errors: {dict(self.error_counts)}",
            f"injected: {dict(self.injector_failures)}",
        ]
        if self.races:
            lines.append(f"races detected: {len(self.races)}")
        lines.extend(f"  !! {problem}" for problem in self.problems)
        return "\n".join(lines)


def _make_mutation(batch: int):
    """A deterministic mutation batch, safe to re-run on a fresh clone."""

    def mutate(store) -> None:
        people = list(
            store.axis_records(
                FlexKey.document(), Axis.DESCENDANT, NodeTest.name_test("person")
            )
        )
        if batch % 3 == 2 and len(people) > 4:
            store.delete_subtree(people[0].key)
            return
        parent = people[0].key.parent() if people else store.root_element().key
        key = store.insert_element(parent, "person")
        store.insert_element(key, "name", text=f"chaos{batch}")
        store.insert_element(key, "age", text=str(40 + batch))

    return mutate


def run_chaos(
    config: ChaosConfig | None = None,
    race_detect: bool = False,
    sabotage: Callable | None = None,
) -> ChaosReport:
    """Run the seeded swarm; optionally under the Eraser race detector.

    ``race_detect=True`` wraps the whole run (server construction
    included) in :meth:`~repro.analysis.concurrency.RaceDetector.
    instrument_serving`; detected races land in ``ChaosReport.races``
    and fail the report.  ``sabotage`` is the mutation-testing seam: a
    callable invoked with the freshly built server *before* any load,
    used by the test suite to null out one lock and prove the detector
    kills the mutant.  Production runs never pass it.
    """
    config = config or ChaosConfig()
    if race_detect:
        from repro.analysis.concurrency.instrument import RaceDetector

        detector = RaceDetector()
        with detector.instrument_serving():
            report = _run_swarm(config, sabotage)
        report.races = detector.summaries()
        if report.races:
            report.problems.extend(f"race: {race}" for race in report.races)
            report.ok = not report.problems
        return report
    return _run_swarm(config, sabotage)


def _run_swarm(config: ChaosConfig, sabotage: Callable | None) -> ChaosReport:
    started = config.clock()

    def remaining() -> float:
        return max(0.1, config.deadline_s - (config.clock() - started))

    injector = FaultInjector(seed=config.seed, rates=dict(config.fault_rates))
    store = load_xml(chaos_document(), name="chaos")
    server = QueryServer(
        store,
        workers=config.workers,
        max_queue_depth=config.max_queue_depth,
        default_timeout_ms=config.timeout_ms,
        fault_injector=injector,
        clock=config.clock,
    )
    if sabotage is not None:
        sabotage(server)

    problems: list = []
    #: (epoch, expression) -> serial-run key sequence.
    expected: dict = {}
    expected_lock = threading.Lock()

    def record_expected(snapshot) -> None:
        for expression in config.expressions:
            result = snapshot.engine.evaluate(expression)
            with expected_lock:
                expected[(snapshot.epoch, expression)] = list(result.keys)

    # The initial epoch's serial answers, before any concurrency exists.
    with server.manager.acquire() as snapshot:
        initial_epoch = snapshot.epoch
        record_expected(snapshot)

    outcomes: list = []
    outcomes_lock = threading.Lock()
    published_epochs: list = []
    failed_batches = [0]

    def reader(index: int) -> None:
        rng = random.Random(config.seed * 1_000_003 + index)
        for _ in range(config.queries_per_reader):
            expression = rng.choice(config.expressions)
            try:
                future = server.submit(expression)
            except ServerOverloadedError as error:
                with outcomes_lock:
                    outcomes.append((index, expression, error))
                time.sleep(rng.uniform(0.0, max(error.retry_after_s, 0.001)))
                continue
            except ServerClosedError as error:
                with outcomes_lock:
                    outcomes.append((index, expression, error))
                return
            try:
                outcome = future.result(timeout=remaining())
            except FutureTimeoutError:
                problems.append(
                    f"reader {index}: future for {expression!r} never resolved"
                )
                return
            except ReproError as error:
                # on_error="capture" resolves futures with outcomes; a
                # raised ReproError here would mean the mode leaked.
                problems.append(
                    f"reader {index}: captured-mode future raised {error!r}"
                )
                continue
            with outcomes_lock:
                outcomes.append((index, expression, outcome))

    def writer() -> None:
        rng = random.Random(config.seed * 7_777_777 + 1)
        for batch in range(config.writer_batches):
            mutation = _make_mutation(batch)
            try:
                epoch = with_retries(
                    lambda: server.apply_update(mutation),
                    attempts=8,
                    base_delay=0.001,
                    max_delay=0.01,
                    jitter=True,
                    rng=rng,
                )
            except TransientStorageError:
                failed_batches[0] += 1
                continue
            published_epochs.append(epoch)
            # Record this epoch's serial answers.  The single writer is
            # the only publisher, so the current version stays at
            # ``epoch`` for the whole block; the acquire retry only
            # absorbs injected snapshot.acquire faults.
            try:
                snapshot = with_retries(
                    server.manager.acquire, attempts=10,
                    base_delay=0.001, max_delay=0.01, jitter=True, rng=rng,
                )
            except ReproError as error:
                problems.append(f"writer: cannot record epoch {epoch}: {error!r}")
            else:
                try:
                    if snapshot.epoch == epoch:
                        record_expected(snapshot)
                    else:
                        problems.append(
                            f"writer: epoch moved {epoch} -> {snapshot.epoch} "
                            "with a single writer"
                        )
                finally:
                    try:
                        snapshot.release()
                    except TransientStorageError:
                        # Injected snapshot.release fault — by contract the
                        # refcount has already drained, so the recording
                        # above stands.
                        pass
            time.sleep(config.writer_pause_s)

    threads = [
        threading.Thread(target=reader, args=(i,), name=f"chaos-reader-{i}")
        for i in range(config.readers)
    ]
    writer_thread = threading.Thread(target=writer, name="chaos-writer")
    for thread in threads:
        thread.start()
    writer_thread.start()
    for thread in [writer_thread, *threads]:
        thread.join(timeout=remaining())
        if thread.is_alive():
            problems.append(f"watchdog: {thread.name} still running at deadline")
    server.close(timeout_s=remaining())

    # -- invariants ----------------------------------------------------------

    error_counts: Counter = Counter()
    successes = 0
    last_epoch_by_reader: dict[int, int] = {}
    observed_epochs: set = set()
    for index, expression, item in sorted(outcomes, key=lambda rec: rec[0]):
        if isinstance(item, ReproError):
            error_counts[type(item).__name__] += 1
            continue
        if item.error is not None:
            error_counts[type(item.error).__name__] += 1
            if not isinstance(item.error, ReproError):
                problems.append(
                    f"reader {index}: untyped error {item.error!r} for {expression!r}"
                )
            continue
        successes += 1
        observed_epochs.add(item.epoch)
        previous = last_epoch_by_reader.get(index)
        if previous is not None and item.epoch < previous:
            problems.append(
                f"reader {index}: epoch went backwards {previous} -> {item.epoch}"
            )
        last_epoch_by_reader[index] = item.epoch
        serial = expected.get((item.epoch, expression))
        if serial is None:
            problems.append(
                f"reader {index}: result at unpublished epoch {item.epoch} "
                f"for {expression!r}"
            )
            continue
        divergence = compare_sequences(
            f"{expression} @ epoch {item.epoch}", list(item.result.keys), serial
        )
        if divergence is not None:
            problems.append(f"torn read: {divergence}")

    known_epochs = {initial_epoch, *published_epochs}
    for epoch in observed_epochs - known_epochs:
        problems.append(f"observed epoch {epoch} was never published")
    if published_epochs != sorted(published_epochs):
        problems.append(f"published epochs not monotone: {published_epochs}")

    stats = server.stats()
    snapshots = stats["snapshots"]
    if snapshots["pinned"] != 0:
        problems.append(f"{snapshots['pinned']} snapshots still pinned after close")
    if snapshots["live_versions"] != 1:
        problems.append(
            f"{snapshots['live_versions']} versions live after close (want 1)"
        )
    if snapshots["acquires"] != snapshots["releases"]:
        problems.append(
            f"acquire/release mismatch: {snapshots['acquires']} != "
            f"{snapshots['releases']}"
        )

    return ChaosReport(
        ok=not problems,
        problems=problems,
        requests=len(outcomes),
        successes=successes,
        error_counts=dict(error_counts),
        epochs_published=list(published_epochs),
        epochs_observed=sorted(observed_epochs),
        failed_batches=failed_batches[0],
        server_stats=stats,
        injector_failures=dict(injector.failures),
    )
