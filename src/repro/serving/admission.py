"""Per-request admission control and cost-driven load shedding.

The :class:`AdmissionController` keeps the server inside its resource
envelope by refusing work it cannot finish in time, instead of queueing
unboundedly and letting every client time out:

* **Queue depth** — a request is admitted only if fewer than
  ``max_queue_depth`` requests are waiting for a worker; otherwise the
  submit raises :class:`~repro.errors.ServerOverloadedError` immediately
  with a ``retry_after_s`` hint derived from an EWMA of recent service
  times (so the hint tracks the actual workload, not a constant).
* **Concurrency cap** — ``max_concurrency`` is the worker-pool width; the
  controller reports *pressure* whenever all workers are busy or requests
  are queued, which is the signal the cost shedder keys off.
* **Cost shedding** — before executing, the worker asks
  :meth:`assess_cost` with the optimizer's estimated plan cost.  Under
  pressure, a plan costlier than ``shed_cost_limit`` is either rejected
  (``policy="reject"``) or *degraded* (``policy="degrade"``): admitted
  with a clamped page budget so it can return a bounded partial answer
  rather than hog a worker.  With no pressure every plan runs untouched —
  shedding only ever activates when the server is actually behind.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import ServerOverloadedError

#: assess_cost verdicts.
ADMIT = "admit"
DEGRADE = "degrade"


class AdmissionController:
    """Queue-depth accounting, pressure detection and cost shedding."""

    def __init__(
        self,
        max_concurrency: int = 4,
        max_queue_depth: int = 16,
        shed_cost_limit: int | None = None,
        shed_policy: str = "reject",
        ewma_alpha: float = 0.2,
        min_retry_after_s: float = 0.005,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_queue_depth < 0:
            raise ValueError(f"max_queue_depth must be >= 0, got {max_queue_depth}")
        if shed_policy not in ("reject", "degrade"):
            raise ValueError(f"shed_policy must be 'reject' or 'degrade', got {shed_policy!r}")
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self.shed_cost_limit = shed_cost_limit
        self.shed_policy = shed_policy
        self.ewma_alpha = ewma_alpha
        self.min_retry_after_s = min_retry_after_s
        self.clock = clock
        self._lock = threading.Lock()
        self._queued = 0
        self._active = 0
        self._service_ewma_s: float | None = None
        self.admitted = 0
        self.queue_rejections = 0
        self.cost_rejections = 0
        self.degraded = 0

    # -- lifecycle accounting ------------------------------------------------

    def enqueue(self) -> None:
        """Admit one request into the wait queue, or raise overloaded."""
        with self._lock:
            if self._queued >= self.max_queue_depth:
                self.queue_rejections += 1
                hint = self._retry_after_locked()
                raise ServerOverloadedError(
                    f"queue full ({self._queued}/{self.max_queue_depth} waiting, "
                    f"{self._active}/{self.max_concurrency} running)",
                    retry_after_s=hint,
                )
            self._queued += 1
            self.admitted += 1

    def abandon(self) -> None:
        """A queued request left without running (server closed mid-wait)."""
        with self._lock:
            self._queued -= 1

    def start(self) -> None:
        """A worker picked the request up: waiting -> running."""
        with self._lock:
            self._queued -= 1
            self._active += 1

    def finish(self, service_s: float) -> None:
        """The request finished; fold its service time into the EWMA."""
        with self._lock:
            self._active -= 1
            if service_s >= 0.0:
                if self._service_ewma_s is None:
                    self._service_ewma_s = service_s
                else:
                    self._service_ewma_s += self.ewma_alpha * (
                        service_s - self._service_ewma_s
                    )

    # -- pressure and shedding -----------------------------------------------

    def under_pressure(self, excluding: int = 0) -> bool:
        """All workers busy, or requests waiting for one.

        ``excluding`` discounts requests the caller itself accounts for:
        a worker assessing its own request passes 1, so that request
        does not count as the load that sheds it.
        """
        with self._lock:
            return (
                self._active - excluding >= self.max_concurrency
                or self._queued > 0
            )

    def assess_cost(self, estimated_cost: int | None, excluding: int = 0) -> str:
        """Decide a plan's fate given its estimated cost.

        Returns :data:`ADMIT` or :data:`DEGRADE`, or raises
        :class:`~repro.errors.ServerOverloadedError` (policy ``reject``).
        Plans are only ever shed *under pressure* (see
        :meth:`under_pressure`); an idle server runs everything at full
        budget.
        """
        if self.shed_cost_limit is None or estimated_cost is None:
            return ADMIT
        if estimated_cost <= self.shed_cost_limit:
            return ADMIT
        if not self.under_pressure(excluding=excluding):
            return ADMIT
        with self._lock:
            if self.shed_policy == "degrade":
                self.degraded += 1
                return DEGRADE
            self.cost_rejections += 1
            hint = self._retry_after_locked()
            raise ServerOverloadedError(
                f"estimated plan cost {estimated_cost} exceeds shed limit "
                f"{self.shed_cost_limit} under load",
                retry_after_s=hint,
            )

    def retry_after_s(self) -> float:
        """Current backoff hint for rejected clients."""
        with self._lock:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:
        # Expected wait ≈ (queue ahead + the running batch) drained at
        # max_concurrency requests per EWMA service time.
        service = self._service_ewma_s if self._service_ewma_s is not None else 0.0
        backlog = self._queued + self._active
        hint = service * (backlog + 1) / float(self.max_concurrency)
        return max(self.min_retry_after_s, hint)

    # -- introspection -------------------------------------------------------

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    def stats(self) -> dict[str, float | int | None]:
        with self._lock:
            return {
                "max_concurrency": self.max_concurrency,
                "max_queue_depth": self.max_queue_depth,
                "queued": self._queued,
                "active": self._active,
                "admitted": self.admitted,
                "queue_rejections": self.queue_rejections,
                "cost_rejections": self.cost_rejections,
                "degraded": self.degraded,
                "service_ewma_ms": (
                    None
                    if self._service_ewma_s is None
                    else self._service_ewma_s * 1000.0
                ),
                "shed_cost_limit": self.shed_cost_limit,
                "shed_policy": self.shed_policy,
            }

    def __repr__(self) -> str:
        return (
            f"<AdmissionController active={self.active}/{self.max_concurrency} "
            f"queued={self.queued}/{self.max_queue_depth}>"
        )
