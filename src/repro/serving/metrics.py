"""Server-side counters, aggregated under one lock.

:class:`ServerMetrics` is deliberately dumb: monotone counters plus
cumulative latency sums, snapshotted atomically by :meth:`snapshot`.
Percentiles are a client-side concern (the bench harness keeps raw
per-request latencies); the server itself only needs cheap aggregates
for its stats endpoint.
"""

from __future__ import annotations

import threading


class ServerMetrics:
    """Thread-safe request accounting for a :class:`~repro.serving.QueryServer`."""

    _COUNTERS = (
        "submitted",
        "completed",
        "failed",
        "shed",
        "degraded",
        "partial",
        "timeouts",
        "deadline_expired_in_queue",
        "worker_crashes",
        "release_faults",
        "updates_applied",
        "update_failures",
    )

    def __init__(self):
        self._lock = threading.Lock()
        for name in self._COUNTERS:
            setattr(self, name, 0)
        self.queued_s_total = 0.0
        self.service_s_total = 0.0

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def record_outcome(
        self, ok: bool, queued_s: float, service_s: float
    ) -> None:
        with self._lock:
            if ok:
                self.completed += 1
            else:
                self.failed += 1
            self.queued_s_total += queued_s
            self.service_s_total += service_s

    def snapshot(self) -> dict[str, float | int]:
        with self._lock:
            out: dict[str, float | int] = {
                name: getattr(self, name) for name in self._COUNTERS
            }
            finished = out["completed"] + out["failed"]
            out["queued_ms_avg"] = (
                self.queued_s_total / finished * 1000.0 if finished else 0.0
            )
            out["service_ms_avg"] = (
                self.service_s_total / finished * 1000.0 if finished else 0.0
            )
            return out
