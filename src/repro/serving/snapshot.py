"""Epoch-snapshot isolation: immutable store versions, refcounted pins.

This module formalizes the ``MassStore.epoch`` counter into a real
isolation mechanism.  A :class:`SnapshotManager` owns a chain of
**frozen** store versions:

* Readers call :meth:`SnapshotManager.acquire` and get a
  :class:`StoreSnapshot` — a refcounted pin on the version that was
  current at admission.  The pinned store is frozen (every index rejects
  mutation), so the reader can never observe a half-applied update; its
  epoch is fixed for the snapshot's whole lifetime, which also keeps the
  version's plan cache, schema cache and pinned-leaf B+-tree cursors
  valid without any locking on the read path.
* The writer calls :meth:`SnapshotManager.publish` with a mutation
  function.  The mutation runs against a private **copy-on-write clone**
  (:meth:`~repro.mass.store.MassStore.clone` — node records are immutable
  and shared; only index structure is rebuilt), the clone is frozen, and
  the current-version pointer is swapped under the manager lock.  Readers
  admitted before the swap keep their old pins; readers admitted after
  see the new epoch.  Epochs are strictly monotone across publishes.
* A replaced version is *retired*; when its refcount drains to zero it is
  reclaimed (dropped from the manager, leaving the garbage collector free
  to take the pages).  ``stats()`` exposes the accounting the chaos suite
  asserts on: live versions, pinned snapshots, publishes, reclaims.

Fault sites (see :mod:`repro.resilience.faults`): ``snapshot.acquire``
fires *before* a pin is taken (a failed acquire never leaks a refcount),
``snapshot.release`` fires *after* the refcount is dropped (an injected
release failure surfaces as a typed error while the bookkeeping stays
exact), and ``writer.publish`` fires *between* building the new version
and the pointer swap (a simulated writer crash mid-publish leaves the old
epoch published and the half-built clone unreachable).
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.engine.engine import VamanaEngine
from repro.errors import SnapshotError, StorageError
from repro.mass.store import MassStore
from repro.resilience.faults import FaultInjector


class StoreVersion:
    """One immutable published version: a frozen store and its engine."""

    __slots__ = ("store", "engine", "refcount", "retired")

    def __init__(self, store: MassStore, engine: VamanaEngine):
        self.store = store
        self.engine = engine
        self.refcount = 0
        self.retired = False

    @property
    def epoch(self) -> int:
        return self.store.epoch

    def __repr__(self) -> str:
        state = "retired" if self.retired else "current"
        return f"<StoreVersion epoch={self.epoch} pins={self.refcount} {state}>"


class StoreSnapshot:
    """A reader's pin on one store version (context manager).

    Use as ``with manager.acquire() as snapshot:`` or pair every
    ``acquire()`` with a ``try/finally: snapshot.release()`` — the VAM006
    lint rule enforces exactly this over the serving package.  Releasing
    twice (or using ``store``/``engine`` after release) raises
    :class:`~repro.errors.SnapshotError`.
    """

    __slots__ = ("_manager", "_version", "_released")

    def __init__(self, manager: "SnapshotManager", version: StoreVersion):
        self._manager = manager
        self._version = version
        self._released = False

    @property
    def epoch(self) -> int:
        return self._version.epoch

    @property
    def released(self) -> bool:
        return self._released

    @property
    def store(self) -> MassStore:
        self._ensure_held()
        return self._version.store

    @property
    def engine(self) -> VamanaEngine:
        self._ensure_held()
        return self._version.engine

    def _ensure_held(self) -> None:
        if self._released:
            raise SnapshotError(
                f"snapshot at epoch {self._version.epoch} already released"
            )

    def release(self) -> None:
        """Drop the pin.  Exactly once; a second call raises."""
        self._ensure_held()
        self._released = True
        self._manager._release(self._version)

    def __enter__(self) -> "StoreSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._released:
            self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else "held"
        return f"<StoreSnapshot epoch={self._version.epoch} {state}>"


class SnapshotManager:
    """Publishes immutable store versions and refcounts reader pins."""

    def __init__(
        self,
        store: MassStore,
        engine_options: dict | None = None,
        fault_injector: FaultInjector | None = None,
    ):
        self._engine_options = dict(engine_options or {})
        self.fault_injector = fault_injector
        store.freeze()
        self._current = StoreVersion(
            store, VamanaEngine(store, **self._engine_options)
        )
        #: Guards the version pointer, refcounts and counters.
        self._lock = threading.Lock()
        #: Serializes writers: one clone+mutate+swap at a time.
        self._write_lock = threading.Lock()
        #: Versions replaced by a publish but still pinned by readers.
        self._retired: list[StoreVersion] = []
        self.acquires = 0
        self.releases = 0
        self.publishes = 0
        self.noop_publishes = 0
        self.failed_publishes = 0
        self.reclaimed = 0

    # -- reader side ---------------------------------------------------------

    @property
    def current_epoch(self) -> int:
        with self._lock:
            return self._current.epoch

    def acquire(self) -> StoreSnapshot:
        """Pin the currently published version.

        The fault site fires before any bookkeeping, so an injected
        acquire failure rejects the request without leaking a pin.
        """
        if self.fault_injector is not None:
            self.fault_injector.on_access("snapshot.acquire")
        with self._lock:
            version = self._current
            version.refcount += 1
            self.acquires += 1
        return StoreSnapshot(self, version)

    def _release(self, version: StoreVersion) -> None:
        with self._lock:
            version.refcount -= 1
            self.releases += 1
            if version.retired and version.refcount == 0:
                self._retired.remove(version)
                self.reclaimed += 1
        # After the bookkeeping: an injected release fault surfaces as a
        # typed error to the caller, but refcounts have already drained.
        if self.fault_injector is not None:
            self.fault_injector.on_access("snapshot.release")

    # -- writer side ---------------------------------------------------------

    def publish(self, mutate: Callable[[MassStore], None]) -> int:
        """Apply ``mutate`` to a private clone and swap it in atomically.

        Returns the published epoch.  If ``mutate`` raises, or the
        ``writer.publish`` fault fires, the half-built clone is discarded
        and readers keep the old version — a publish is all-or-nothing.
        A mutation that leaves the epoch unchanged (no-op) publishes
        nothing.
        """
        epoch, _snapshot = self._publish(mutate, pin=False)
        return epoch

    def publish_pinned(
        self, mutate: Callable[[MassStore], None]
    ) -> tuple[int, StoreSnapshot | None]:
        """:meth:`publish`, atomically pinning the new version.

        The returned snapshot (None for a no-op publish) lets a test
        harness keep every historical epoch addressable for differential
        verification; the caller owns the pin and must release it.
        """
        return self._publish(mutate, pin=True)

    def _publish(
        self, mutate: Callable[[MassStore], None], pin: bool
    ) -> tuple[int, StoreSnapshot | None]:
        with self._write_lock:
            # The version pointer is _lock territory even here: a reader
            # acquiring mid-publish must never see a torn read of it.
            with self._lock:
                base = self._current
            try:
                clone = base.store.clone()
                mutate(clone)
                if clone.epoch <= base.epoch:
                    with self._lock:
                        self.noop_publishes += 1
                    return base.epoch, None
                if self.fault_injector is not None:
                    self.fault_injector.on_access("writer.publish")
            except StorageError:
                with self._lock:
                    self.failed_publishes += 1
                raise
            clone.freeze()
            version = StoreVersion(
                clone, VamanaEngine(clone, **self._engine_options)
            )
            with self._lock:
                old = self._current
                self._current = version
                old.retired = True
                if old.refcount > 0:
                    self._retired.append(old)
                else:
                    self.reclaimed += 1
                self.publishes += 1
                snapshot = None
                if pin:
                    version.refcount += 1
                    self.acquires += 1
                    snapshot = StoreSnapshot(self, version)
            return version.epoch, snapshot

    # -- accounting ----------------------------------------------------------

    def live_versions(self) -> int:
        """Versions still reachable: the current one plus pinned retirees."""
        with self._lock:
            return 1 + len(self._retired)

    def pinned(self) -> int:
        """Total outstanding reader pins across all versions."""
        with self._lock:
            return self._current.refcount + sum(
                version.refcount for version in self._retired
            )

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "epoch": self._current.epoch,
                "live_versions": 1 + len(self._retired),
                "pinned": self._current.refcount
                + sum(version.refcount for version in self._retired),
                "acquires": self.acquires,
                "releases": self.releases,
                "publishes": self.publishes,
                "noop_publishes": self.noop_publishes,
                "failed_publishes": self.failed_publishes,
                "reclaimed": self.reclaimed,
            }

    def __repr__(self) -> str:
        return (
            f"<SnapshotManager epoch={self.current_epoch} "
            f"versions={self.live_versions()} pinned={self.pinned()}>"
        )
