"""``repro.serving`` — the concurrent query server.

The serving layer turns the single-session engine into a multi-client
server built for the paper's "millions of users" framing:

* :mod:`~repro.serving.snapshot` — epoch-snapshot isolation: frozen
  copy-on-write store versions, refcounted reader pins, atomic publish;
* :mod:`~repro.serving.admission` — bounded queueing, pressure
  detection and cost-estimator-driven load shedding;
* :mod:`~repro.serving.server` — the thread-pool core
  (:class:`QueryServer`) evaluating admitted requests under per-request
  :class:`~repro.resilience.QueryGuard` limits;
* :mod:`~repro.serving.frontend` — a line-protocol TCP listener and an
  asyncio adapter over the same core;
* :mod:`~repro.serving.chaos` — the seeded 64-reader/1-writer stress
  harness asserting the snapshot invariants.

See ``DESIGN.md`` § "Serving, snapshots & admission control".
"""

from repro.serving.admission import AdmissionController
from repro.serving.chaos import ChaosConfig, ChaosReport, run_chaos
from repro.serving.frontend import AsyncFrontend, TcpFrontend
from repro.serving.metrics import ServerMetrics
from repro.serving.server import QueryOutcome, QueryServer
from repro.serving.snapshot import SnapshotManager, StoreSnapshot, StoreVersion

__all__ = [
    "AdmissionController",
    "AsyncFrontend",
    "ChaosConfig",
    "ChaosReport",
    "QueryOutcome",
    "QueryServer",
    "ServerMetrics",
    "SnapshotManager",
    "StoreSnapshot",
    "StoreVersion",
    "TcpFrontend",
    "run_chaos",
]
