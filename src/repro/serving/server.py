"""The concurrent query server: thread-pool core over snapshot isolation.

:class:`QueryServer` wires the serving pieces together:

* a :class:`~repro.serving.snapshot.SnapshotManager` gives every admitted
  request an immutable store version to read (and the writer a private
  clone to mutate),
* an :class:`~repro.serving.admission.AdmissionController` bounds the
  wait queue, detects pressure and sheds expensive plans,
* a fixed pool of worker threads drains a FIFO request queue; each
  request runs under its own :class:`~repro.resilience.QueryGuard`
  carved from the client's deadline/page/result limits.

``submit`` returns a :class:`concurrent.futures.Future` resolving to a
:class:`QueryOutcome`.  With the default ``on_error="capture"`` the
future *always* resolves to an outcome — errors are typed and attached,
partial-result truncation (deadline/budget trips) is flagged — so one
misbehaving request can never poison a client's result loop.  With
``on_error="raise"`` the future re-raises the typed error instead.

Every worker releases its snapshot on all exit paths (the VAM006 lint
rule checks this package for exactly that pattern), so reader pins drain
to zero even when queries fail, crash by injection, or are shed.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from repro.cost.estimator import plan_cost
from repro.errors import (
    BudgetExceededError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
    TransientStorageError,
)
from repro.mass.flexkey import FlexKey
from repro.mass.store import MassStore
from repro.resilience.faults import FaultInjector
from repro.resilience.guard import QueryGuard
from repro.serving.admission import DEGRADE, AdmissionController
from repro.serving.metrics import ServerMetrics
from repro.serving.snapshot import SnapshotManager, StoreSnapshot


@dataclass
class QueryOutcome:
    """What happened to one served request.

    ``ok`` means a complete result at ``epoch``.  Otherwise ``error``
    holds the typed failure; ``partial`` marks failures where the query
    was genuinely progressing but a deadline or budget cut it short
    (the engine discards partial node-sets, so no partial data leaks —
    the flag tells the client *why* there is no result).  ``degraded``
    marks requests the admission controller ran with a clamped page
    budget under load.
    """

    expression: str
    ok: bool
    epoch: int | None = None
    result: object | None = None
    error: ReproError | None = None
    degraded: bool = False
    partial: bool = False
    queued_s: float = 0.0
    service_s: float = 0.0

    @property
    def error_type(self) -> str | None:
        return None if self.error is None else type(self.error).__name__

    def raise_for_error(self) -> "QueryOutcome":
        if self.error is not None:
            raise self.error
        return self

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"error={self.error_type}"
        return f"<QueryOutcome {self.expression!r} {state} epoch={self.epoch}>"


@dataclass
class _Request:
    expression: str
    future: Future
    context: FlexKey | None
    optimize: bool
    timeout_ms: float | None
    max_pages: int | None
    max_results: int | None
    on_error: str
    enqueued_at: float = 0.0


_STOP = object()


class QueryServer:
    """Evaluate many concurrent XPath queries over one evolving store."""

    def __init__(
        self,
        store: MassStore,
        workers: int = 2,
        max_queue_depth: int | None = None,
        default_timeout_ms: float | None = None,
        default_max_pages: int | None = None,
        default_max_results: int | None = None,
        shed_cost_limit: int | None = None,
        shed_policy: str = "reject",
        degrade_page_budget: int = 256,
        on_error: str = "capture",
        engine_options: dict | None = None,
        fault_injector: FaultInjector | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if on_error not in ("capture", "raise"):
            raise ValueError(f"on_error must be 'capture' or 'raise', got {on_error!r}")
        if degrade_page_budget < 1:
            raise ValueError(
                f"degrade_page_budget must be >= 1, got {degrade_page_budget}"
            )
        self.workers = workers
        self.default_timeout_ms = default_timeout_ms
        self.default_max_pages = default_max_pages
        self.default_max_results = default_max_results
        self.degrade_page_budget = degrade_page_budget
        self.default_on_error = on_error
        self.fault_injector = fault_injector
        self.clock = clock
        self.manager = SnapshotManager(
            store, engine_options=engine_options, fault_injector=fault_injector
        )
        self.admission = AdmissionController(
            max_concurrency=workers,
            max_queue_depth=(
                2 * workers if max_queue_depth is None else max_queue_depth
            ),
            shed_cost_limit=shed_cost_limit,
            shed_policy=shed_policy,
            clock=clock,
        )
        self.metrics = ServerMetrics()
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._close_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- client API ----------------------------------------------------------

    def submit(
        self,
        expression: str,
        context: FlexKey | None = None,
        optimize: bool = True,
        timeout_ms: float | None = None,
        max_pages: int | None = None,
        max_results: int | None = None,
        on_error: str | None = None,
    ) -> Future:
        """Admit one query; returns a Future of :class:`QueryOutcome`.

        Raises :class:`~repro.errors.ServerOverloadedError` *synchronously*
        when the wait queue is full (the client gets its retry-after hint
        without burning a worker), and
        :class:`~repro.errors.ServerClosedError` after :meth:`close`.
        """
        if self.closed:
            raise ServerClosedError()
        self.metrics.incr("submitted")
        try:
            self.admission.enqueue()
        except ServerOverloadedError:
            self.metrics.incr("shed")
            raise
        request = _Request(
            expression=expression,
            future=Future(),
            context=context,
            optimize=optimize,
            timeout_ms=(
                self.default_timeout_ms if timeout_ms is None else timeout_ms
            ),
            max_pages=(self.default_max_pages if max_pages is None else max_pages),
            max_results=(
                self.default_max_results if max_results is None else max_results
            ),
            on_error=self.default_on_error if on_error is None else on_error,
            enqueued_at=self.clock(),
        )
        # The closed re-check and the enqueue are one atomic step under
        # the close lock: ``close()`` sets ``_closed`` and pushes the stop
        # markers under the same lock, so a request can never land behind
        # them — which would strand its future forever once the workers
        # have exited.
        with self._close_lock:
            if self._closed:
                self.admission.abandon()
                raise ServerClosedError()
            self._queue.put(request)
        return request.future

    def evaluate(self, expression: str, **options) -> QueryOutcome:
        """Blocking :meth:`submit`; returns the outcome (or raises it)."""
        return self.submit(expression, **options).result()

    def apply_update(self, mutate: Callable[[MassStore], None]) -> int:
        """Publish one mutation batch; returns the new epoch.

        Serialized against other writers by the snapshot manager.  On an
        injected publish fault the update raises
        :class:`~repro.errors.TransientStorageError` and no new epoch is
        visible — callers may retry with
        :func:`~repro.resilience.with_retries`.
        """
        if self.closed:
            raise ServerClosedError()
        try:
            epoch = self.manager.publish(mutate)
        except ReproError:
            self.metrics.incr("update_failures")
            raise
        self.metrics.incr("updates_applied")
        return epoch

    def apply_update_pinned(
        self, mutate: Callable[[MassStore], None]
    ) -> tuple[int, StoreSnapshot | None]:
        """:meth:`apply_update`, pinning the published version.

        The caller owns the returned pin (None for a no-op publish) and
        must release it — the chaos harness uses this to keep historical
        epochs addressable for differential verification.
        """
        if self.closed:
            raise ServerClosedError()
        try:
            published = self.manager.publish_pinned(mutate)
        except ReproError:
            self.metrics.incr("update_failures")
            raise
        self.metrics.incr("updates_applied")
        return published

    def close(self, timeout_s: float | None = 30.0) -> None:
        """Stop accepting work, drain in-flight requests, join workers.

        Requests already admitted still run to completion; each worker
        exits when it drains to the stop marker behind them.  Idempotent.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._threads:
                self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout_s)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        with self._close_lock:
            return self._closed

    def stats(self) -> dict:
        """One atomic-ish view across the server's three accountants."""
        return {
            "workers": self.workers,
            "closed": self.closed,
            "requests": self.metrics.snapshot(),
            "admission": self.admission.stats(),
            "snapshots": self.manager.stats(),
        }

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is _STOP:
                break
            try:
                self._serve(request)
            except (QueryTimeoutError, BudgetExceededError, QueryCancelledError):
                # Guard errors are captured per-request in _execute; one
                # escaping to here is a bug that must stay loud.
                raise
            except Exception as error:  # defensive: never strand a future
                if not request.future.done():
                    request.future.set_exception(error)

    def _serve(self, request: _Request) -> None:
        self.admission.start()
        if not request.future.set_running_or_notify_cancel():
            self.admission.finish(0.0)
            return
        queued_s = max(0.0, self.clock() - request.enqueued_at)
        started = self.clock()
        outcome = self._execute(request, queued_s)
        outcome.service_s = max(0.0, self.clock() - started)
        self.admission.finish(outcome.service_s)
        self.metrics.record_outcome(outcome.ok, queued_s, outcome.service_s)
        if outcome.ok or request.on_error == "capture":
            request.future.set_result(outcome)
        else:
            request.future.set_exception(outcome.error)

    def _execute(self, request: _Request, queued_s: float) -> QueryOutcome:
        outcome = QueryOutcome(
            expression=request.expression, ok=False, queued_s=queued_s
        )
        remaining_ms: float | None = None
        if request.timeout_ms is not None:
            remaining_ms = request.timeout_ms - queued_s * 1000.0
            if remaining_ms <= 0.0:
                # The deadline expired while waiting for a worker: reject
                # without touching the store at all.
                self.metrics.incr("deadline_expired_in_queue")
                self.metrics.incr("timeouts")
                outcome.error = QueryTimeoutError(
                    request.timeout_ms, queued_s * 1000.0
                )
                outcome.partial = True
                return outcome
        snapshot = None
        try:
            try:
                snapshot = self.manager.acquire()
                outcome.epoch = snapshot.epoch
                self._maybe_crash_worker()
                engine = snapshot.engine
                plan, trace = engine.plan(request.expression, request.optimize)
                verdict = self.admission.assess_cost(
                    self._estimated_cost(engine, plan), excluding=1
                )
                max_pages = request.max_pages
                if verdict == DEGRADE:
                    outcome.degraded = True
                    self.metrics.incr("degraded")
                    max_pages = (
                        self.degrade_page_budget
                        if max_pages is None
                        else min(max_pages, self.degrade_page_budget)
                    )
                guard = None
                if (
                    remaining_ms is not None
                    or max_pages is not None
                    or request.max_results is not None
                ):
                    guard = QueryGuard(
                        timeout_ms=remaining_ms,
                        max_pages=max_pages,
                        max_results=request.max_results,
                    )
                outcome.result = engine.execute(
                    plan, request.context, trace, guard=guard
                )
                outcome.ok = True
            finally:
                if snapshot is not None and not snapshot.released:
                    try:
                        snapshot.release()
                    except ReproError as release_error:
                        self.metrics.incr("release_faults")
                        if outcome.ok:
                            # The query finished but its pin's release
                            # failed; surface the typed error rather than
                            # pretend the request was clean.
                            outcome.ok = False
                            outcome.result = None
                            outcome.error = release_error
        except ReproError as error:
            outcome.error = error
            outcome.result = None
            if isinstance(error, QueryTimeoutError):
                self.metrics.incr("timeouts")
                outcome.partial = True
            elif isinstance(error, BudgetExceededError):
                outcome.partial = True
            elif isinstance(error, ServerOverloadedError):
                self.metrics.incr("shed")
        return outcome

    def _maybe_crash_worker(self) -> None:
        if self.fault_injector is None:
            return
        try:
            self.fault_injector.on_access("worker.crash")
        except TransientStorageError:
            self.metrics.incr("worker_crashes")
            raise

    def _estimated_cost(self, engine, plan) -> int | None:
        """The optimizer's whole-plan cost, for the shedding decision.

        Estimation walks the (tiny) plan against the frozen store's
        statistics, so concurrent re-annotation writes identical values —
        cheap enough to recompute per request, and only computed at all
        when a shed limit is configured.
        """
        if self.admission.shed_cost_limit is None:
            return None
        engine.estimator.estimate(plan)
        return plan_cost(plan)
