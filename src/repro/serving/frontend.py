"""Network front ends over :class:`~repro.serving.server.QueryServer`.

Two adapters share the thread-pool core:

* :class:`TcpFrontend` — a line-oriented TCP protocol (one request per
  line, one JSON response per line) served by a threading socket server.
  Requests are either a bare XPath expression or a JSON object
  ``{"xpath": ..., "timeout_ms": ..., "max_pages": ..., "max_results":
  ...}``; the special line ``!stats`` returns the server's counters.
  Responses carry ``ok``, ``epoch``, ``count``, a bounded ``labels``
  sample, and on failure the typed ``error`` name plus ``retry_after_s``
  for overload rejections — enough for a client to implement jittered
  backoff without parsing prose.
* :class:`AsyncFrontend` — an asyncio adapter: ``await evaluate(...)``
  bridges the worker pool's ``concurrent.futures.Future`` onto the event
  loop with ``asyncio.wrap_future``, so an async application multiplexes
  thousands of in-flight XPath queries over the same bounded worker pool
  (admission control still applies — overload surfaces as the same typed
  exception, thrown inside the coroutine).
"""

from __future__ import annotations

import asyncio
import json
import socketserver
import threading

from repro.errors import ReproError, ServerOverloadedError
from repro.serving.server import QueryOutcome, QueryServer

#: Cap the labels echoed per response; full results stay server-side.
MAX_LABELS = 32


def outcome_to_wire(outcome: QueryOutcome, max_labels: int = MAX_LABELS) -> dict:
    """Flatten a :class:`QueryOutcome` into a JSON-serializable response."""
    response: dict = {
        "ok": outcome.ok,
        "epoch": outcome.epoch,
        "degraded": outcome.degraded,
        "partial": outcome.partial,
        "queued_ms": round(outcome.queued_s * 1000.0, 3),
        "service_ms": round(outcome.service_s * 1000.0, 3),
    }
    if outcome.ok and outcome.result is not None:
        labels = outcome.result.labels()
        response["count"] = len(outcome.result)
        response["labels"] = labels[:max_labels]
        response["truncated_labels"] = len(labels) > max_labels
    else:
        response["count"] = 0
        response["error"] = outcome.error_type
        response["message"] = str(outcome.error) if outcome.error else None
        if isinstance(outcome.error, ServerOverloadedError):
            response["retry_after_s"] = outcome.error.retry_after_s
    return response


def error_to_wire(error: ReproError) -> dict:
    response: dict = {
        "ok": False,
        "count": 0,
        "error": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, ServerOverloadedError):
        response["retry_after_s"] = error.retry_after_s
    return response


def parse_request_line(line: str) -> dict:
    """A request line: bare XPath, or a JSON object with an ``xpath`` key."""
    text = line.strip()
    if text.startswith("{"):
        body = json.loads(text)
        if not isinstance(body, dict) or "xpath" not in body:
            raise ValueError("JSON request must be an object with an 'xpath' key")
        return body
    return {"xpath": text}


class _QueryHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: QueryServer = self.server.query_server  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            if line == "!stats":
                self._reply(server.stats())
                continue
            if line == "!quit":
                break
            try:
                body = parse_request_line(line)
                outcome = server.evaluate(
                    body["xpath"],
                    timeout_ms=body.get("timeout_ms"),
                    max_pages=body.get("max_pages"),
                    max_results=body.get("max_results"),
                    on_error="capture",
                )
                self._reply(outcome_to_wire(outcome))
            except ReproError as error:
                # Synchronous rejections: overload at submit, server closed.
                self._reply(error_to_wire(error))
            except (ValueError, json.JSONDecodeError) as error:
                self._reply({"ok": False, "count": 0, "error": "BadRequest",
                             "message": str(error)})

    def _reply(self, payload: dict) -> None:
        self.wfile.write((json.dumps(payload) + "\n").encode("utf-8"))
        self.wfile.flush()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TcpFrontend:
    """Line-protocol TCP listener delegating to a :class:`QueryServer`."""

    def __init__(self, server: QueryServer, host: str = "127.0.0.1", port: int = 0):
        self.query_server = server
        self._tcp = _ThreadingTCPServer((host, port), _QueryHandler)
        self._tcp.query_server = server  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port 0 resolves to the kernel's pick."""
        return self._tcp.server_address[:2]

    def start(self) -> "TcpFrontend":
        """Serve in a background thread; returns immediately."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve-tcp", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop`."""
        self._tcp.serve_forever()

    def stop(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "TcpFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class AsyncFrontend:
    """asyncio adapter: await query outcomes from the thread-pool core."""

    def __init__(self, server: QueryServer):
        self.server = server

    async def evaluate(self, expression: str, **options) -> QueryOutcome:
        """Submit on the event-loop thread, await completion off-loop.

        Submission itself is non-blocking (admission either enqueues or
        raises immediately), so calling it inline keeps the typed
        overload rejection synchronous with the coroutine that caused it.
        """
        future = self.server.submit(expression, **options)
        return await asyncio.wrap_future(future)

    async def gather(self, expressions, **options) -> list[QueryOutcome | ReproError]:
        """Evaluate many expressions concurrently; rejections become values.

        Overload rejections are expected under pressure — returning them
        as values (instead of cancelling the whole gather) lets callers
        count sheds and retry selectively.
        """
        async def one(expression: str):
            try:
                return await self.evaluate(expression, **options)
            except ReproError as error:
                return error

        return list(await asyncio.gather(*(one(e) for e in expressions)))
