"""Streaming XML event types.

The tokenizer yields these instead of building a tree, so the MASS loader
can index arbitrarily large documents with O(depth) transient memory —
the scalability property the paper contrasts against DOM engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class XmlEvent:
    """Base class for all parse events (carries the source line)."""

    line: int = field(default=0, kw_only=True)


@dataclass(frozen=True, slots=True)
class StartElement(XmlEvent):
    """``<name attr="value" …>`` — attributes in document order."""

    name: str
    attributes: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True, slots=True)
class EndElement(XmlEvent):
    """``</name>`` (also emitted for self-closing elements)."""

    name: str


@dataclass(frozen=True, slots=True)
class Characters(XmlEvent):
    """Text content with entities already resolved."""

    text: str


@dataclass(frozen=True, slots=True)
class Comment(XmlEvent):
    """``<!-- text -->``."""

    text: str


@dataclass(frozen=True, slots=True)
class ProcessingInstruction(XmlEvent):
    """``<?target data?>``."""

    target: str
    data: str
