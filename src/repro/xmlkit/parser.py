"""A from-scratch, non-validating XML 1.0 tokenizer.

Covers the subset every real-world auction/benchmark document uses:
elements, attributes (both quote styles), character data, the five
predefined entities plus decimal/hex character references, CDATA sections,
comments, processing instructions, the XML declaration, and (skipped)
internal DOCTYPE subsets.  Well-formedness is enforced: tags must balance,
attribute names must not repeat, exactly one document element.

The parser is a generator: callers pull :class:`~repro.xmlkit.events`
objects one at a time, so memory use is independent of document size.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XmlError
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlEvent,
)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char in _NAME_START_EXTRA


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in _NAME_EXTRA


class _Cursor:
    """Position tracker over the document text with line accounting."""

    __slots__ = ("text", "pos", "line")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + count]
        self.line += chunk.count("\n")
        self.pos += count
        return chunk

    def advance_until(self, token: str, error: str) -> str:
        """Consume and return text up to ``token``; consumes the token too."""
        index = self.text.find(token, self.pos)
        if index < 0:
            raise XmlError(error, self.line)
        chunk = self.text[self.pos : index]
        self.line += chunk.count("\n")
        self.pos = index + len(token)
        return chunk

    def skip_whitespace(self) -> None:
        text = self.text
        while self.pos < len(text) and text[self.pos] in " \t\r\n":
            if text[self.pos] == "\n":
                self.line += 1
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or not _is_name_start(self.peek()):
            raise XmlError(f"expected a name, found {self.peek()!r}", self.line)
        self.pos += 1
        text = self.text
        while self.pos < len(text) and _is_name_char(text[self.pos]):
            self.pos += 1
        return text[start : self.pos]


def resolve_entities(raw: str, line: int = 0) -> str:
    """Replace predefined and numeric character references in ``raw``."""
    if "&" not in raw:
        return raw
    pieces: list[str] = []
    position = 0
    while True:
        amp = raw.find("&", position)
        if amp < 0:
            pieces.append(raw[position:])
            break
        pieces.append(raw[position:amp])
        semicolon = raw.find(";", amp + 1)
        if semicolon < 0:
            raise XmlError("unterminated entity reference", line)
        entity = raw[amp + 1 : semicolon]
        if entity.startswith("#x") or entity.startswith("#X"):
            pieces.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            pieces.append(chr(int(entity[1:])))
        elif entity in _PREDEFINED_ENTITIES:
            pieces.append(_PREDEFINED_ENTITIES[entity])
        else:
            raise XmlError(f"unknown entity &{entity};", line)
        position = semicolon + 1
    return "".join(pieces)


def parse_events(text: str, keep_whitespace_text: bool = False) -> Iterator[XmlEvent]:
    """Tokenize an XML document string into a stream of events.

    Whitespace-only text nodes are dropped by default (the XMark data is
    pretty-printed; indexing indentation would only distort statistics).
    Pass ``keep_whitespace_text=True`` for full fidelity.
    """
    cursor = _Cursor(text)
    open_elements: list[str] = []
    seen_root = False

    cursor.skip_whitespace()
    while not cursor.at_end():
        if cursor.peek() != "<":
            yield from _parse_text(cursor, open_elements, keep_whitespace_text)
            continue
        if cursor.startswith("<?"):
            event = _parse_processing_instruction(cursor)
            if event is not None:
                yield event
        elif cursor.startswith("<!--"):
            yield _parse_comment(cursor)
        elif cursor.startswith("<![CDATA["):
            yield from _parse_cdata(cursor, open_elements)
        elif cursor.startswith("<!DOCTYPE"):
            _skip_doctype(cursor)
        elif cursor.startswith("</"):
            yield _parse_end_tag(cursor, open_elements)
        else:
            seen_root = _check_root(cursor, open_elements, seen_root)
            yield from _parse_start_tag(cursor, open_elements)
        if not open_elements:
            cursor.skip_whitespace()
    if open_elements:
        raise XmlError(f"unclosed element <{open_elements[-1]}>", cursor.line)
    if not seen_root:
        raise XmlError("document has no root element", cursor.line)


def parse_string(text: str, keep_whitespace_text: bool = False) -> list[XmlEvent]:
    """Eager variant of :func:`parse_events` (mainly for tests)."""
    return list(parse_events(text, keep_whitespace_text=keep_whitespace_text))


def _check_root(cursor: _Cursor, open_elements: list[str], seen_root: bool) -> bool:
    if not open_elements and seen_root:
        raise XmlError("multiple document elements", cursor.line)
    return True


def _parse_text(
    cursor: _Cursor, open_elements: list[str], keep_whitespace: bool
) -> Iterator[Characters]:
    line = cursor.line
    index = cursor.text.find("<", cursor.pos)
    if index < 0:
        index = len(cursor.text)
    raw = cursor.text[cursor.pos : index]
    cursor.line += raw.count("\n")
    cursor.pos = index
    if not open_elements:
        if raw.strip():
            raise XmlError("character data outside the document element", line)
        return
    if not keep_whitespace and not raw.strip():
        return
    yield Characters(resolve_entities(raw, line), line=line)


def _parse_processing_instruction(cursor: _Cursor) -> ProcessingInstruction | None:
    line = cursor.line
    cursor.advance(2)  # <?
    target = cursor.read_name()
    body = cursor.advance_until("?>", "unterminated processing instruction")
    if target.lower() == "xml":
        return None  # the XML declaration is not reported as an event
    return ProcessingInstruction(target, body.strip(), line=line)


def _parse_comment(cursor: _Cursor) -> Comment:
    line = cursor.line
    cursor.advance(4)  # <!--
    body = cursor.advance_until("-->", "unterminated comment")
    if "--" in body:
        raise XmlError("'--' not allowed inside a comment", line)
    return Comment(body, line=line)


def _parse_cdata(cursor: _Cursor, open_elements: list[str]) -> Iterator[Characters]:
    line = cursor.line
    if not open_elements:
        raise XmlError("CDATA outside the document element", line)
    cursor.advance(9)  # <![CDATA[
    body = cursor.advance_until("]]>", "unterminated CDATA section")
    yield Characters(body, line=line)


def _skip_doctype(cursor: _Cursor) -> None:
    """Skip a DOCTYPE declaration, including an internal subset."""
    depth = 0
    while not cursor.at_end():
        char = cursor.advance()
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == ">" and depth <= 0:
            return
    raise XmlError("unterminated DOCTYPE", cursor.line)


def _parse_end_tag(cursor: _Cursor, open_elements: list[str]) -> EndElement:
    line = cursor.line
    cursor.advance(2)  # </
    name = cursor.read_name()
    cursor.skip_whitespace()
    if cursor.peek() != ">":
        raise XmlError(f"malformed end tag </{name}", line)
    cursor.advance()
    if not open_elements:
        raise XmlError(f"unexpected end tag </{name}>", line)
    expected = open_elements.pop()
    if expected != name:
        raise XmlError(f"mismatched tags: <{expected}> closed by </{name}>", line)
    return EndElement(name, line=line)


def _parse_start_tag(cursor: _Cursor, open_elements: list[str]) -> Iterator[XmlEvent]:
    line = cursor.line
    cursor.advance()  # <
    name = cursor.read_name()
    attributes: list[tuple[str, str]] = []
    seen_names: set[str] = set()
    while True:
        cursor.skip_whitespace()
        char = cursor.peek()
        if char == ">":
            cursor.advance()
            open_elements.append(name)
            yield StartElement(name, tuple(attributes), line=line)
            return
        if char == "/":
            cursor.advance()
            if cursor.peek() != ">":
                raise XmlError(f"malformed empty-element tag <{name}/", line)
            cursor.advance()
            yield StartElement(name, tuple(attributes), line=line)
            yield EndElement(name, line=line)
            return
        if not char:
            raise XmlError(f"unterminated start tag <{name}", line)
        attr_name = cursor.read_name()
        if attr_name in seen_names:
            raise XmlError(f"duplicate attribute {attr_name!r} on <{name}>", line)
        seen_names.add(attr_name)
        cursor.skip_whitespace()
        if cursor.peek() != "=":
            raise XmlError(f"attribute {attr_name!r} missing '='", line)
        cursor.advance()
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise XmlError(f"attribute {attr_name!r} value must be quoted", line)
        cursor.advance()
        raw_value = cursor.advance_until(quote, f"unterminated value for {attr_name!r}")
        if "<" in raw_value:
            raise XmlError(f"'<' not allowed in attribute value {attr_name!r}", line)
        attributes.append((attr_name, resolve_entities(raw_value, line)))
