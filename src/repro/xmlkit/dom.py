"""A lightweight in-memory DOM.

Used by the baseline engines (the paper's Galax and Jaxen stand-ins are
DOM-based, and eXist's stand-in falls back to DOM traversal for value
predicates).  Every node carries a document-order position so that result
sets from different engines can be compared and sorted consistently.

The deliberately simple design — one node class, children in a list,
parent pointers — mirrors the memory profile the paper criticises: the
whole document is resident before the first query step runs.
"""

from __future__ import annotations

from typing import Iterator

from repro.mass.records import NodeKind
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlEvent,
)
from repro.xmlkit.parser import parse_events


class DomNode:
    """One DOM node; ``kind`` reuses the storage layer's :class:`NodeKind`."""

    __slots__ = ("kind", "name", "value", "parent", "children", "attributes", "order")

    def __init__(
        self,
        kind: NodeKind,
        name: str = "",
        value: str = "",
        parent: "DomNode | None" = None,
    ):
        self.kind = kind
        self.name = name
        self.value = value
        self.parent = parent
        self.children: list[DomNode] = []
        self.attributes: list[DomNode] = []
        self.order = -1

    # -- navigation ---------------------------------------------------------

    def child_elements(self) -> Iterator["DomNode"]:
        return (child for child in self.children if child.kind is NodeKind.ELEMENT)

    def descendants(self) -> Iterator["DomNode"]:
        """All descendants in document order (excluding self and attributes)."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def ancestors(self) -> Iterator["DomNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def following_siblings(self) -> Iterator["DomNode"]:
        if self.parent is None or self.kind is NodeKind.ATTRIBUTE:
            return iter(())
        siblings = self.parent.children
        index = siblings.index(self)
        return iter(siblings[index + 1 :])

    def preceding_siblings(self) -> Iterator["DomNode"]:
        """Preceding siblings in reverse document order (XPath semantics)."""
        if self.parent is None or self.kind is NodeKind.ATTRIBUTE:
            return iter(())
        siblings = self.parent.children
        index = siblings.index(self)
        return iter(tuple(reversed(siblings[:index])))

    # -- content ------------------------------------------------------------

    def string_value(self) -> str:
        """The XPath string-value of this node."""
        if self.kind in (NodeKind.TEXT, NodeKind.COMMENT, NodeKind.ATTRIBUTE):
            return self.value
        if self.kind is NodeKind.PROCESSING_INSTRUCTION:
            return self.value
        pieces = []
        if self.kind in (NodeKind.ELEMENT, NodeKind.DOCUMENT):
            for node in self.descendants():
                if node.kind is NodeKind.TEXT:
                    pieces.append(node.value)
        return "".join(pieces)

    def get_attribute(self, name: str) -> str | None:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute.value
        return None

    # -- diagnostics ----------------------------------------------------------

    def __repr__(self) -> str:
        if self.kind is NodeKind.ELEMENT:
            return f"<DomNode element {self.name} order={self.order}>"
        if self.kind is NodeKind.TEXT:
            return f"<DomNode text {self.value[:20]!r} order={self.order}>"
        return f"<DomNode {self.kind.value} {self.name} order={self.order}>"


class DomDocument:
    """The document node plus bookkeeping shared by the baselines."""

    def __init__(self, root_node: DomNode, node_count: int, text_bytes: int):
        self.document_node = root_node
        self.node_count = node_count
        self.text_bytes = text_bytes

    @property
    def document_element(self) -> DomNode:
        for child in self.document_node.children:
            if child.kind is NodeKind.ELEMENT:
                return child
        raise ValueError("document has no element")

    def all_nodes(self) -> Iterator[DomNode]:
        """Document node, then every descendant, attributes after owners."""
        yield self.document_node
        stack = list(reversed(self.document_node.children))
        while stack:
            node = stack.pop()
            yield node
            yield from node.attributes
            stack.extend(reversed(node.children))


def build_dom(source: str | Iterator[XmlEvent]) -> DomDocument:
    """Build a DOM from a document string or a prepared event stream."""
    events = parse_events(source) if isinstance(source, str) else source
    document = DomNode(NodeKind.DOCUMENT)
    document.order = 0
    stack = [document]
    order = 1
    node_count = 1
    text_bytes = 0
    for event in events:
        parent = stack[-1]
        if isinstance(event, StartElement):
            element = DomNode(NodeKind.ELEMENT, name=event.name, parent=parent)
            element.order = order
            order += 1
            node_count += 1
            parent.children.append(element)
            for attr_name, attr_value in event.attributes:
                attribute = DomNode(
                    NodeKind.ATTRIBUTE, name=attr_name, value=attr_value, parent=element
                )
                attribute.order = order
                order += 1
                node_count += 1
                text_bytes += len(attr_value)
                element.attributes.append(attribute)
            stack.append(element)
        elif isinstance(event, EndElement):
            stack.pop()
        elif isinstance(event, Characters):
            # Merge adjacent text (entity boundaries produce separate events).
            if parent.children and parent.children[-1].kind is NodeKind.TEXT:
                parent.children[-1].value += event.text
            else:
                text = DomNode(NodeKind.TEXT, value=event.text, parent=parent)
                text.order = order
                order += 1
                node_count += 1
                parent.children.append(text)
            text_bytes += len(event.text)
        elif isinstance(event, Comment):
            comment = DomNode(NodeKind.COMMENT, value=event.text, parent=parent)
            comment.order = order
            order += 1
            node_count += 1
            parent.children.append(comment)
        elif isinstance(event, ProcessingInstruction):
            instruction = DomNode(
                NodeKind.PROCESSING_INSTRUCTION,
                name=event.target,
                value=event.data,
                parent=parent,
            )
            instruction.order = order
            order += 1
            node_count += 1
            parent.children.append(instruction)
    return DomDocument(document, node_count, text_bytes)
