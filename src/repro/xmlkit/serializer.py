"""XML serialization: escaping helpers and DOM/event writers.

The XMark generator writes documents through :class:`XmlWriter` (streaming,
so multi-hundred-megabyte corpora never exist in memory twice), and the
round-trip tests use :func:`serialize` on DOM trees.
"""

from __future__ import annotations

from typing import IO

from repro.mass.records import NodeKind
from repro.xmlkit.dom import DomDocument, DomNode


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    """Escape an attribute value for double-quoted serialization."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
    )


class XmlWriter:
    """A push-style writer producing indented XML on any text stream."""

    def __init__(self, stream: IO[str], indent: str = "  "):
        self._stream = stream
        self._indent = indent
        self._depth = 0
        self._open_tags: list[str] = []
        self._bytes_written = 0

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    def _write(self, text: str) -> None:
        self._stream.write(text)
        self._bytes_written += len(text)

    def declaration(self) -> None:
        self._write('<?xml version="1.0" encoding="UTF-8"?>\n')

    def start(self, name: str, attributes: dict[str, str] | None = None) -> None:
        parts = [self._indent * self._depth, "<", name]
        for attr_name, attr_value in (attributes or {}).items():
            parts.append(f' {attr_name}="{escape_attribute(attr_value)}"')
        parts.append(">\n")
        self._write("".join(parts))
        self._open_tags.append(name)
        self._depth += 1

    def end(self) -> None:
        self._depth -= 1
        name = self._open_tags.pop()
        self._write(f"{self._indent * self._depth}</{name}>\n")

    def leaf(self, name: str, text: str, attributes: dict[str, str] | None = None) -> None:
        """Write ``<name attrs>text</name>`` on one line."""
        parts = [self._indent * self._depth, "<", name]
        for attr_name, attr_value in (attributes or {}).items():
            parts.append(f' {attr_name}="{escape_attribute(attr_value)}"')
        if text:
            parts.append(f">{escape_text(text)}</{name}>\n")
        else:
            parts.append("/>\n")
        self._write("".join(parts))

    def empty(self, name: str, attributes: dict[str, str] | None = None) -> None:
        self.leaf(name, "", attributes)

    def close(self) -> None:
        while self._open_tags:
            self.end()


def serialize(document: DomDocument | DomNode, declaration: bool = True) -> str:
    """Serialize a DOM document (or subtree) back to an XML string."""
    pieces: list[str] = []
    if declaration:
        pieces.append('<?xml version="1.0" encoding="UTF-8"?>')
    node = document.document_node if isinstance(document, DomDocument) else document
    _serialize_node(node, pieces)
    return "".join(pieces)


def _serialize_node(node: DomNode, pieces: list[str]) -> None:
    if node.kind is NodeKind.DOCUMENT:
        for child in node.children:
            _serialize_node(child, pieces)
        return
    if node.kind is NodeKind.TEXT:
        pieces.append(escape_text(node.value))
        return
    if node.kind is NodeKind.COMMENT:
        pieces.append(f"<!--{node.value}-->")
        return
    if node.kind is NodeKind.PROCESSING_INSTRUCTION:
        data = f" {node.value}" if node.value else ""
        pieces.append(f"<?{node.name}{data}?>")
        return
    if node.kind is NodeKind.ATTRIBUTE:
        pieces.append(f' {node.name}="{escape_attribute(node.value)}"')
        return
    pieces.append(f"<{node.name}")
    for attribute in node.attributes:
        _serialize_node(attribute, pieces)
    if not node.children:
        pieces.append("/>")
        return
    pieces.append(">")
    for child in node.children:
        _serialize_node(child, pieces)
    pieces.append(f"</{node.name}>")
