"""A from-scratch, non-validating XML 1.0 substrate.

VAMANA needs three XML facilities and this package provides all of them
without external dependencies:

* :mod:`repro.xmlkit.events` / :mod:`repro.xmlkit.parser` — a streaming
  tokenizer that turns a document string into a flat event sequence.  The
  MASS loader consumes events directly, so gigantic documents never need a
  tree in memory.
* :mod:`repro.xmlkit.dom` — a lightweight DOM used by the *baseline*
  engines (the paper's Galax/Jaxen/eXist stand-ins are DOM- or
  DOM-fallback-based, and their memory behaviour is part of the story).
* :mod:`repro.xmlkit.serializer` — document writing, used by the XMark
  generator and round-trip tests.
"""

from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlEvent,
)
from repro.xmlkit.parser import parse_events, parse_string
from repro.xmlkit.dom import DomDocument, DomNode, build_dom
from repro.xmlkit.serializer import escape_attribute, escape_text, serialize

__all__ = [
    "Characters",
    "Comment",
    "EndElement",
    "ProcessingInstruction",
    "StartElement",
    "XmlEvent",
    "parse_events",
    "parse_string",
    "DomDocument",
    "DomNode",
    "build_dom",
    "serialize",
    "escape_text",
    "escape_attribute",
]
