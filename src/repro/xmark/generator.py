"""The XMark-style auction-site document generator.

Produces the ``auction.xml`` schema the paper's evaluation uses::

    site
    ├── regions/{africa,asia,australia,europe,namerica,samerica}/item*
    ├── categories/category*          (name, description)
    ├── catgraph/edge*
    ├── people/person*                (name, emailaddress, phone?, address?,
    │                                  homepage?, creditcard?, profile?,
    │                                  watches/watch*)
    ├── open_auctions/open_auction*   (initial, reserve?, bidder*, current,
    │                                  itemref, seller, annotation?, quantity,
    │                                  type, interval)
    └── closed_auctions/closed_auction* (seller, buyer, itemref, price, date,
                                         quantity, type, annotation?)

Everything the paper's five benchmark queries touch is faithful:
``person/name/address/province/watches/watch`` for Q1/Q2/Q3/Q5 and
``itemref`` immediately followed by ``price`` inside ``closed_auction``
for Q4's ``following-sibling`` step.

Determinism: one ``random.Random(seed)`` drives all content; optional
elements are placed by even spreading (zero variance), so every count the
cost model reads is an exact function of ``(profile, factor, seed)``.
"""

from __future__ import annotations

import io
import random
from typing import IO

from repro.xmark import vocabulary as vocab
from repro.xmark.profile import XmarkProfile, paper_profile, spread
from repro.xmlkit.serializer import XmlWriter


class XmarkGenerator:
    """Streams one auction document for a given scale factor."""

    def __init__(self, profile: XmarkProfile | None = None, seed: int = 42):
        self.profile = profile or paper_profile()
        self.seed = seed

    # -- public entry points ---------------------------------------------------

    def write(self, stream: IO[str], factor: float) -> int:
        """Write a complete document to ``stream``; returns characters written."""
        rng = random.Random(self.seed)
        writer = XmlWriter(stream, indent="")
        profile = self.profile

        persons = profile.persons(factor)
        items = profile.items(factor)
        categories = profile.categories(factor)
        open_auctions = profile.open_auctions(factor)
        closed_auctions = profile.closed_auctions(factor)

        writer.declaration()
        writer.start("site")
        self._write_regions(writer, rng, items, categories)
        self._write_categories(writer, rng, categories)
        self._write_catgraph(writer, rng, categories)
        self._write_people(writer, rng, persons, open_auctions)
        self._write_open_auctions(writer, rng, open_auctions, items, persons)
        self._write_closed_auctions(writer, rng, closed_auctions, items, persons)
        writer.close()
        return writer.bytes_written

    def generate(self, factor: float) -> str:
        """Return the document as a string."""
        buffer = io.StringIO()
        self.write(buffer, factor)
        return buffer.getvalue()

    # -- prose helpers -----------------------------------------------------------

    def _sentence(self, rng: random.Random) -> str:
        words = rng.choices(vocab.WORDS, k=self.profile.words_per_sentence)
        return " ".join(words) + "."

    def _paragraph(self, rng: random.Random, index: int) -> str:
        sentences = 1 + index % self.profile.max_sentences
        return " ".join(self._sentence(rng) for _ in range(sentences))

    def _date(self, rng: random.Random) -> str:
        return f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/{rng.randint(1998, 2001)}"

    def _time(self, rng: random.Random) -> str:
        return f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}"

    # -- regions / items -----------------------------------------------------------

    def _region_item_counts(self, items: int) -> dict[str, int]:
        """Split the item population over regions by the XMark shares."""
        counts: dict[str, int] = {}
        assigned = 0
        for name in vocab.REGION_NAMES[:-1]:
            count = int(items * vocab.REGION_SHARES[name])
            counts[name] = count
            assigned += count
        counts[vocab.REGION_NAMES[-1]] = items - assigned
        return counts

    def _write_regions(
        self, writer: XmlWriter, rng: random.Random, items: int, categories: int
    ) -> None:
        counts = self._region_item_counts(items)
        item_id = 0
        writer.start("regions")
        for region in vocab.REGION_NAMES:
            writer.start(region)
            for _ in range(counts[region]):
                self._write_item(writer, rng, item_id, region, categories)
                item_id += 1
            writer.end()
        writer.end()

    def _write_item(
        self,
        writer: XmlWriter,
        rng: random.Random,
        item_id: int,
        region: str,
        categories: int,
    ) -> None:
        writer.start("item", {"id": f"item{item_id}"})
        writer.leaf("location", rng.choice(vocab.COUNTRIES))
        writer.leaf("quantity", str(1 + item_id % 5))
        writer.leaf("name", self._item_name(rng, item_id))
        writer.leaf("payment", "Creditcard, money order and Cash")
        writer.start("description")
        writer.leaf("text", self._paragraph(rng, item_id))
        writer.end()
        writer.leaf("shipping", "Will ship internationally")
        for _ in range(1 + item_id % 2):
            writer.empty("incategory", {"category": f"category{rng.randrange(categories)}"})
        writer.end()

    def _item_name(self, rng: random.Random, item_id: int) -> str:
        first = rng.choice(vocab.WORDS).capitalize()
        second = rng.choice(vocab.WORDS)
        return f"{first} {second} {item_id}"

    # -- categories / catgraph ---------------------------------------------------------

    def _write_categories(
        self, writer: XmlWriter, rng: random.Random, categories: int
    ) -> None:
        writer.start("categories")
        for category_id in range(categories):
            writer.start("category", {"id": f"category{category_id}"})
            writer.leaf("name", f"{rng.choice(vocab.WORDS).capitalize()} collection")
            writer.start("description")
            writer.leaf("text", self._paragraph(rng, category_id))
            writer.end()
            writer.end()
        writer.end()

    def _write_catgraph(
        self, writer: XmlWriter, rng: random.Random, categories: int
    ) -> None:
        writer.start("catgraph")
        for _ in range(categories):
            writer.empty(
                "edge",
                {
                    "from": f"category{rng.randrange(categories)}",
                    "to": f"category{rng.randrange(categories)}",
                },
            )
        writer.end()

    # -- people --------------------------------------------------------------------------

    def _person_name(self, rng: random.Random, index: int, special_index: int) -> str:
        if index == special_index:
            return vocab.SPECIAL_PERSON_NAME
        first = rng.choice(vocab.FIRST_NAMES)
        last = rng.choice(vocab.LAST_NAMES)
        return f"{first} {last}"

    def _write_people(
        self, writer: XmlWriter, rng: random.Random, persons: int, open_auctions: int
    ) -> None:
        profile = self.profile
        special_index = min(profile.special_person_index, persons - 1)
        address_counter = 0
        writer.start("people")
        for index in range(persons):
            writer.start("person", {"id": f"person{index}"})
            name = self._person_name(rng, index, special_index)
            writer.leaf("name", name)
            last = name.split()[-1]
            writer.leaf("emailaddress", f"mailto:{last}@auth{index % 97}.example")
            if spread(index, profile.phone_ratio):
                writer.leaf("phone", f"+{rng.randint(1, 44)} ({rng.randint(100, 999)}) {rng.randint(1000000, 9999999)}")
            if spread(index, profile.address_ratio):
                self._write_address(writer, rng, address_counter)
                address_counter += 1
            if spread(index, profile.homepage_ratio):
                writer.leaf("homepage", f"http://www.auth{index % 97}.example/~{last}")
            if spread(index, profile.creditcard_ratio):
                prefix = rng.choice(vocab.CREDIT_CARD_PREFIXES)
                writer.leaf(
                    "creditcard",
                    f"{prefix} {rng.randint(1000, 9999)} {rng.randint(1000, 9999)} {rng.randint(1000, 9999)}",
                )
            if spread(index, profile.profile_ratio):
                self._write_profile(writer, rng, index)
            if spread(index, profile.watches_ratio) and open_auctions > 0:
                writer.start("watches")
                for _ in range(1 + index % profile.max_watches):
                    writer.empty(
                        "watch",
                        {"open_auction": f"open_auction{rng.randrange(open_auctions)}"},
                    )
                writer.end()
            writer.end()
        writer.end()

    def _write_address(
        self, writer: XmlWriter, rng: random.Random, address_index: int
    ) -> None:
        in_us = spread(address_index, self.profile.us_address_ratio)
        writer.start("address")
        writer.leaf("street", f"{rng.randint(1, 99)} {rng.choice(vocab.STREETS)}")
        writer.leaf("city", rng.choice(vocab.CITIES))
        writer.leaf("country", "United States" if in_us else rng.choice(vocab.COUNTRIES[1:]))
        if in_us:
            writer.leaf("province", rng.choice(vocab.US_STATES))
        writer.leaf("zipcode", str(rng.randint(1, 99999)))
        writer.end()

    def _write_profile(self, writer: XmlWriter, rng: random.Random, index: int) -> None:
        writer.start("profile", {"income": f"{rng.randint(9, 98)}{rng.randint(100, 999)}.{rng.randint(10, 99)}"})
        for _ in range(index % 3):
            writer.empty("interest", {"category": rng.choice(vocab.INTERESTS)})
        if index % 2:
            writer.leaf("education", rng.choice(vocab.EDUCATION_LEVELS))
        if index % 3:
            writer.leaf("gender", "male" if index % 2 else "female")
        writer.leaf("business", "Yes" if index % 4 else "No")
        if index % 5:
            writer.leaf("age", str(rng.randint(18, 87)))
        writer.end()

    # -- auctions -------------------------------------------------------------------------

    def _write_open_auctions(
        self,
        writer: XmlWriter,
        rng: random.Random,
        auctions: int,
        items: int,
        persons: int,
    ) -> None:
        writer.start("open_auctions")
        for index in range(auctions):
            writer.start("open_auction", {"id": f"open_auction{index}"})
            initial = rng.choice(vocab.CURRENCIES)
            writer.leaf("initial", initial)
            if index % 2:
                writer.leaf("reserve", rng.choice(vocab.CURRENCIES))
            for _ in range(index % (self.profile.max_bidders + 1)):
                writer.start("bidder")
                writer.leaf("date", self._date(rng))
                writer.leaf("time", self._time(rng))
                writer.empty("personref", {"person": f"person{rng.randrange(persons)}"})
                writer.leaf("increase", rng.choice(vocab.CURRENCIES))
                writer.end()
            writer.leaf("current", rng.choice(vocab.CURRENCIES))
            writer.empty("itemref", {"item": f"item{rng.randrange(items)}"})
            writer.empty("seller", {"person": f"person{rng.randrange(persons)}"})
            if index % 3:
                writer.start("annotation")
                writer.start("description")
                writer.leaf("text", self._paragraph(rng, index))
                writer.end()
                writer.end()
            writer.leaf("quantity", str(1 + index % 3))
            writer.leaf("type", vocab.AUCTION_TYPES[index % len(vocab.AUCTION_TYPES)])
            writer.start("interval")
            writer.leaf("start", self._date(rng))
            writer.leaf("end", self._date(rng))
            writer.end()
            writer.end()
        writer.end()

    def _write_closed_auctions(
        self,
        writer: XmlWriter,
        rng: random.Random,
        auctions: int,
        items: int,
        persons: int,
    ) -> None:
        writer.start("closed_auctions")
        for index in range(auctions):
            writer.start("closed_auction")
            writer.empty("seller", {"person": f"person{rng.randrange(persons)}"})
            writer.empty("buyer", {"person": f"person{rng.randrange(persons)}"})
            # itemref immediately followed by price: the pair Q4's
            # following-sibling::price step navigates.
            writer.empty("itemref", {"item": f"item{rng.randrange(items)}"})
            writer.leaf("price", rng.choice(vocab.CURRENCIES))
            writer.leaf("date", self._date(rng))
            writer.leaf("quantity", str(1 + index % 2))
            writer.leaf("type", vocab.AUCTION_TYPES[index % len(vocab.AUCTION_TYPES)])
            if index % 2:
                writer.start("annotation")
                writer.start("description")
                writer.leaf("text", self._paragraph(rng, index))
                writer.end()
                writer.end()
            writer.end()
        writer.end()


def generate_document(
    factor: float, seed: int = 42, profile: XmarkProfile | None = None
) -> str:
    """Generate one auction document string at the given scale factor."""
    return XmarkGenerator(profile, seed).generate(factor)
