"""XMark-style auction document generator.

The paper's entire evaluation runs over ``auction.xml`` documents produced
by the XMark benchmark generator at different sizes.  The original
generator is a C program; this package is a deterministic, seeded Python
re-implementation of its auction-site schema with one extra property: it is
*calibrated* so that the statistics the paper quotes for its 10 MB document
come out exactly —

* 2550 ``person`` elements,
* 1256 ``address`` elements,
* 4825 ``name`` elements (person + item + category names),
* exactly one person named ``Yung Flach`` (with id ``person144``), and
* ``province`` values drawn from US states, including ``Vermont``.

Scale is controlled by a single ``factor`` (the XMark convention:
``factor=1.0`` is the ~100 MB document, ``factor=0.1`` the paper's 10 MB
one); all element populations scale linearly, and optional elements are
assigned by deterministic even spreading so counts are reproducible
bit-for-bit across runs and platforms.
"""

from repro.xmark.profile import XmarkProfile, paper_profile
from repro.xmark.generator import XmarkGenerator, generate_document

__all__ = [
    "XmarkProfile",
    "paper_profile",
    "XmarkGenerator",
    "generate_document",
]
