"""Word pools for the XMark-style generator.

The lists are modeled on the vocabulary the original XMark generator ships
(names, geography, Shakespeare-flavoured filler prose).  ``Yung`` and
``Flach`` are deliberately *excluded* from the general name pools: the
paper's running example relies on the text value ``Yung Flach`` occurring
exactly once in the document, so the generator assigns that name to one
designated person only.
"""

from __future__ import annotations

FIRST_NAMES = [
    "Abel", "Adelaide", "Agnes", "Albert", "Aldo", "Alfredo", "Alma",
    "Amanda", "Ambrose", "Anita", "Ansel", "Archibald", "Arlene", "Arnold",
    "Astrid", "Aubrey", "Barnaby", "Beatrice", "Benedict", "Bertha",
    "Blanche", "Boris", "Bridget", "Camille", "Casimir", "Cecilia",
    "Clement", "Constance", "Cornelius", "Cyrus", "Dagmar", "Dalia",
    "Dexter", "Dorothea", "Edgar", "Edwina", "Elias", "Elvira", "Emanuel",
    "Ernestine", "Eugene", "Felicity", "Ferdinand", "Fiona", "Florian",
    "Frederica", "Gideon", "Giselle", "Godfrey", "Greta", "Gustave",
    "Harriet", "Hector", "Henrietta", "Horace", "Ingrid", "Isidore",
    "Jemima", "Jerome", "Josephine", "Julius", "Katarina", "Lambert",
    "Leopold", "Lucinda", "Magnus", "Matilda", "Maximilian", "Mirabel",
    "Mortimer", "Nadia", "Nathaniel", "Octavia", "Osmond", "Patience",
    "Percival", "Philippa", "Quentin", "Ramona", "Reginald", "Rosalind",
    "Rupert", "Seraphina", "Sigmund", "Sylvia", "Thaddeus", "Theodora",
    "Ulric", "Ursula", "Valentine", "Veronica", "Wallace", "Wilhelmina",
    "Xavier", "Yolanda", "Zachary", "Zelda",
]

LAST_NAMES = [
    "Abbott", "Ainsworth", "Aldrich", "Ashford", "Atwater", "Babbage",
    "Bancroft", "Barlow", "Beckett", "Bellamy", "Blackwood", "Bramwell",
    "Brockman", "Caldwell", "Carmichael", "Chadwick", "Colfax", "Cromwell",
    "Dalrymple", "Darlington", "Delacroix", "Donohue", "Driscoll",
    "Eastman", "Ellington", "Fairbanks", "Farnsworth", "Fitzgerald",
    "Gainsborough", "Galloway", "Garfield", "Goldsmith", "Greenwood",
    "Hargreaves", "Harrington", "Hathaway", "Hawthorne", "Holloway",
    "Huxley", "Ingram", "Jennings", "Kensington", "Kingsley", "Lancaster",
    "Lindqvist", "Lockhart", "Longfellow", "Mansfield", "Merriweather",
    "Montgomery", "Nightingale", "Northcote", "Oakhurst", "Ostrowski",
    "Pemberton", "Pickering", "Prescott", "Quimby", "Radcliffe",
    "Ravenscroft", "Redgrave", "Rochester", "Rutherford", "Sheffield",
    "Sinclair", "Somerset", "Stanhope", "Sterling", "Stockton",
    "Thackeray", "Thornton", "Underwood", "Vandermeer", "Wadsworth",
    "Wainwright", "Wexford", "Whitfield", "Winslow", "Woodruff",
    "Yardley", "Zimmerman",
]

#: The running example's person: assigned to exactly one person per document.
SPECIAL_PERSON_NAME = "Yung Flach"

COUNTRIES = [
    "United States", "Germany", "France", "Japan", "Brazil", "Canada",
    "Australia", "Italy", "Spain", "Netherlands", "Sweden", "Norway",
    "Switzerland", "Austria", "Belgium", "Denmark", "Finland", "Ireland",
    "Portugal", "Greece",
]

#: Fraction of addresses in the United States (those get a <province>).
US_STATES = [
    "Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
    "Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
    "Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
    "Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
    "Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
    "New Hampshire", "New Jersey", "New Mexico", "New York",
    "North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
    "Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
    "Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
    "West Virginia", "Wisconsin", "Wyoming",
]

CITIES = [
    "Monroe", "Fairview", "Riverton", "Lakewood", "Ashland", "Brookfield",
    "Cedarburg", "Dunmore", "Eastport", "Falmouth", "Glenwood", "Harmony",
    "Ironwood", "Jasper", "Kingsport", "Lexington", "Midvale", "Norwood",
    "Oakdale", "Pinehurst", "Quincy", "Redmond", "Springfield", "Trenton",
    "Union City", "Vineland", "Westbrook", "Yorkville", "Zephyrhills",
    "Bremen", "Lyon", "Osaka", "Porto", "Uppsala", "Ghent", "Aarhus",
]

STREETS = [
    "Pfisterer St", "Maple Ave", "Oak St", "Juniper Ln", "Willow Rd",
    "Chestnut Blvd", "Sycamore Dr", "Birchwood Ter", "Elm Ct", "Cedar Way",
    "Hawthorn Pl", "Magnolia St", "Poplar Ave", "Linden Rd", "Acacia Dr",
    "Walnut St", "Hazel Ln", "Laurel Blvd", "Mulberry Ct", "Alder Way",
]

#: Filler prose pool (XMark uses Shakespeare; any stable pool works — the
#: engines never interpret these words, they only affect document bytes).
WORDS = (
    "against arms arrows bear coil consummation calamity conscience "
    "contumely country currents delay despised devoutly dread dreams "
    "enterprises fardels flesh fortune great grunt heartache heir hue "
    "insolence law makes merit mind moment mortal native natural nobler "
    "obstinate office opposing orisons outrageous pangs patient pause "
    "perchance pith proud puzzles question quietus regard remembered "
    "resolution respect returns rub scorns shocks shuffled sicklied sleep "
    "slings soft spurns suffer sweat takes thought thousand time travell "
    "troubles turn undiscovered unworthy weary whips will wished wrong"
).split()

INTERESTS = [
    "antiques", "books", "coins", "folk_art", "furniture", "glassware",
    "jewelry", "maps", "musical_instruments", "paintings", "photographs",
    "porcelain", "rugs", "scientific_instruments", "sculpture", "stamps",
    "textiles", "toys", "watches_clocks", "wine",
]

EDUCATION_LEVELS = ["High School", "College", "Graduate School", "Other"]

CREDIT_CARD_PREFIXES = ["4929", "5404", "6011", "3715"]

AUCTION_TYPES = ["Regular", "Featured", "Dutch"]

CURRENCIES = ["1.50", "4.25", "9.99", "15.00", "23.75", "48.00", "87.50"]

REGION_NAMES = ["africa", "asia", "australia", "europe", "namerica", "samerica"]

#: Item share per region, mirroring the original XMark distribution.
REGION_SHARES = {
    "africa": 0.055,
    "asia": 0.10,
    "australia": 0.11,
    "europe": 0.30,
    "namerica": 0.40,
    "samerica": 0.035,
}


# -- schema graph -------------------------------------------------------------
#
# The element hierarchy the generator emits, as explicit parent -> child
# edges.  :mod:`repro.analysis.satisfiability` evaluates XPath step
# sequences against this graph to prove queries statically empty before
# any index is touched.  The tables must stay in lockstep with
# :class:`repro.xmark.generator.XmarkGenerator` — the round-trip test in
# ``tests/analysis`` regenerates a document and checks every edge.

#: Element -> the child *elements* it may contain.
SCHEMA_CHILDREN: dict[str, frozenset[str]] = {
    name: frozenset(children)
    for name, children in {
        "site": (
            "regions", "categories", "catgraph", "people",
            "open_auctions", "closed_auctions",
        ),
        "regions": tuple(REGION_NAMES),
        **{region: ("item",) for region in REGION_NAMES},
        "item": (
            "location", "quantity", "name", "payment", "description",
            "shipping", "incategory",
        ),
        "description": ("text",),
        "categories": ("category",),
        "category": ("name", "description"),
        "catgraph": ("edge",),
        "people": ("person",),
        "person": (
            "name", "emailaddress", "phone", "address", "homepage",
            "creditcard", "profile", "watches",
        ),
        "address": ("street", "city", "country", "province", "zipcode"),
        "profile": ("interest", "education", "gender", "business", "age"),
        "watches": ("watch",),
        "open_auctions": ("open_auction",),
        "open_auction": (
            "initial", "reserve", "bidder", "current", "itemref", "seller",
            "annotation", "quantity", "type", "interval",
        ),
        "bidder": ("date", "time", "personref", "increase"),
        "annotation": ("description",),
        "interval": ("start", "end"),
        "closed_auctions": ("closed_auction",),
        "closed_auction": (
            "seller", "buyer", "itemref", "price", "date", "quantity",
            "type", "annotation",
        ),
        # Leaves (text-only or empty elements).
        "location": (), "quantity": (), "name": (), "payment": (),
        "text": (), "shipping": (), "incategory": (), "edge": (),
        "emailaddress": (), "phone": (), "homepage": (), "creditcard": (),
        "street": (), "city": (), "country": (), "province": (),
        "zipcode": (), "interest": (), "education": (), "gender": (),
        "business": (), "age": (), "initial": (), "reserve": (),
        "current": (), "itemref": (), "seller": (), "personref": (),
        "increase": (), "date": (), "time": (), "start": (), "end": (),
        "type": (), "price": (), "buyer": (), "watch": (),
    }.items()
}

#: Element -> the attributes the generator may put on it.
SCHEMA_ATTRIBUTES: dict[str, frozenset[str]] = {
    name: frozenset(attrs)
    for name, attrs in {
        "item": ("id",),
        "category": ("id",),
        "edge": ("from", "to"),
        "person": ("id",),
        "incategory": ("category",),
        "interest": ("category",),
        "profile": ("income",),
        "watch": ("open_auction",),
        "open_auction": ("id",),
        "personref": ("person",),
        "itemref": ("item",),
        "seller": ("person",),
        "buyer": ("person",),
    }.items()
}

#: Elements that carry direct text content (a #text child).
SCHEMA_TEXT_ELEMENTS: frozenset[str] = frozenset({
    "location", "quantity", "name", "payment", "text", "shipping",
    "emailaddress", "phone", "homepage", "creditcard", "street", "city",
    "country", "province", "zipcode", "education", "gender", "business",
    "age", "initial", "reserve", "current", "date", "time", "increase",
    "price", "start", "end", "type",
})

#: The document element.
SCHEMA_ROOT = "site"

#: Every element name the generator can emit.
SCHEMA_ELEMENTS: frozenset[str] = frozenset(SCHEMA_CHILDREN)
