"""Generation profiles: populations and ratios for the auction schema.

A :class:`XmarkProfile` fixes every population count (as a linear function
of the scale ``factor``) and every optional-element ratio.  Ratios are
applied by *even spreading* (:func:`spread`), not coin flips, so each count
is an exact deterministic function of the factor — which is what lets unit
tests assert the paper's quoted statistics to the digit.

Calibration (``paper_profile``):

========================  ==========================  =====================
quantity                  factor-1 population          at factor 0.1 (paper)
========================  ==========================  =====================
person                    25 500                       2 550
item                      21 750                       2 175
category                  1 000                        100
open_auction              12 000                       1 200
closed_auction            9 750                        975
name                      person + item + category     4 825
address                   person × (1256/2550)         1 256
========================  ==========================  =====================

``2550 + 2175 + 100 = 4825`` — the name-count identity is why the paper's
Figure 6 numbers (COUNT(name)=4825, COUNT(person)=2550, COUNT(address)=1256)
pin down the whole calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction


def spread(index: int, ratio: Fraction) -> bool:
    """Deterministic even assignment of an optional feature.

    Marks item ``index`` (0-based) such that among the first ``n`` items
    exactly ``floor(n * ratio)`` are marked, spread uniformly — the
    bresenham-style counterpart of a biased coin with zero variance.
    """
    return (index + 1) * ratio.numerator // ratio.denominator > (
        index * ratio.numerator // ratio.denominator
    )


def spread_count(total: int, ratio: Fraction) -> int:
    """How many of ``total`` items :func:`spread` marks."""
    return total * ratio.numerator // ratio.denominator


@dataclass(frozen=True)
class XmarkProfile:
    """All knobs of the generator, scale-independent.

    Populations are per ``factor=1.0``; ``scaled_*`` methods apply a factor.
    Ratios are exact fractions so even spreading stays integral.
    """

    persons_per_factor: int = 25_500
    items_per_factor: int = 21_750
    categories_per_factor: int = 1_000
    open_auctions_per_factor: int = 12_000
    closed_auctions_per_factor: int = 9_750

    #: Fraction of persons that have an <address> block.
    address_ratio: Fraction = Fraction(1256, 2550)
    #: Fraction of addresses located in the United States (get <province>).
    us_address_ratio: Fraction = Fraction(2, 5)
    #: Fraction of persons with a <phone>.
    phone_ratio: Fraction = Fraction(1, 2)
    #: Fraction of persons with a <homepage>.
    homepage_ratio: Fraction = Fraction(3, 10)
    #: Fraction of persons with a <creditcard>.
    creditcard_ratio: Fraction = Fraction(1, 4)
    #: Fraction of persons with a <profile> block.
    profile_ratio: Fraction = Fraction(3, 4)
    #: Fraction of persons with a <watches> block.
    watches_ratio: Fraction = Fraction(2, 5)
    #: Max <watch> entries per watching person (cycled 1..max).
    max_watches: int = 4
    #: Max <bidder> entries per open auction (cycled 0..max).
    max_bidders: int = 5
    #: Sentences per description paragraph (cycled 1..max).
    max_sentences: int = 3
    #: Words per sentence.
    words_per_sentence: int = 12
    #: Which person (0-based) is named "Yung Flach" — person144 in the paper.
    special_person_index: int = 144

    # -- scaled populations ---------------------------------------------------

    def persons(self, factor: float) -> int:
        return max(1, round(self.persons_per_factor * factor))

    def items(self, factor: float) -> int:
        return max(1, round(self.items_per_factor * factor))

    def categories(self, factor: float) -> int:
        return max(1, round(self.categories_per_factor * factor))

    def open_auctions(self, factor: float) -> int:
        return max(1, round(self.open_auctions_per_factor * factor))

    def closed_auctions(self, factor: float) -> int:
        return max(1, round(self.closed_auctions_per_factor * factor))

    # -- derived exact statistics (used by calibration tests) -----------------

    def expected_names(self, factor: float) -> int:
        """Total <name> elements: one per person, item and category."""
        return self.persons(factor) + self.items(factor) + self.categories(factor)

    def expected_addresses(self, factor: float) -> int:
        return spread_count(self.persons(factor), self.address_ratio)

    def expected_provinces(self, factor: float) -> int:
        """Addresses in the US, which are exactly the ones with <province>."""
        return spread_count(self.expected_addresses(factor), self.us_address_ratio)


def paper_profile() -> XmarkProfile:
    """The profile calibrated to the paper's Figure 6/7 statistics."""
    return XmarkProfile()


#: XMark's convention: factor 1.0 is roughly a 100 MB document, so the
#: paper's "10 MB" corresponds to factor 0.1, "20 MB" to 0.2, and so on.
MEGABYTES_PER_FACTOR = 100.0


def factor_for_megabytes(megabytes: float) -> float:
    """Map the paper's document-size axis (MB) onto a generator factor."""
    return megabytes / MEGABYTES_PER_FACTOR
