"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — produce an XMark-style auction document,
* ``index``    — parse an XML file and save the MASS store to disk,
* ``stats``    — show store statistics (node counts, pages, index heights),
* ``query``    — run an XPath query against an XML file or a saved store,
  with ``--explain`` for the annotated plan and optimizer trace, and
  ``--timeout`` / ``--max-pages`` / ``--max-results`` resource limits,
* ``check``    — static analysis of an XPath expression without running
  it: plan invariant verification, inferred operator properties, and the
  schema satisfiability verdict (exit 3 when provably empty),
* ``fsck``     — diagnose a saved store file (checksums, record framing)
  and optionally salvage the valid prefix to a new store; given a shard
  directory, verify every per-shard store and summarize the fleet,
* ``verify-rules`` — translation validation of the rewrite-rule library:
  every rule is applied at every matching site of its query pool and the
  pre/post plans are executed (tuple and batched) over an exhaustively
  enumerated document corpus, cross-checked against the DOM baseline,
  plus the estimator-soundness pass on Q1-Q5 (exit 1 on any failure),
* ``bench-hotpath`` — run the hot-path microbenchmarks (byte-encoded vs
  tuple-compared keys) and write ``BENCH_hotpath.json``,
* ``serve``    — run the concurrent query server over a document: a
  line-protocol TCP front end (one XPath or JSON request per line, one
  JSON response per line) over the snapshot-isolated worker pool,
* ``bench-serving`` — measure QPS and p50/p99 latency at 1/8/64
  concurrent clients with a live writer, and write
  ``BENCH_serving.json``,
* ``race``     — run the seeded chaos swarm under the Eraser-style
  dynamic race detector: every lock acquire/release and every watched
  serving-state field access is traced, and any field whose candidate
  lockset drains to the empty set is reported (exit 1),
* ``shard-build`` — partition a document collection (hash/round-robin)
  or one huge document (subtree key ranges) into a shard directory,
* ``shard-query`` — scatter a query over a shard directory's worker
  fleet, merge and print the gathered result (``--explain`` shows the
  routing/pruning decision and per-shard plans),
* ``bench-shard`` — measure scatter-gather scaling at 1/2/4/8 workers
  and write ``BENCH_shard.json``.

``serve`` accepts a shard directory too — the TCP front end then fronts
the whole worker fleet through the same line protocol.

Files ending in ``.mass`` are treated as saved stores everywhere.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.errors import ReproError
from repro.mass.loader import load_document
from repro.mass.persistence import fsck_store, open_store, save_store
from repro.mass.store import MassStore
from repro.engine.engine import VamanaEngine
from repro.xmark.generator import XmarkGenerator
from repro.xmark.profile import factor_for_megabytes


def _load_any(path: str) -> MassStore:
    """Open a ``.mass`` store or parse+index an XML file."""
    if path.endswith(".mass"):
        return open_store(path)
    return load_document(path)


def _cmd_generate(args: argparse.Namespace) -> int:
    factor = args.factor
    if factor is None:
        factor = factor_for_megabytes(args.megabytes)
    generator = XmarkGenerator(seed=args.seed)
    started = time.perf_counter()
    with open(args.output, "w", encoding="utf-8") as out:
        written = generator.write(out, factor)
    elapsed = time.perf_counter() - started
    print(f"wrote {written / 1e6:.2f} MB to {args.output} "
          f"(factor {factor}, seed {args.seed}) in {elapsed:.2f}s")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    store = load_document(args.input)
    built = time.perf_counter() - started
    size = save_store(store, args.output)
    print(f"indexed {len(store.node_index)} nodes in {built:.2f}s; "
          f"saved {size / 1e6:.2f} MB to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    store = _load_any(args.input)
    print(f"document: {store.name}")
    print(store.statistics().describe())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    store = _load_any(args.input)
    engine = VamanaEngine(store)
    if args.explain:
        print(engine.explain(args.xpath, optimize=not args.no_optimize))
        print()
    result = engine.evaluate(
        args.xpath,
        optimize=not args.no_optimize,
        timeout_ms=args.timeout,
        max_pages=args.max_pages,
        max_results=args.max_results,
    )
    if args.xml:
        for fragment in result.to_xml():
            print(fragment)
    else:
        limit = args.limit if args.limit > 0 else len(result)
        for label in result.labels()[:limit]:
            print(label)
        if limit < len(result):
            print(f"... ({len(result) - limit} more)")
    print(f"-- {result.metrics.describe()}", file=sys.stderr)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.plan_verifier import describe_properties, verify_plan
    from repro.analysis.satisfiability import SatisfiabilityAnalyzer, xmark_schema
    from repro.xpath.parser import parse_xpath

    if args.input is not None:
        # Against a real document: the engine picks the schema, optimizes
        # with the verification gate on, and reports any rejected rewrite.
        store = _load_any(args.input)
        engine = VamanaEngine(store)
        plan, trace = engine.plan(args.xpath, optimize=not args.no_optimize)
        verify_plan(plan)
        print(describe_properties(plan))
        if trace is not None and trace.invariant_errors:
            for error in trace.invariant_errors:
                print(f"rejected rewrite: {error}")
        report = engine.satisfiability(args.xpath)
    else:
        # No document: verify the default plan and judge satisfiability
        # against the XMark grammar.
        from repro.algebra.builder import build_default_plan

        plan = build_default_plan(args.xpath)
        verify_plan(plan)
        print(describe_properties(plan))
        report = SatisfiabilityAnalyzer(xmark_schema()).analyze(
            parse_xpath(args.xpath)
        )
    print(f"invariants: ok\nsatisfiability: {report.describe()}")
    return 3 if not report.satisfiable else 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    import os

    if os.path.isdir(args.store):
        # A shard directory: verify every per-shard store the manifest
        # names; exit non-zero if any shard is damaged or missing.
        from repro.sharding import fsck_shards

        if args.salvage:
            print("error: --salvage applies to single store files",
                  file=sys.stderr)
            return 2
        shard_report = fsck_shards(args.store)
        print(shard_report.describe())
        return 0 if shard_report.ok else 1
    report = fsck_store(args.store)
    print(report.describe())
    if args.salvage:
        try:
            store = open_store(args.store, recover=True)
        except ReproError as error:
            print(f"salvage failed: {error}", file=sys.stderr)
            return 1
        size = save_store(store, args.salvage)
        print(
            f"salvaged {len(store.node_index)} records "
            f"({report.dropped_records} dropped) to {args.salvage} "
            f"({size / 1e6:.2f} MB)"
        )
    return 0 if report.ok else 1


def _cmd_verify_rules(args: argparse.Namespace) -> int:
    from repro.analysis.tv.runner import verify_rules

    report = verify_rules(
        quick=not args.exhaustive,
        seed=args.seed,
        shrink=not args.no_shrink,
    )
    print(report.describe())
    if args.fixtures and report.failures:
        import os

        os.makedirs(args.fixtures, exist_ok=True)
        for index, failure in enumerate(report.failures):
            if failure.reproducer is None:
                continue
            path = os.path.join(
                args.fixtures, f"{failure.rule}-{index}.json"
            )
            failure.reproducer.write(path)
            print(f"wrote {path}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_bench_hotpath(args: argparse.Namespace) -> int:
    from repro.bench.hotpath import run_hotpath_bench, summarize, write_report

    sizes = None
    if args.sizes:
        try:
            sizes = tuple(float(part) for part in args.sizes.split(",") if part.strip())
        except ValueError:
            print(f"error: --sizes expects comma-separated numbers, got {args.sizes!r}", file=sys.stderr)
            return 2
        if not sizes or any(size <= 0 for size in sizes):
            print(f"error: --sizes values must be positive, got {args.sizes!r}", file=sys.stderr)
            return 2
    started = time.perf_counter()
    report = run_hotpath_bench(
        quick=args.quick, sizes_mb=sizes, repeats=args.repeats, seed=args.seed
    )
    elapsed = time.perf_counter() - started
    write_report(report, args.output)
    print(summarize(report))
    print(f"-- wrote {args.output} in {elapsed:.2f}s", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from repro.serving import QueryServer, TcpFrontend

    if os.path.isdir(args.input):
        # A shard directory: front the worker fleet instead of one store.
        from repro.sharding import ShardedDatabase, ShardQueryServer

        database = ShardedDatabase(args.input)
        server = ShardQueryServer(database)
        frontend = TcpFrontend(server, host=args.host, port=args.port)
        host, port = frontend.address
        print(f"serving shard directory {args.input} on {host}:{port} "
              f"({database.manifest.shard_count} shard worker(s), "
              f"scheme {database.manifest.scheme}) — Ctrl-C to stop")
        try:
            frontend.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            frontend.stop()
            server.close()
        return 0

    store = _load_any(args.input)
    server = QueryServer(
        store,
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        default_timeout_ms=args.timeout,
        default_max_pages=args.max_pages,
        default_max_results=args.max_results,
        shed_cost_limit=args.shed_cost,
        shed_policy=args.shed_policy,
    )
    frontend = TcpFrontend(server, host=args.host, port=args.port)
    host, port = frontend.address
    print(f"serving {args.input} on {host}:{port} "
          f"({args.workers} worker(s), queue depth "
          f"{server.admission.max_queue_depth}) — Ctrl-C to stop")
    try:
        frontend.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        frontend.stop()
        server.close()
    return 0


def _cmd_bench_serving(args: argparse.Namespace) -> int:
    from repro.bench.serving import run_serving_bench, summarize, write_report

    levels = None
    if args.clients:
        try:
            levels = tuple(int(part) for part in args.clients.split(",") if part.strip())
        except ValueError:
            print(f"error: --clients expects comma-separated integers, got {args.clients!r}", file=sys.stderr)
            return 2
        if not levels or any(level < 1 for level in levels):
            print(f"error: --clients values must be positive, got {args.clients!r}", file=sys.stderr)
            return 2
    started = time.perf_counter()
    options = {"quick": args.quick, "seed": args.seed, "workers": args.workers}
    if levels is not None:
        options["levels"] = levels
    if args.size_mb is not None:
        options["size_mb"] = args.size_mb
    report = run_serving_bench(**options)
    elapsed = time.perf_counter() - started
    write_report(report, args.output)
    print(summarize(report))
    print(f"-- wrote {args.output} in {elapsed:.2f}s", file=sys.stderr)
    criteria = report.get("criteria")
    return 0 if criteria is None or criteria["ok"] else 1


def _cmd_shard_build(args: argparse.Namespace) -> int:
    from repro.sharding import build_shards, build_subtree_shards

    stores = [(path, _load_any(path)) for path in args.inputs]
    started = time.perf_counter()
    if args.scheme == "subtree":
        if len(stores) != 1:
            print("error: --scheme subtree partitions exactly one document",
                  file=sys.stderr)
            return 2
        manifest = build_subtree_shards(stores[0][1], args.output, args.shards)
    else:
        manifest = build_shards(stores, args.output, args.shards, args.scheme)
    elapsed = time.perf_counter() - started
    print(f"built {manifest.shard_count} shard(s) ({manifest.scheme}) "
          f"from {len(stores)} document(s), {manifest.total_nodes} nodes, "
          f"in {elapsed:.2f}s -> {args.output}")
    for spec in manifest.shards:
        names = ", ".join(doc["name"] for doc in spec.documents) or "(empty)"
        print(f"  shard {spec.shard_id}: {spec.total_nodes} nodes — {names}")
    return 0


def _cmd_shard_query(args: argparse.Namespace) -> int:
    from repro.sharding import ShardedDatabase

    database = ShardedDatabase(args.directory)
    try:
        if args.explain:
            print(database.explain(args.xpath))
            return 0
        started = time.perf_counter()
        outcome = database.evaluate(
            args.xpath,
            timeout_ms=args.timeout,
            max_pages=args.max_pages,
            max_results=args.max_results,
        )
        elapsed = time.perf_counter() - started
        print(outcome.describe())
        labels = outcome.labels()
        limit = args.limit if args.limit > 0 else len(labels)
        for label in labels[:limit]:
            print(f"  {label}")
        if len(labels) > limit:
            print(f"  ... and {len(labels) - limit} more")
        print(f"-- {elapsed * 1000:.1f} ms, counters "
              f"{ {k: v for k, v in sorted(outcome.counters.items())} }",
              file=sys.stderr)
        return 0 if outcome.ok else 1
    finally:
        database.close()


def _cmd_bench_shard(args: argparse.Namespace) -> int:
    from repro.bench.shard import run_shard_bench, summarize, write_report

    workers = None
    if args.workers:
        try:
            workers = tuple(int(part) for part in args.workers.split(",") if part.strip())
        except ValueError:
            print(f"error: --workers expects comma-separated integers, got {args.workers!r}", file=sys.stderr)
            return 2
        if not workers or any(count < 1 for count in workers):
            print(f"error: --workers values must be positive, got {args.workers!r}", file=sys.stderr)
            return 2
    started = time.perf_counter()
    options = {"quick": args.quick, "seed": args.seed}
    if workers is not None:
        options["worker_counts"] = workers
    report = run_shard_bench(**options)
    elapsed = time.perf_counter() - started
    write_report(report, args.output)
    print(summarize(report))
    print(f"-- wrote {args.output} in {elapsed:.2f}s", file=sys.stderr)
    return 0 if report["criteria"]["ok"] else 1


def _cmd_race(args: argparse.Namespace) -> int:
    from repro.serving.chaos import ChaosConfig, run_chaos

    options = {"seed": args.seed, "fault_rates": {}}
    if args.quick:
        options.update(readers=8, queries_per_reader=2, writer_batches=2)
    if args.readers is not None:
        options["readers"] = args.readers
    if args.writer_batches is not None:
        options["writer_batches"] = args.writer_batches
    if args.workers is not None:
        options["workers"] = args.workers
    started = time.perf_counter()
    report = run_chaos(ChaosConfig(**options), race_detect=True)
    elapsed = time.perf_counter() - started
    print(report.summary())
    print(f"-- instrumented swarm finished in {elapsed:.2f}s", file=sys.stderr)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VAMANA — a scalable cost-driven XPath engine (ICDE 2005)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate an XMark auction document")
    scale = generate.add_mutually_exclusive_group()
    scale.add_argument("--factor", type=float, default=None, help="XMark scale factor")
    scale.add_argument("--megabytes", type=float, default=10.0,
                       help="paper-style size label (100 MB = factor 1.0)")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("-o", "--output", required=True)
    generate.set_defaults(handler=_cmd_generate)

    index = commands.add_parser("index", help="index an XML file into a .mass store")
    index.add_argument("input", help="XML file")
    index.add_argument("-o", "--output", required=True, help="store file (.mass)")
    index.set_defaults(handler=_cmd_index)

    stats = commands.add_parser("stats", help="show store statistics")
    stats.add_argument("input", help="XML file or .mass store")
    stats.set_defaults(handler=_cmd_stats)

    query = commands.add_parser("query", help="run an XPath query")
    query.add_argument("input", help="XML file or .mass store")
    query.add_argument("xpath", help="XPath 1.0 expression")
    query.add_argument("--no-optimize", action="store_true",
                       help="run the default plan (VQP) instead of VQP-OPT")
    query.add_argument("--explain", action="store_true",
                       help="print the annotated plan and optimizer trace")
    query.add_argument("--xml", action="store_true",
                       help="print result subtrees as XML")
    query.add_argument("--limit", type=int, default=20,
                       help="max result labels to print (0 = all)")
    query.add_argument("--timeout", type=float, default=None, metavar="MS",
                       help="abort the query after this many milliseconds")
    query.add_argument("--max-pages", type=int, default=None, metavar="N",
                       help="abort after N logical page reads")
    query.add_argument("--max-results", type=int, default=None, metavar="N",
                       help="abort after N result tuples")
    query.set_defaults(handler=_cmd_query)

    check = commands.add_parser(
        "check",
        help="statically verify an XPath query (plan invariants + "
        "satisfiability) without executing it",
    )
    check.add_argument("xpath", help="XPath 1.0 expression")
    check.add_argument("--input", default=None,
                       help="XML file or .mass store to analyze against "
                       "(default: the XMark grammar)")
    check.add_argument("--no-optimize", action="store_true",
                       help="verify the default plan only (with --input)")
    check.set_defaults(handler=_cmd_check)

    fsck = commands.add_parser(
        "fsck", help="check a .mass store file (or every store in a "
        "shard directory) for corruption"
    )
    fsck.add_argument("store", help=".mass store file or shard directory")
    fsck.add_argument("--salvage", metavar="OUT", default=None,
                      help="write the recoverable record prefix to OUT")
    fsck.set_defaults(handler=_cmd_fsck)

    verify = commands.add_parser(
        "verify-rules",
        help="translation validation: check every rewrite rule for "
        "equivalence over a bounded document corpus and lint the "
        "estimator against provable cardinality intervals",
    )
    mode = verify.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true",
                      help="bounded corpus for CI (default; < 2 minutes)")
    mode.add_argument("--exhaustive", action="store_true",
                      help="widen the node budget and the random tier")
    verify.add_argument("--seed", type=int, default=7,
                        help="seed for the random document tier")
    verify.add_argument("--no-shrink", action="store_true",
                        help="report counterexamples without minimizing them")
    verify.add_argument("--fixtures", metavar="DIR", default=None,
                        help="write shrunk reproducers as JSON into DIR")
    verify.set_defaults(handler=_cmd_verify_rules)

    bench = commands.add_parser(
        "bench-hotpath",
        help="run the hot-path microbenchmarks and write BENCH_hotpath.json",
    )
    bench.add_argument("--quick", action="store_true",
                       help="tiny corpus, one repeat — finishes in <1s")
    bench.add_argument("--sizes", default=None,
                       help="comma-separated nominal sizes in MB (e.g. 1,2)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="best-of-N repeats per measurement")
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("-o", "--output", default="BENCH_hotpath.json")
    bench.set_defaults(handler=_cmd_bench_hotpath)

    serve = commands.add_parser(
        "serve",
        help="run the concurrent query server (line-protocol TCP front end "
        "over the snapshot-isolated worker pool)",
    )
    serve.add_argument("input", help="XML file or .mass store")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = let the kernel pick; the bound "
                       "port is printed)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads (= max concurrent queries)")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="max requests waiting for a worker "
                       "(default: 2x workers); beyond it submits are "
                       "rejected with a retry-after hint")
    serve.add_argument("--timeout", type=float, default=None, metavar="MS",
                       help="per-request deadline in milliseconds "
                       "(includes queue wait)")
    serve.add_argument("--max-pages", type=int, default=None, metavar="N",
                       help="per-request logical page-read budget")
    serve.add_argument("--max-results", type=int, default=None, metavar="N",
                       help="per-request result cap")
    serve.add_argument("--shed-cost", type=int, default=None, metavar="COST",
                       help="under load, shed plans whose estimated cost "
                       "exceeds COST")
    serve.add_argument("--shed-policy", choices=("reject", "degrade"),
                       default="reject",
                       help="reject expensive plans outright, or run them "
                       "with a clamped page budget")
    serve.set_defaults(handler=_cmd_serve)

    bench_serving = commands.add_parser(
        "bench-serving",
        help="benchmark the concurrent query server and write "
        "BENCH_serving.json (exit 1 if the p99 criterion fails)",
    )
    bench_serving.add_argument("--quick", action="store_true",
                               help="tiny document and request counts — "
                               "finishes in seconds")
    bench_serving.add_argument("--clients", default=None,
                               help="comma-separated concurrency levels "
                               "(default 1,8,64)")
    bench_serving.add_argument("--size-mb", type=float, default=None,
                               help="nominal document size in MB")
    bench_serving.add_argument("--workers", type=int, default=None,
                               help="worker threads (default: bounded by cores)")
    bench_serving.add_argument("--seed", type=int, default=42)
    bench_serving.add_argument("-o", "--output", default="BENCH_serving.json")
    bench_serving.set_defaults(handler=_cmd_bench_serving)

    shard_build = commands.add_parser(
        "shard-build",
        help="partition documents into a shard directory (hash/round-robin "
        "by document, or one document by subtree key ranges)",
    )
    shard_build.add_argument("inputs", nargs="+",
                             help="XML files or .mass stores")
    shard_build.add_argument("-o", "--output", required=True,
                             help="shard directory to create")
    shard_build.add_argument("--shards", type=int, default=4)
    shard_build.add_argument("--scheme",
                             choices=("hash", "round_robin", "subtree"),
                             default="hash")
    shard_build.set_defaults(handler=_cmd_shard_build)

    shard_query = commands.add_parser(
        "shard-query",
        help="evaluate an XPath query scatter-gather over a shard "
        "directory (one worker process per shard)",
    )
    shard_query.add_argument("directory", help="shard directory")
    shard_query.add_argument("xpath", help="XPath 1.0 expression")
    shard_query.add_argument("--explain", action="store_true",
                             help="print the routing decision and each "
                             "contacted shard's plan")
    shard_query.add_argument("--limit", type=int, default=20,
                             help="max result labels to print (0 = all)")
    shard_query.add_argument("--timeout", type=float, default=None,
                             metavar="MS", help="per-shard deadline")
    shard_query.add_argument("--max-pages", type=int, default=None,
                             metavar="N", help="per-shard page budget")
    shard_query.add_argument("--max-results", type=int, default=None,
                             metavar="N", help="per-shard result cap")
    shard_query.set_defaults(handler=_cmd_shard_query)

    bench_shard = commands.add_parser(
        "bench-shard",
        help="benchmark scatter-gather over 1/2/4/8 shard workers and "
        "write BENCH_shard.json (exit 1 if the scaling criteria fail)",
    )
    bench_shard.add_argument("--quick", action="store_true",
                             help="tiny collection — finishes in seconds")
    bench_shard.add_argument("--workers", default=None,
                             help="comma-separated worker counts "
                             "(default 1,2,4,8)")
    bench_shard.add_argument("--seed", type=int, default=42)
    bench_shard.add_argument("-o", "--output", default="BENCH_shard.json")
    bench_shard.set_defaults(handler=_cmd_bench_shard)

    race = commands.add_parser(
        "race",
        help="run the seeded chaos swarm under the dynamic race detector "
        "(exit 1 on any detected race or chaos invariant failure)",
    )
    race.add_argument("--seed", type=int, default=0,
                      help="swarm seed — a failing run replays exactly")
    race.add_argument("--readers", type=int, default=None,
                      help="reader threads (default 64, or 8 with --quick)")
    race.add_argument("--writer-batches", type=int, default=None,
                      help="mutation batches the writer publishes")
    race.add_argument("--workers", type=int, default=None,
                      help="server worker threads")
    race.add_argument("--quick", action="store_true",
                      help="small swarm for CI — finishes in seconds")
    race.set_defaults(handler=_cmd_race)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
