"""Scatter-gather benchmark: the partitioned fleet vs one engine.

The workload is a collection of XMark auction documents (paper-style
aggregate label: full mode 100 nominal MB over 16 documents) plus one
deliberately non-XMark document, hash-partitioned over 1 / 2 / 4 / 8
shards.  Per shard count it runs the paper's Q1-Q5, a deep
descendant chain, an aggregate ``count()`` and one query only the odd
document can answer, and records for each:

* wall-clock latency at the coordinator,
* the *machine-independent* work picture: each worker's logical reads
  and entries scanned (from the fleet-metrics aggregation), whose sum is
  the total work and whose max is the scatter's **critical path** —
  what the wall clock would track given one core per worker,
* routing evidence: ``shards_contacted`` / ``shards_pruned`` per query.

Speedup is reported on two bases and the report says which one the
criteria used (``speedup_basis``): ``wall`` when the host has at least
as many cores as workers, else ``critical_path`` — on a 1-core host the
workers time-slice one CPU, so wall clock cannot show the scatter win,
while the per-shard work counters are exact on any machine (the same
philosophy as the hot-path bench: counters are the reproducible part).

Criteria (recorded in the report, exit status of ``repro bench-shard``):

* at least 2 scatterable queries reach >= 2.5x speedup at 4 workers on
  the stated basis, and
* the pruned query contacts exactly one shard while the scatter queries
  contact all of them (the satisfiability pruning evidence).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro.bench.hotpath import PAPER_QUERIES
from repro.mass.loader import load_xml
from repro.sharding import ShardedDatabase, build_shards
from repro.xmark.generator import generate_document
from repro.xmark.profile import factor_for_megabytes

WORKER_COUNTS = (1, 2, 4, 8)

#: Aggregate nominal size (paper-style label) and document count.
FULL_TOTAL_MB = 100.0
FULL_DOCUMENTS = 16
QUICK_TOTAL_MB = 1.6
QUICK_DOCUMENTS = 4

#: The non-XMark document: pruning should route its query to one shard.
ODD_DOCUMENT = (
    "<library><shelf><book><title>Partitioned Execution</title></book>"
    "<book><title>Byte-Order Merges</title></book></shelf></library>"
)

DEEP_QUERY = ("D1", "//open_auction//description//text()")
COUNT_QUERY = ("C1", "count(//item)")
PRUNED_QUERY = ("P1", "//book/title")

#: The machine-independent work metric (summed per worker).
WORK_COUNTERS = ("logical_reads", "entries_scanned", "key_comparisons")


def _work(counters: dict[str, int]) -> int:
    return sum(int(counters.get(name, 0)) for name in WORK_COUNTERS)


def build_collection(quick: bool, seed: int) -> list[tuple[str, object]]:
    total_mb = QUICK_TOTAL_MB if quick else FULL_TOTAL_MB
    documents = QUICK_DOCUMENTS if quick else FULL_DOCUMENTS
    factor = factor_for_megabytes(total_mb / documents)
    stores = []
    for index in range(documents):
        name = f"auctions-{index:02d}"
        xml = generate_document(factor=factor, seed=seed + index)
        stores.append((name, load_xml(xml, name=name)))
    stores.append(("library", load_xml(ODD_DOCUMENT, name="library")))
    return stores


def run_shard_bench(
    quick: bool = False,
    seed: int = 42,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    timeout_ms: float | None = None,
) -> dict:
    started = time.perf_counter()
    stores = build_collection(quick, seed)
    queries = dict(PAPER_QUERIES)
    queries[DEEP_QUERY[0]] = DEEP_QUERY[1]
    queries[COUNT_QUERY[0]] = COUNT_QUERY[1]
    queries[PRUNED_QUERY[0]] = PRUNED_QUERY[1]
    results: dict[str, dict] = {}
    root = tempfile.mkdtemp(prefix="repro-shard-bench-")
    try:
        for workers in worker_counts:
            directory = os.path.join(root, f"w{workers}")
            build_started = time.perf_counter()
            # Round-robin placement: the bench measures scatter scaling,
            # so documents must spread evenly (hash placement is stable
            # under churn but can skew small collections).
            build_shards(stores, directory, shards=workers, scheme="round_robin")
            build_s = time.perf_counter() - build_started
            db = ShardedDatabase(directory)
            per_query: dict[str, dict] = {}
            try:
                # Wait until every worker has opened its stores (the pong
                # certifies warmth) so measurements never pay store
                # deserialization; generous cap for the big collections.
                ready = db.ping(timeout_s=900.0)
                if not all(ready.values()):
                    raise RuntimeError(f"workers never became ready: {ready}")
                for label, expression in queries.items():
                    # Warm the per-worker plan caches, then measure.
                    db.evaluate(expression, timeout_ms=timeout_ms)
                    t0 = time.perf_counter()
                    outcome = db.evaluate(expression, timeout_ms=timeout_ms)
                    wall_s = time.perf_counter() - t0
                    works = {
                        str(shard): _work(counters)
                        for shard, counters in outcome.per_shard_counters.items()
                    }
                    per_query[label] = {
                        "wall_ms": round(wall_s * 1000.0, 3),
                        "rows": len(outcome),
                        "shards_contacted": outcome.shards_contacted,
                        "shards_pruned": outcome.shards_pruned,
                        "route": outcome.route,
                        "work_per_shard": works,
                        "work_total": sum(works.values()),
                        "work_critical_path": max(works.values(), default=0),
                        "ok": outcome.ok,
                    }
            finally:
                db.close()
            results[str(workers)] = {
                "build_s": round(build_s, 3),
                "queries": per_query,
            }
    finally:
        shutil.rmtree(root, ignore_errors=True)

    host_cores = os.cpu_count() or 1
    basis = "wall" if host_cores >= max(worker_counts) else "critical_path"
    scaling: dict[str, dict] = {}
    scatter_labels = [label for label in queries if label != PRUNED_QUERY[0]]
    base = results.get("1", {}).get("queries", {})
    for label in queries:
        per_workers = {}
        for workers in worker_counts:
            entry = results[str(workers)]["queries"][label]
            baseline = base.get(label)
            if not baseline:
                continue
            wall = (
                baseline["wall_ms"] / entry["wall_ms"]
                if entry["wall_ms"] > 0
                else 0.0
            )
            critical = (
                baseline["work_total"] / entry["work_critical_path"]
                if entry["work_critical_path"] > 0
                else 0.0
            )
            per_workers[str(workers)] = {
                "wall_speedup": round(wall, 3),
                "critical_path_speedup": round(critical, 3),
            }
        scaling[label] = per_workers

    check_at = "4" if 4 in worker_counts else str(max(worker_counts))
    speedups = {
        label: scaling[label][check_at][
            "wall_speedup" if basis == "wall" else "critical_path_speedup"
        ]
        for label in scatter_labels
        if check_at in scaling.get(label, {})
    }
    fast_enough = [label for label, value in speedups.items() if value >= 2.5]
    pruned_entry = results[check_at]["queries"][PRUNED_QUERY[0]]
    pruning_ok = pruned_entry["shards_contacted"] == 1
    criteria = {
        "basis": basis,
        "checked_at_workers": int(check_at),
        "threshold": 2.5,
        "queries_at_threshold": sorted(fast_enough),
        "speedups": speedups,
        "pruned_query_shards_contacted": pruned_entry["shards_contacted"],
        "pruning_ok": pruning_ok,
        "ok": len(fast_enough) >= 2 and pruning_ok,
    }
    return {
        "bench": "shard",
        "quick": quick,
        "seed": seed,
        "host_cores": host_cores,
        "speedup_basis": basis,
        "collection": {
            "documents": len(stores),
            "nominal_mb_total": QUICK_TOTAL_MB if quick else FULL_TOTAL_MB,
            "total_nodes": sum(len(store.node_index) for _, store in stores),
        },
        "worker_counts": list(worker_counts),
        "results": results,
        "scaling": scaling,
        "criteria": criteria,
        "elapsed_s": round(time.perf_counter() - started, 3),
    }


def summarize(report: dict) -> str:
    lines = [
        f"shard bench ({'quick' if report['quick'] else 'full'}): "
        f"{report['collection']['documents']} documents, "
        f"{report['collection']['total_nodes']} nodes, "
        f"host cores {report['host_cores']}, basis {report['speedup_basis']}"
    ]
    criteria = report["criteria"]
    at = str(criteria["checked_at_workers"])
    header = f"  {'query':<6} {'1w ms':>9} {at + 'w ms':>9} {'wall x':>7} {'cpath x':>8} {'contact':>8}"
    lines.append(header)
    for label, per_workers in report["scaling"].items():
        if at not in per_workers:
            continue
        one = report["results"]["1"]["queries"][label]
        entry = report["results"][at]["queries"][label]
        lines.append(
            f"  {label:<6} {one['wall_ms']:>9.1f} {entry['wall_ms']:>9.1f} "
            f"{per_workers[at]['wall_speedup']:>7.2f} "
            f"{per_workers[at]['critical_path_speedup']:>8.2f} "
            f"{entry['shards_contacted']:>4}/{entry['shards_contacted'] + entry['shards_pruned']}"
        )
    lines.append(
        f"criteria[{criteria['basis']}@{at}w >= {criteria['threshold']}x]: "
        f"{sorted(criteria['speedups'].items())} -> "
        f"{'PASS' if criteria['ok'] else 'FAIL'} "
        f"(pruned query contacted {criteria['pruned_query_shards_contacted']} shard(s))"
    )
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
