"""The benchmark corpus: XMark documents along the paper's size axis.

The paper's figures plot execution time against document size in
megabytes (1 … 30 MB, XMark factors 0.01 … 0.3).  Re-running the full
axis in pure Python is possible but slow, so the harness scales the axis
by ``REPRO_BENCH_SCALE`` (default 0.1): each corpus document keeps its
*nominal* size label — which also drives the baseline engines' document
size ceilings, so the "series stops at 10/20 MB" behaviour reproduces
regardless of scale — while its actual population is ``nominal x scale``.
Set ``REPRO_BENCH_SCALE=1.0`` to run the paper's full axis.

Documents are generated, parsed and indexed once per process and shared
by every benchmark module (module-level cache).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

from repro.mass.loader import load_xml
from repro.mass.store import MassStore
from repro.xmark.generator import generate_document
from repro.xmark.profile import factor_for_megabytes
from repro.xmlkit.dom import DomDocument, build_dom

#: The paper's document-size axis (Figures 12-16), in megabytes.
PAPER_SIZES_MB = (1, 2, 5, 10, 20, 30)

_MB = 1024 * 1024


def bench_scale() -> float:
    """The corpus down-scaling factor (``REPRO_BENCH_SCALE``, default 0.1)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


def corpus_sizes() -> tuple[int, ...]:
    """The size labels to benchmark (``REPRO_BENCH_SIZES=1,2,5`` to narrow)."""
    raw = os.environ.get("REPRO_BENCH_SIZES")
    if not raw:
        return PAPER_SIZES_MB
    return tuple(int(part) for part in raw.split(",") if part.strip())


@dataclass(eq=False)  # identity hash: instances key the engine caches
class CorpusDocument:
    """One corpus entry: the document text plus both indexed forms."""

    nominal_mb: int
    factor: float
    text: str
    _store: MassStore | None = field(default=None, repr=False)
    _dom: DomDocument | None = field(default=None, repr=False)

    @property
    def nominal_bytes(self) -> int:
        """The size the paper's axis claims — drives baseline size caps."""
        return self.nominal_mb * _MB

    @property
    def actual_bytes(self) -> int:
        return len(self.text.encode("utf-8", errors="ignore"))

    @property
    def store(self) -> MassStore:
        """The MASS store (built lazily, cached)."""
        if self._store is None:
            self._store = load_xml(self.text, name=f"xmark-{self.nominal_mb}mb")
        return self._store

    @property
    def dom(self) -> DomDocument:
        """The DOM used by the baseline engines (built lazily, cached)."""
        if self._dom is None:
            self._dom = build_dom(self.text)
        return self._dom


@lru_cache(maxsize=None)
def get_corpus_document(nominal_mb: int, seed: int = 42) -> CorpusDocument:
    """Build (or fetch) the corpus document for one size label."""
    factor = factor_for_megabytes(nominal_mb) * bench_scale()
    text = generate_document(factor, seed=seed)
    return CorpusDocument(nominal_mb=nominal_mb, factor=factor, text=text)
