"""Serving benchmark: throughput and tail latency under concurrent load.

The serving layer's claim is not "queries get faster" — on one store a
worker pool cannot beat a single uncontended engine — but "tail latency
stays bounded as offered load grows".  This harness measures exactly
that: the paper's Q1-Q5 issued by 1, 8 and 64 concurrent clients against
a :class:`~repro.serving.QueryServer`, while a writer continuously
publishes update batches (so every level exercises snapshot isolation,
not a read-only fast path).

Per level it reports QPS, p50/p99 over the *successful* paper queries,
and the shed/degraded/update counts that explain them.  Admission
control is the mechanism under test: the wait queue is capped at the
worker count and one deliberately expensive query (``//node()//text()``)
is mixed in with a shed-cost limit between Q1-Q5's estimated cost and
its own, so under pressure the server rejects work early (typed, with a
retry hint) instead of queueing into unbounded latency.  The headline
criterion — checked into the report as ``criteria`` — is that the
8-client p99 stays within 3x the 1-client p99 on Q1-Q5.

Entry points: :func:`run_serving_bench` (returns the report dict) and
``repro bench-serving`` / ``benchmarks/serving.py`` (write
``BENCH_serving.json``).
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

from repro.bench.hotpath import PAPER_QUERIES
from repro.cost.estimator import plan_cost
from repro.engine.engine import VamanaEngine
from repro.errors import ReproError, ServerOverloadedError
from repro.mass.loader import load_xml
from repro.serving.server import QueryServer
from repro.xmark.generator import generate_document
from repro.xmark.profile import factor_for_megabytes

#: The deliberately expensive query that cost shedding should catch.
HEAVY_QUERY = ("H", "//node()//text()")

#: Every HEAVY_EVERY-th request a client issues is the heavy query.
HEAVY_EVERY = 6

CLIENT_LEVELS = (1, 8, 64)

FULL_SIZE_MB = 0.5
QUICK_SIZE_MB = 0.05
FULL_TOTAL_REQUESTS = 240
QUICK_TOTAL_REQUESTS = 60


def default_workers() -> int:
    """Worker threads: bounded by cores, at least one (CI runs on 1)."""
    return max(1, min(4, os.cpu_count() or 1))


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]) of unsorted values."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


def _estimated_costs(store) -> dict[str, int]:
    engine = VamanaEngine(store)
    costs: dict[str, int] = {}
    for name, expression in list(PAPER_QUERIES.items()) + [HEAVY_QUERY]:
        plan, _trace = engine.plan(expression)
        engine.estimator.estimate(plan)
        costs[name] = plan_cost(plan)
    return costs


def _run_level(
    store,
    clients: int,
    requests_per_client: int,
    shed_cost_limit: int | None,
    workers: int,
    seed: int,
    writer_period_s: float,
    timeout_ms: float,
) -> dict:
    server = QueryServer(
        store,
        workers=workers,
        max_queue_depth=workers,
        default_timeout_ms=timeout_ms,
        shed_cost_limit=shed_cost_limit,
        shed_policy="reject",
    )
    names = list(PAPER_QUERIES)
    records: list[tuple[str, str, float]] = []  # (query, status, latency_s)
    records_lock = threading.Lock()
    stop_writer = threading.Event()

    def client(index: int) -> None:
        rng = random.Random(seed * 10_007 + index)
        for request_no in range(requests_per_client):
            if request_no % HEAVY_EVERY == HEAVY_EVERY - 1:
                name, expression = HEAVY_QUERY
            else:
                name = rng.choice(names)
                expression = PAPER_QUERIES[name]
            started = time.perf_counter()
            try:
                outcome = server.evaluate(expression)
            except ServerOverloadedError as error:
                with records_lock:
                    records.append(
                        (name, "shed", time.perf_counter() - started)
                    )
                # Back off briefly so rejected clients don't spin.
                time.sleep(rng.uniform(0.0, max(error.retry_after_s, 0.001)))
                continue
            except ReproError:
                with records_lock:
                    records.append(
                        (name, "error", time.perf_counter() - started)
                    )
                continue
            latency = time.perf_counter() - started
            if outcome.ok:
                status = "ok"
            elif isinstance(outcome.error, ServerOverloadedError):
                status = "shed"
            else:
                status = "error"
            with records_lock:
                records.append((name, status, latency))

    def writer() -> None:
        batch = 0
        while not stop_writer.is_set():
            suffix = batch
            try:
                server.apply_update(
                    lambda s: s.insert_element(
                        s.root_element().key, "bench_marker", text=str(suffix)
                    )
                )
            except ReproError:
                pass
            batch += 1
            stop_writer.wait(writer_period_s)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"bench-client-{i}")
        for i in range(clients)
    ]
    writer_thread = threading.Thread(target=writer, name="bench-writer")
    wall_start = time.perf_counter()
    writer_thread.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stop_writer.set()
    writer_thread.join()
    wall = time.perf_counter() - wall_start
    server.close()

    ok_paper = [
        latency * 1000.0
        for name, status, latency in records
        if status == "ok" and name != HEAVY_QUERY[0]
    ]
    ok_all = [lat * 1000.0 for _n, status, lat in records if status == "ok"]
    counts = {"ok": 0, "shed": 0, "error": 0}
    heavy = {"ok": 0, "shed": 0, "error": 0}
    for name, status, _latency in records:
        counts[status] += 1
        if name == HEAVY_QUERY[0]:
            heavy[status] += 1
    stats = server.stats()
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "issued": len(records),
        "completed": counts["ok"],
        "shed": counts["shed"],
        "errors": counts["error"],
        "heavy_query": heavy,
        "wall_s": round(wall, 4),
        "qps": round(counts["ok"] / wall, 2) if wall > 0 else 0.0,
        "p50_ms": round(percentile(ok_all, 50.0), 3),
        "p99_ms": round(percentile(ok_all, 99.0), 3),
        "paper_p50_ms": round(percentile(ok_paper, 50.0), 3),
        "paper_p99_ms": round(percentile(ok_paper, 99.0), 3),
        "updates_published": stats["requests"]["updates_applied"],
        "final_epoch": stats["snapshots"]["epoch"],
        "pinned_after_close": stats["snapshots"]["pinned"],
    }


def run_serving_bench(
    quick: bool = False,
    seed: int = 42,
    levels: tuple[int, ...] = CLIENT_LEVELS,
    size_mb: float | None = None,
    workers: int | None = None,
) -> dict:
    size = size_mb if size_mb is not None else (
        QUICK_SIZE_MB if quick else FULL_SIZE_MB
    )
    total_requests = QUICK_TOTAL_REQUESTS if quick else FULL_TOTAL_REQUESTS
    factor = factor_for_megabytes(size)
    text = generate_document(factor, seed=seed)
    store = load_xml(text, name=f"serving-{size}mb")
    costs = _estimated_costs(store)
    paper_max = max(costs[name] for name in PAPER_QUERIES)
    heavy_cost = costs[HEAVY_QUERY[0]]
    # Admit everything up to the costliest paper query; the heavy query
    # is shed only under pressure (and only if it is in fact costlier).
    shed_cost_limit = paper_max
    worker_count = workers if workers is not None else default_workers()
    writer_period_s = 0.01 if quick else 0.05

    level_reports = {}
    for clients in levels:
        per_client = max(4, total_requests // clients)
        level_reports[str(clients)] = _run_level(
            store,
            clients=clients,
            requests_per_client=per_client,
            shed_cost_limit=shed_cost_limit,
            workers=worker_count,
            seed=seed + clients,
            writer_period_s=writer_period_s,
            timeout_ms=60_000.0,
        )

    report = {
        "schema": "serving-bench/1",
        "config": {
            "quick": quick,
            "seed": seed,
            "size_mb": size,
            "workers": worker_count,
            "levels": list(levels),
            "heavy_query": HEAVY_QUERY[1],
            "heavy_every": HEAVY_EVERY,
            "shed_cost_limit": shed_cost_limit,
            "writer_period_s": writer_period_s,
        },
        "document": {
            "bytes": len(text),
            "nodes": len(store.node_index),
            "factor": factor,
        },
        "estimated_costs": costs,
        "cost_shedding_active": heavy_cost > shed_cost_limit,
        "levels": level_reports,
    }
    if "1" in level_reports and "8" in level_reports:
        base = level_reports["1"]["paper_p99_ms"]
        loaded = level_reports["8"]["paper_p99_ms"]
        ratio = loaded / base if base > 0 else 0.0
        report["criteria"] = {
            "paper_p99_1_client_ms": base,
            "paper_p99_8_clients_ms": loaded,
            "p99_ratio_8_vs_1": round(ratio, 3),
            "threshold": 3.0,
            "ok": ratio <= 3.0,
        }
    return report


def summarize(report: dict) -> str:
    lines = [
        f"serving bench: {report['document']['nodes']} nodes, "
        f"{report['config']['workers']} worker(s), "
        f"shed limit {report['config']['shed_cost_limit']} "
        f"(heavy query cost {report['estimated_costs']['H']})"
    ]
    for clients, level in report["levels"].items():
        lines.append(
            f"  {clients:>2} client(s): {level['qps']:>8.1f} qps  "
            f"p50 {level['paper_p50_ms']:>7.2f} ms  "
            f"p99 {level['paper_p99_ms']:>7.2f} ms  "
            f"({level['completed']} ok / {level['shed']} shed / "
            f"{level['errors']} err, epoch {level['final_epoch']})"
        )
    criteria = report.get("criteria")
    if criteria:
        verdict = "OK" if criteria["ok"] else "FAILED"
        lines.append(
            f"  p99 ratio 8v1 = {criteria['p99_ratio_8_vs_1']}x "
            f"(threshold {criteria['threshold']}x): {verdict}"
        )
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
