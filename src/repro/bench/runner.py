"""Run one query on every engine under benchmark conditions.

Engine names follow the paper's figure legends:

* ``VQP`` — VAMANA, default (unoptimized) query plan;
* ``VQP-OPT`` — VAMANA, cost-driven optimized plan;
* ``galax`` / ``jaxen`` — the DOM-traversal baselines;
* ``exist`` — the structural path-join baseline.

An engine that cannot run a configuration (axis unsupported, document
over its size ceiling) yields an outcome with ``supported=False`` — the
paper's "no corresponding data points on the charts".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import DocumentTooLargeError, UnsupportedFeatureError
from repro.engine.engine import VamanaEngine
from repro.baselines.dom_engine import DomTraversalEngine
from repro.baselines.pathjoin import PathJoinEngine
from repro.baselines.profiles import (
    EXIST_PROFILE,
    GALAX_PROFILE,
    JAXEN_PROFILE,
    XINDICE_PROFILE,
)
from repro.bench.corpus import CorpusDocument

ENGINE_NAMES = ("VQP", "VQP-OPT", "galax", "jaxen", "exist")

#: The paper's text also mentions Xindice (< 5 MB documents); it is not in
#: the figures' legends, but the harness can run it on request.
EXTENDED_ENGINE_NAMES = ENGINE_NAMES + ("xindice",)


@dataclass
class EngineOutcome:
    """The result of one (engine, query, document) run."""

    engine: str
    query: str
    nominal_mb: int
    supported: bool = True
    reason: str = ""
    seconds: float = 0.0
    result_count: int = 0
    counters: dict[str, int] = field(default_factory=dict)

    def cell(self) -> str:
        """Figure-style cell: seconds, or '-' for a missing data point."""
        if not self.supported:
            return "-"
        return f"{self.seconds:.4f}"


@lru_cache(maxsize=None)
def _vamana_engine(document: CorpusDocument) -> VamanaEngine:
    return VamanaEngine(document.store)


@lru_cache(maxsize=None)
def _dom_engine(document: CorpusDocument, profile_name: str) -> DomTraversalEngine:
    profile = GALAX_PROFILE if profile_name == "galax" else JAXEN_PROFILE
    engine = DomTraversalEngine(profile)
    engine.load_dom(document.dom, size_bytes=document.nominal_bytes)
    return engine


@lru_cache(maxsize=None)
def _pathjoin_engine(document: CorpusDocument, profile_name: str = "exist") -> PathJoinEngine:
    profile = EXIST_PROFILE if profile_name == "exist" else XINDICE_PROFILE
    engine = PathJoinEngine(profile)
    engine.load_dom(document.dom, size_bytes=document.nominal_bytes)
    return engine


def prepare_engine(engine_name: str, document: CorpusDocument):
    """Build (or fetch) a loaded engine; raises the profile's errors."""
    if engine_name in ("VQP", "VQP-OPT"):
        return _vamana_engine(document)
    if engine_name in ("galax", "jaxen"):
        return _dom_engine(document, engine_name)
    if engine_name in ("exist", "xindice"):
        return _pathjoin_engine(document, engine_name)
    raise ValueError(f"unknown engine {engine_name!r}")


def run_query(
    engine_name: str, query: str, document: CorpusDocument, repeats: int = 1
) -> EngineOutcome:
    """Execute one query; returns timing, count and work counters.

    ``repeats > 1`` keeps the fastest of N runs (best-of), which is what
    the figure summaries use to keep shape assertions jitter-proof.
    """
    if repeats > 1:
        outcomes = [run_query(engine_name, query, document) for _ in range(repeats)]
        return min(outcomes, key=lambda outcome: outcome.seconds)
    outcome = EngineOutcome(engine=engine_name, query=query, nominal_mb=document.nominal_mb)
    try:
        engine = prepare_engine(engine_name, document)
    except DocumentTooLargeError as error:
        outcome.supported = False
        outcome.reason = str(error)
        return outcome
    try:
        if engine_name in ("VQP", "VQP-OPT"):
            optimize = engine_name == "VQP-OPT"
            document.store.reset_metrics()
            result = engine.evaluate(query, optimize=optimize)
            outcome.seconds = result.metrics.wall_seconds
            outcome.result_count = len(result)
            outcome.counters = {
                "record_fetches": result.metrics.record_fetches,
                "logical_reads": result.metrics.logical_reads,
                "entries_scanned": result.metrics.entries_scanned,
                "optimize_ms": int(result.metrics.optimize_seconds * 1e6),
            }
        elif engine_name in ("exist", "xindice"):
            engine.reset_metrics()
            started = time.perf_counter()
            nodes = engine.evaluate(query)
            outcome.seconds = time.perf_counter() - started
            outcome.result_count = len(nodes)
            outcome.counters = {
                "join_comparisons": engine.join_comparisons,
                "fallback_nodes": engine.fallback_nodes,
            }
        else:
            engine.nodes_visited = 0
            started = time.perf_counter()
            nodes = engine.evaluate(query)
            outcome.seconds = time.perf_counter() - started
            outcome.result_count = len(nodes)
            outcome.counters = {"nodes_visited": engine.nodes_visited}
    except UnsupportedFeatureError as error:
        outcome.supported = False
        outcome.reason = str(error)
    return outcome


def run_all_engines(
    query: str,
    document: CorpusDocument,
    engines: tuple[str, ...] = ENGINE_NAMES,
    repeats: int = 1,
) -> list[EngineOutcome]:
    return [run_query(name, query, document, repeats=repeats) for name in engines]
