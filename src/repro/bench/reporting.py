"""Rendering figure tables and checking the paper's shape claims."""

from __future__ import annotations

from repro.bench.runner import EngineOutcome


def format_figure_table(
    title: str,
    outcomes: dict[int, list[EngineOutcome]],
    engines: tuple[str, ...],
) -> str:
    """Render one figure as the table its chart plots.

    ``outcomes`` maps a document size label (MB) to the engine outcomes
    at that size.  Missing data points print as '-' exactly like the
    paper's charts omit them.
    """
    sizes = sorted(outcomes)
    header = ["size(MB)"] + list(engines)
    rows = [header]
    for size in sizes:
        per_engine = {outcome.engine: outcome for outcome in outcomes[size]}
        row = [str(size)]
        for engine in engines:
            outcome = per_engine.get(engine)
            row.append(outcome.cell() if outcome is not None else "-")
        rows.append(row)
    widths = [max(len(row[column]) for row in rows) for column in range(len(header))]
    lines = [title]
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def render_series(outcomes: dict[int, list[EngineOutcome]], engine: str) -> list[float | None]:
    """One engine's time series over the size axis (None = missing point)."""
    series: list[float | None] = []
    for size in sorted(outcomes):
        outcome = next((o for o in outcomes[size] if o.engine == engine), None)
        if outcome is None or not outcome.supported:
            series.append(None)
        else:
            series.append(outcome.seconds)
    return series


def supported_sizes(outcomes: dict[int, list[EngineOutcome]], engine: str) -> list[int]:
    """The size labels at which an engine produced a data point."""
    sizes = []
    for size in sorted(outcomes):
        outcome = next((o for o in outcomes[size] if o.engine == engine), None)
        if outcome is not None and outcome.supported:
            sizes.append(size)
    return sizes
