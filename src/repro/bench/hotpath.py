"""Hot-path microbenchmarks: byte-encoded keys vs tuple-compared keys.

The byte-key work (``FlexKey.sort_bytes``, ``bisect`` over flat byte
arrays in the B+-trees) claims constant-factor wins on the operations
every query is made of.  This harness measures exactly those operations,
head to head, on the *same* XMark documents:

* **key compare** — sorting the document's key population as component
  tuples vs as ``sort_bytes`` images;
* **point lookup** — node-index ``get`` over a key sample;
* **range count** — name-index occurrence counts (the cost model's
  COUNT/TC numbers);
* **queries** — the paper's Q1-Q5 end to end, optimized plans, at two
  XMark scales;
* **batched queries** — the same engine with the block-at-a-time
  pipeline on vs off (``VamanaEngine(batched=...)``), over Q1-Q5 plus
  deep ``//x//y`` workloads where context coalescing and skip-ahead
  cursors apply; reports per-query speedup and the root-descent /
  cursor-resume counter deltas.
* **fused queries** — whole-query compilation on vs off
  (``VamanaEngine(fused=...)``), both engines batched, over Q1-Q5 plus
  the deep chains: when the cost model elects fusion the entire step
  chain runs as one ``FusedPathScan`` automaton pass, and the
  ``entries_scanned`` / ``root_descents`` deltas show the per-step
  index scans collapsing into the single document-order scan.

The baseline engine is a real configuration, not a simulation:
``MassStore(byte_keys=False)`` builds the identical trees with Python
tuple comparisons, which is precisely the pre-byte-encoding code path.
Every section reports ``baseline`` (tuple keys), ``optimized`` (byte
keys) and their ratio, so one JSON file captures before and after under
identical conditions.

Entry points: :func:`run_hotpath_bench` (returns the report dict) and
``repro bench-hotpath`` / ``benchmarks/hotpath.py`` (write
``BENCH_hotpath.json``).
"""

from __future__ import annotations

import json
import random
import time
from typing import Callable

from repro.algebra.plan import FusedPathScanNode
from repro.engine.engine import VamanaEngine
from repro.mass.loader import load_xml
from repro.mass.records import NodeKind
from repro.mass.store import MassStore
from repro.xmark.generator import generate_document
from repro.xmark.profile import factor_for_megabytes

#: The paper's five benchmark queries (Section VIII).
PAPER_QUERIES = {
    "Q1": "//person/address",
    "Q2": "//watches/watch/ancestor::person",
    "Q3": "/descendant::name/parent::*/self::person/address",
    "Q4": "//itemref/following-sibling::price/parent::*",
    "Q5": "//province[text()='Vermont']/ancestor::person",
}

#: Deep descendant chains: the workloads the batched pipeline targets.
#: Each step is predicate-free, so context coalescing and zig-zag
#: skip-ahead both engage.
DEEP_QUERIES = {
    "D1": "//item//text",
    "D2": "//open_auction//description//text",
    "D3": "//node()//text()",
    "D4": "//node()//description//text()",
    "D5": "//site//node()//text()",
}

#: Nominal document sizes (paper-style MB labels) for the two scales.
FULL_SIZES_MB = (1.0, 2.0)
QUICK_SIZES_MB = (0.05, 0.1)


def _best_of(repeats: int, run: Callable[[], object]) -> float:
    """Fastest wall time of ``repeats`` runs of ``run`` (best-of-N)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _ratio(baseline: float, optimized: float) -> float:
    return baseline / max(optimized, 1e-12)


# -- micro sections ------------------------------------------------------------


def _bench_key_compare(store: MassStore, repeats: int, sample: int) -> dict:
    """Sort the key population as tuples vs as byte strings."""
    keys = [record.key for record in store.node_index.scan(None, None)]
    rng = random.Random(7)
    if len(keys) > sample:
        keys = rng.sample(keys, sample)
    rng.shuffle(keys)
    tuples = [key.components for key in keys]
    encoded = [key.sort_bytes for key in keys]
    baseline = _best_of(repeats, lambda: sorted(tuples))
    optimized = _best_of(repeats, lambda: sorted(encoded))
    return {
        "keys": len(keys),
        "baseline_seconds": baseline,
        "optimized_seconds": optimized,
        "speedup": _ratio(baseline, optimized),
    }


def _sample_keys(store: MassStore, sample: int) -> list:
    keys = [record.key for record in store.node_index.scan(None, None)]
    rng = random.Random(11)
    if len(keys) > sample:
        keys = rng.sample(keys, sample)
    rng.shuffle(keys)
    return keys


def _bench_point_lookup(
    baseline_store: MassStore, byte_store: MassStore, repeats: int, sample: int
) -> dict:
    """Node-index ``get`` over the same key sample in both tree modes."""
    keys = _sample_keys(byte_store, sample)

    def lookups(store: MassStore) -> Callable[[], None]:
        tree = store.node_index

        def run() -> None:
            for key in keys:
                tree.get(key)

        return run

    baseline = _best_of(repeats, lookups(baseline_store))
    optimized = _best_of(repeats, lookups(byte_store))
    return {
        "lookups": len(keys),
        "baseline_seconds": baseline,
        "optimized_seconds": optimized,
        "speedup": _ratio(baseline, optimized),
    }


def _bench_range_count(
    baseline_store: MassStore, byte_store: MassStore, repeats: int, inner: int = 1
) -> dict:
    """Name-index counts (whole-name and per-subtree) in both tree modes."""
    names = sorted(
        {
            record.name
            for record in baseline_store.node_index.scan(None, None)
            if record.kind is NodeKind.ELEMENT
        }
    )[:40]
    roots = [
        record.key
        for record in byte_store.node_index.scan(None, None)
        if record.key.depth == 2
    ][:25]

    def counts(store: MassStore) -> Callable[[], None]:
        index = store.name_index
        bounds = [
            (key.sort_bytes, key.subtree_upper_bound_bytes())
            if store.byte_keys
            else (key, key.subtree_upper_bound())
            for key in roots
        ]

        def run() -> None:
            for _ in range(inner):
                for name in names:
                    index.count(name)
                for lo, hi in bounds:
                    index.count_between("person", lo, hi, inclusive_lo=False)

        return run

    baseline = _best_of(repeats, counts(baseline_store))
    optimized = _best_of(repeats, counts(byte_store))
    return {
        "counts": (len(names) + len(roots)) * inner,
        "baseline_seconds": baseline,
        "optimized_seconds": optimized,
        "speedup": _ratio(baseline, optimized),
    }


# -- end-to-end queries --------------------------------------------------------


def _bench_queries(
    baseline_store: MassStore, byte_store: MassStore, repeats: int
) -> dict:
    """Q1-Q5 with optimized plans on both store configurations."""
    report: dict = {}
    baseline_engine = VamanaEngine(baseline_store)
    byte_engine = VamanaEngine(byte_store)
    for label, query in PAPER_QUERIES.items():
        base_result = baseline_engine.evaluate(query)
        byte_result = byte_engine.evaluate(query)
        if base_result.key_set() != byte_result.key_set():
            raise AssertionError(f"{label}: byte-key results diverge from baseline")
        baseline = _best_of(repeats, lambda: baseline_engine.evaluate(query))
        optimized = _best_of(repeats, lambda: byte_engine.evaluate(query))
        report[label] = {
            "expression": query,
            "results": len(byte_result),
            "baseline_seconds": baseline,
            "optimized_seconds": optimized,
            "speedup": _ratio(baseline, optimized),
            "entries_scanned": byte_result.metrics.entries_scanned,
            "pages_read_logical": byte_result.metrics.logical_reads,
        }
    return report


def _bench_batched(byte_store: MassStore, repeats: int) -> dict:
    """Block-at-a-time pipeline vs the tuple-at-a-time shim, same store.

    Both engines run on the byte-keyed store; the only difference is the
    ``batched`` knob.  Each query's key sequence must match exactly —
    the bench doubles as an end-to-end equivalence check — and the
    counter deltas show root descents traded for cursor resumes.
    """
    report: dict = {}
    tuple_engine = VamanaEngine(byte_store, batched=False)
    batched_engine = VamanaEngine(byte_store, batched=True)
    workload = dict(PAPER_QUERIES)
    workload.update(DEEP_QUERIES)
    for label, query in workload.items():
        tuple_result = tuple_engine.evaluate(query)
        before = dict(byte_store.counters)
        batched_result = batched_engine.evaluate(query)
        after = byte_store.counters
        if tuple_result.keys != batched_result.keys:
            raise AssertionError(
                f"{label}: batched results diverge from tuple-at-a-time"
            )
        # Interleave the two engines per repeat so slow machine drift
        # hits both sides equally instead of biasing whichever ran last,
        # and amortize microsecond-scale queries over an inner loop so
        # timer granularity doesn't dominate the ratio.
        started = time.perf_counter()
        tuple_engine.evaluate(query)
        probe = time.perf_counter() - started
        inner = max(1, min(100, int(0.002 / max(probe, 1e-9))))
        sample = probe * inner
        outer = max(repeats, 5, min(25, int(0.12 / max(sample, 1e-9))))
        tuple_seconds = batched_seconds = float("inf")
        for _ in range(outer):
            started = time.perf_counter()
            for _ in range(inner):
                tuple_engine.evaluate(query)
            tuple_seconds = min(
                tuple_seconds, (time.perf_counter() - started) / inner
            )
            started = time.perf_counter()
            for _ in range(inner):
                batched_engine.evaluate(query)
            batched_seconds = min(
                batched_seconds, (time.perf_counter() - started) / inner
            )
        report[label] = {
            "expression": query,
            "results": len(batched_result),
            "tuple_seconds": tuple_seconds,
            "batched_seconds": batched_seconds,
            "speedup": _ratio(tuple_seconds, batched_seconds),
            "root_descents": after["root_descents"] - before["root_descents"],
            "cursor_resumes": after["cursor_resumes"] - before["cursor_resumes"],
        }
    return report


def _bench_fused(byte_store: MassStore, repeats: int) -> dict:
    """Whole-query compilation on vs off, same store, both batched.

    The only difference between the engines is the ``fused`` knob.  Each
    query's key sequence must match exactly, doubling as an end-to-end
    equivalence check.  Per query the report records whether the cost
    model actually elected fusion (``fused_plan``) and the per-side
    ``entries_scanned`` / ``root_descents``: a fused deep chain touches
    the node index once instead of once per location step.
    """
    report: dict = {}
    unfused_engine = VamanaEngine(byte_store, batched=True, fused=False)
    fused_engine = VamanaEngine(byte_store, batched=True, fused=True)
    workload = dict(PAPER_QUERIES)
    workload.update(DEEP_QUERIES)
    for label, query in workload.items():
        # Warm both plans first so the counter deltas measure execution,
        # not planning.
        plan, _trace = fused_engine.plan(query)
        unfused_engine.plan(query)
        fused_plan = any(
            isinstance(node, FusedPathScanNode) for node in plan.walk()
        )
        before = dict(byte_store.counters)
        unfused_result = unfused_engine.evaluate(query)
        mid = dict(byte_store.counters)
        fused_result = fused_engine.evaluate(query)
        after = byte_store.counters
        if unfused_result.keys != fused_result.keys:
            raise AssertionError(f"{label}: fused results diverge from unfused")
        # Same interleaved best-of-N pattern as _bench_batched.
        started = time.perf_counter()
        unfused_engine.evaluate(query)
        probe = time.perf_counter() - started
        inner = max(1, min(100, int(0.002 / max(probe, 1e-9))))
        sample = probe * inner
        outer = max(repeats, 5, min(25, int(0.12 / max(sample, 1e-9))))
        unfused_seconds = fused_seconds = float("inf")
        for _ in range(outer):
            started = time.perf_counter()
            for _ in range(inner):
                unfused_engine.evaluate(query)
            unfused_seconds = min(
                unfused_seconds, (time.perf_counter() - started) / inner
            )
            started = time.perf_counter()
            for _ in range(inner):
                fused_engine.evaluate(query)
            fused_seconds = min(
                fused_seconds, (time.perf_counter() - started) / inner
            )
        report[label] = {
            "expression": query,
            "results": len(fused_result),
            "fused_plan": fused_plan,
            "unfused_seconds": unfused_seconds,
            "fused_seconds": fused_seconds,
            "speedup": _ratio(unfused_seconds, fused_seconds),
            "unfused_entries_scanned": unfused_result.metrics.entries_scanned,
            "fused_entries_scanned": fused_result.metrics.entries_scanned,
            "unfused_root_descents": mid["root_descents"] - before["root_descents"],
            "fused_root_descents": after["root_descents"] - mid["root_descents"],
        }
    return report


# -- harness -------------------------------------------------------------------


def run_hotpath_bench(
    quick: bool = False,
    sizes_mb: tuple[float, ...] | None = None,
    repeats: int | None = None,
    seed: int = 42,
) -> dict:
    """Run every section and return the report dict.

    ``quick`` shrinks the corpus and repeat counts so the whole harness
    finishes in well under a second — the mode the smoke test exercises.
    """
    if sizes_mb is None:
        sizes_mb = QUICK_SIZES_MB if quick else FULL_SIZES_MB
    if repeats is None:
        repeats = 1 if quick else 3
    sample = 200 if quick else 2000
    report: dict = {
        "benchmark": "hotpath",
        "config": {
            "quick": quick,
            "sizes_mb": list(sizes_mb),
            "repeats": repeats,
            "key_sample": sample,
            "seed": seed,
            "baseline": "MassStore(byte_keys=False) — tuple-compared trees",
            "optimized": "MassStore(byte_keys=True) — byte-encoded trees",
        },
        "scales": {},
    }
    for size_mb in sizes_mb:
        factor = factor_for_megabytes(size_mb)
        text = generate_document(factor, seed=seed)
        byte_store = load_xml(text, name=f"hotpath-{size_mb}mb")
        baseline_store = load_xml(
            text, name=f"hotpath-{size_mb}mb-baseline", byte_keys=False
        )
        report["scales"][f"{size_mb:g}mb"] = {
            "factor": factor,
            "document_bytes": len(text.encode("utf-8")),
            "nodes": len(byte_store.node_index),
            "key_compare": _bench_key_compare(byte_store, repeats, sample),
            "point_lookup": _bench_point_lookup(
                baseline_store, byte_store, repeats, sample
            ),
            "range_count": _bench_range_count(
                baseline_store, byte_store, repeats, inner=1 if quick else 10
            ),
            "queries": _bench_queries(baseline_store, byte_store, repeats),
            "batched_queries": _bench_batched(byte_store, repeats),
            "fused_queries": _bench_fused(byte_store, repeats),
        }
    return report


def summarize(report: dict) -> str:
    """A terminal-friendly digest of one report."""
    lines = []
    for scale, sections in report["scales"].items():
        lines.append(
            f"[{scale}] {sections['nodes']} nodes, "
            f"{sections['document_bytes'] / 1e6:.2f} MB"
        )
        for section in ("key_compare", "point_lookup", "range_count"):
            data = sections[section]
            lines.append(
                f"  {section:13s} {data['baseline_seconds'] * 1e3:9.3f} ms "
                f"-> {data['optimized_seconds'] * 1e3:9.3f} ms "
                f"({data['speedup']:.2f}x)"
            )
        for label, data in sections["queries"].items():
            lines.append(
                f"  {label:13s} {data['baseline_seconds'] * 1e3:9.3f} ms "
                f"-> {data['optimized_seconds'] * 1e3:9.3f} ms "
                f"({data['speedup']:.2f}x, {data['results']} results)"
            )
        for label, data in sections["batched_queries"].items():
            lines.append(
                f"  batched {label:5s} {data['tuple_seconds'] * 1e3:9.3f} ms "
                f"-> {data['batched_seconds'] * 1e3:9.3f} ms "
                f"({data['speedup']:.2f}x, {data['results']} results, "
                f"{data['cursor_resumes']} resumes)"
            )
        for label, data in sections["fused_queries"].items():
            tag = "FPS" if data["fused_plan"] else "---"
            lines.append(
                f"  fused   {label:5s} {data['unfused_seconds'] * 1e3:9.3f} ms "
                f"-> {data['fused_seconds'] * 1e3:9.3f} ms "
                f"({data['speedup']:.2f}x, {tag}, "
                f"{data['unfused_entries_scanned']} -> "
                f"{data['fused_entries_scanned']} entries)"
            )
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
