"""Terminal charts for the figure tables.

The paper presents Figures 12-16 as line charts; in a terminal the closest
faithful rendering is a log-scale dot matrix: one column per document
size, one glyph per engine, missing data points simply absent — the same
visual the paper uses to show series stopping at their size caps.
"""

from __future__ import annotations

import math

from repro.bench.reporting import render_series
from repro.bench.runner import EngineOutcome

#: Stable glyph per engine, used in the plot body and the legend.
GLYPHS = {"VQP": "v", "VQP-OPT": "V", "galax": "g", "jaxen": "j", "exist": "e"}


def ascii_figure(
    title: str,
    outcomes: dict[int, list[EngineOutcome]],
    engines: tuple[str, ...],
    height: int = 12,
    column_width: int = 8,
) -> str:
    """Render one figure as a log-scale ASCII chart."""
    sizes = sorted(outcomes)
    series = {engine: render_series(outcomes, engine) for engine in engines}
    values = [
        value
        for engine_series in series.values()
        for value in engine_series
        if value is not None and value > 0
    ]
    if not values:
        return f"{title}\n  (no data)"
    low = math.log10(min(values))
    high = math.log10(max(values))
    span = max(high - low, 1e-9)

    def row_of(value: float) -> int:
        """0 = bottom row, height-1 = top row."""
        fraction = (math.log10(value) - low) / span
        return min(height - 1, max(0, round(fraction * (height - 1))))

    # grid[row][column] = glyphs stacked at that point
    grid = [["" for _ in sizes] for _ in range(height)]
    for engine in engines:
        glyph = GLYPHS.get(engine, engine[0])
        for column, value in enumerate(series[engine]):
            if value is None or value <= 0:
                continue
            cell = grid[row_of(value)][column]
            if glyph not in cell:
                grid[row_of(value)][column] = cell + glyph

    lines = [title, f"  seconds (log scale, {10 ** low:.2g} .. {10 ** high:.2g})"]
    for row in range(height - 1, -1, -1):
        label = ""
        if row == height - 1:
            label = f"{10 ** high:8.3f} "
        elif row == 0:
            label = f"{10 ** low:8.3f} "
        else:
            label = " " * 9
        body = "".join(
            (grid[row][column] or ("." if row == 0 else " ")).center(column_width)
            for column in range(len(sizes))
        )
        lines.append(label + "|" + body)
    axis = " " * 9 + "+" + "-" * (column_width * len(sizes))
    labels = " " * 10 + "".join(f"{size}MB".center(column_width) for size in sizes)
    legend = "  legend: " + "  ".join(
        f"{GLYPHS.get(engine, engine[0])}={engine}" for engine in engines
    )
    lines.extend([axis, labels, legend])
    return "\n".join(lines)
