"""Benchmark harness shared by ``benchmarks/`` and the examples.

* :mod:`repro.bench.corpus` — builds and caches the XMark document corpus
  for the paper's document-size axis (1-30 "MB" labels);
* :mod:`repro.bench.runner` — runs one query on every engine (VAMANA
  default plan, VAMANA optimized, galax, jaxen, eXist profiles) with
  wall-clock and work counters;
* :mod:`repro.bench.reporting` — renders the per-figure tables the paper
  plots, and checks the qualitative *shape* claims (who wins, which series
  stop early, optimizer never slower).
"""

from repro.bench.corpus import CorpusDocument, get_corpus_document, corpus_sizes
from repro.bench.runner import EngineOutcome, run_all_engines, run_query, ENGINE_NAMES
from repro.bench.reporting import format_figure_table, render_series

__all__ = [
    "CorpusDocument",
    "get_corpus_document",
    "corpus_sizes",
    "EngineOutcome",
    "run_query",
    "run_all_engines",
    "ENGINE_NAMES",
    "format_figure_table",
    "render_series",
]
