"""Recursive-descent parser for XPath 1.0 location paths and predicates.

Grammar (spec productions, with the standard abbreviations expanded during
parsing):

* ``//`` becomes a ``descendant-or-self::node()`` step,
* ``.`` becomes ``self::node()``, ``..`` becomes ``parent::node()``,
* ``@name`` becomes ``attribute::name``,
* a bare name test defaults to the ``child`` axis,
* a bare number predicate ``[3]`` is kept as a NumberLiteral — the plan
  builder turns it into a position predicate.

Variables (``$x``) are recognised by the lexer but rejected here: VAMANA
evaluates standalone XPath, where no variable bindings exist.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.model import Axis, NodeTest
from repro.xpath.ast import (
    AndExpr,
    BinaryOp,
    Comparison,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    OrExpr,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    XPathNode,
)
from repro.xpath.lexer import Token, TokenType, tokenize

_AXES_BY_NAME = {axis.value: axis for axis in Axis}

#: Functions the engine implements; the parser rejects others eagerly so a
#: typo fails at compile time, not mid-execution.
KNOWN_FUNCTIONS = {
    "position": (0, 0),
    "last": (0, 0),
    "count": (1, 1),
    "not": (1, 1),
    "true": (0, 0),
    "false": (0, 0),
    "contains": (2, 2),
    "starts-with": (2, 2),
    "string": (0, 1),
    "number": (0, 1),
    "string-length": (0, 1),
    "normalize-space": (0, 1),
    "name": (0, 1),
    "local-name": (0, 1),
    "concat": (2, 15),
    "sum": (1, 1),
    "floor": (1, 1),
    "ceiling": (1, 1),
    "round": (1, 1),
    "boolean": (1, 1),
    "substring": (2, 3),
    "substring-before": (2, 2),
    "substring-after": (2, 2),
    "translate": (3, 3),
}


class _Parser:
    def __init__(self, expression: str):
        self.expression = expression
        self.tokens = tokenize(expression)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        token = self.current
        if token.type is token_type and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self.accept(token_type, value)
        if token is None:
            wanted = value or token_type.value
            raise XPathSyntaxError(
                f"expected {wanted!r}, found {self.current.value!r}",
                self.expression,
                self.current.position,
            )
        return token

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self.expression, self.current.position)

    # -- entry --------------------------------------------------------------

    def parse(self) -> XPathNode:
        expr = self.parse_or()
        if self.current.type is not TokenType.END:
            raise self.error(f"unexpected trailing {self.current.value!r}")
        return expr

    # -- expression grammar ----------------------------------------------------

    def parse_or(self) -> XPathNode:
        left = self.parse_and()
        while self.accept(TokenType.OPERATOR, "or"):
            left = OrExpr(left, self.parse_and())
        return left

    def parse_and(self) -> XPathNode:
        left = self.parse_equality()
        while self.accept(TokenType.OPERATOR, "and"):
            left = AndExpr(left, self.parse_equality())
        return left

    def parse_equality(self) -> XPathNode:
        left = self.parse_relational()
        while True:
            for op in ("=", "!="):
                if self.accept(TokenType.OPERATOR, op):
                    left = Comparison(op, left, self.parse_relational())
                    break
            else:
                return left

    def parse_relational(self) -> XPathNode:
        left = self.parse_additive()
        while True:
            for op in ("<=", ">=", "<", ">"):
                if self.accept(TokenType.OPERATOR, op):
                    left = Comparison(op, left, self.parse_additive())
                    break
            else:
                return left

    def parse_additive(self) -> XPathNode:
        left = self.parse_multiplicative()
        while True:
            for op in ("+", "-"):
                if self.accept(TokenType.OPERATOR, op):
                    left = BinaryOp(op, left, self.parse_multiplicative())
                    break
            else:
                return left

    def parse_multiplicative(self) -> XPathNode:
        left = self.parse_unary()
        while True:
            for op in ("*", "div", "mod"):
                if self.accept(TokenType.OPERATOR, op):
                    left = BinaryOp(op, left, self.parse_unary())
                    break
            else:
                return left

    def parse_unary(self) -> XPathNode:
        if self.accept(TokenType.OPERATOR, "-"):
            return Negate(self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> XPathNode:
        branches = [self.parse_path_expr()]
        while self.accept(TokenType.OPERATOR, "|"):
            branches.append(self.parse_path_expr())
        if len(branches) == 1:
            return branches[0]
        return UnionExpr(tuple(branches))

    # -- paths -------------------------------------------------------------------

    def parse_path_expr(self) -> XPathNode:
        token = self.current
        if token.type in (TokenType.LITERAL, TokenType.NUMBER, TokenType.FUNCTION,
                          TokenType.LPAREN, TokenType.DOLLAR):
            primary = self.parse_primary()
            predicates: list[XPathNode] = []
            while self.accept(TokenType.LBRACKET):
                predicates.append(self.parse_or())
                self.expect(TokenType.RBRACKET)
            steps: list[Step] = []
            while self.current.type is TokenType.OPERATOR and self.current.value in ("/", "//"):
                separator = self.advance().value
                if separator == "//":
                    steps.append(Step(Axis.DESCENDANT_OR_SELF, NodeTest.node()))
                steps.append(self.parse_step())
            if not predicates and not steps:
                return primary
            return PathExpr(primary, tuple(predicates), tuple(steps))
        return self.parse_location_path()

    def parse_primary(self) -> XPathNode:
        token = self.current
        if token.type is TokenType.LITERAL:
            self.advance()
            return StringLiteral(token.value)
        if token.type is TokenType.NUMBER:
            self.advance()
            return NumberLiteral(float(token.value))
        if token.type is TokenType.DOLLAR:
            raise self.error("variable references are not supported")
        if token.type is TokenType.LPAREN:
            self.advance()
            inner = self.parse_or()
            self.expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.FUNCTION:
            return self.parse_function()
        raise self.error(f"unexpected {token.value!r}")

    def parse_function(self) -> FunctionCall:
        token = self.expect(TokenType.FUNCTION)
        name = token.value
        if name not in KNOWN_FUNCTIONS:
            raise XPathSyntaxError(
                f"unknown function {name}()", self.expression, token.position
            )
        self.expect(TokenType.LPAREN)
        args: list[XPathNode] = []
        if not self.accept(TokenType.RPAREN):
            args.append(self.parse_or())
            while self.accept(TokenType.COMMA):
                args.append(self.parse_or())
            self.expect(TokenType.RPAREN)
        minimum, maximum = KNOWN_FUNCTIONS[name]
        if not minimum <= len(args) <= maximum:
            raise XPathSyntaxError(
                f"{name}() takes {minimum}..{maximum} arguments, got {len(args)}",
                self.expression,
                token.position,
            )
        return FunctionCall(name, tuple(args))

    def parse_location_path(self) -> LocationPath:
        steps: list[Step] = []
        absolute = False
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in ("/", "//"):
            absolute = True
            self.advance()
            if token.value == "//":
                steps.append(Step(Axis.DESCENDANT_OR_SELF, NodeTest.node()))
            elif not self._step_ahead():
                # bare '/': the document node itself
                return LocationPath((), absolute=True)
        steps.append(self.parse_step())
        while self.current.type is TokenType.OPERATOR and self.current.value in ("/", "//"):
            separator = self.advance().value
            if separator == "//":
                steps.append(Step(Axis.DESCENDANT_OR_SELF, NodeTest.node()))
            steps.append(self.parse_step())
        return LocationPath(tuple(steps), absolute=absolute)

    def _step_ahead(self) -> bool:
        return self.current.type in (
            TokenType.NAME,
            TokenType.AXIS,
            TokenType.NODE_TYPE,
            TokenType.AT,
            TokenType.DOT,
            TokenType.DOTDOT,
        )

    def parse_step(self) -> Step:
        if self.accept(TokenType.DOT):
            return Step(Axis.SELF, NodeTest.node())
        if self.accept(TokenType.DOTDOT):
            return Step(Axis.PARENT, NodeTest.node())
        axis = Axis.CHILD
        axis_token = self.accept(TokenType.AXIS)
        if axis_token is not None:
            if axis_token.value not in _AXES_BY_NAME:
                raise XPathSyntaxError(
                    f"unknown axis {axis_token.value!r}",
                    self.expression,
                    axis_token.position,
                )
            axis = _AXES_BY_NAME[axis_token.value]
        elif self.accept(TokenType.AT):
            axis = Axis.ATTRIBUTE
        test = self.parse_node_test()
        predicates: list[XPathNode] = []
        while self.accept(TokenType.LBRACKET):
            predicates.append(self.parse_or())
            self.expect(TokenType.RBRACKET)
        return Step(axis, test, tuple(predicates))

    def parse_node_test(self) -> NodeTest:
        token = self.current
        if token.type is TokenType.NAME:
            self.advance()
            return NodeTest.name_test(token.value)
        if token.type is TokenType.NODE_TYPE:
            self.advance()
            self.expect(TokenType.LPAREN)
            if token.value == "processing-instruction":
                target = self.accept(TokenType.LITERAL)
                self.expect(TokenType.RPAREN)
                return NodeTest.processing_instruction(target.value if target else "")
            self.expect(TokenType.RPAREN)
            if token.value == "text":
                return NodeTest.text()
            if token.value == "comment":
                return NodeTest.comment()
            return NodeTest.node()
        raise self.error(f"expected a node test, found {token.value!r}")


def parse_xpath(expression: str) -> XPathNode:
    """Parse an XPath 1.0 expression into a parse tree.

    Returns a :class:`~repro.xpath.ast.LocationPath` for plain paths, or
    the corresponding expression node for general expressions.
    """
    if not expression or not expression.strip():
        raise XPathSyntaxError("empty XPath expression", expression, 0)
    return _Parser(expression).parse()
