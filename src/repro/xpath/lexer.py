"""XPath 1.0 lexer.

Token disambiguation follows the spec's two special rules:

* a name followed by ``::`` is an axis name;
* a name followed by ``(`` is a function name or node-type test;
* ``*`` is the multiply operator only where a binary operator is
  grammatically expected (after an operand), otherwise it is the wildcard
  name test — same for the operator names ``and``/``or``/``div``/``mod``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import XPathSyntaxError


class TokenType(Enum):
    NAME = "name"  # NCName (possibly prefixed)
    AXIS = "axis"  # name followed by '::'
    FUNCTION = "function"  # name followed by '('
    NODE_TYPE = "node-type"  # text | node | comment | processing-instruction + '('
    LITERAL = "literal"  # 'string' or "string"
    NUMBER = "number"
    OPERATOR = "operator"  # = != < <= > >= + - * div mod and or | /, //
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    AT = "@"
    DOT = "."
    DOTDOT = ".."
    DOLLAR = "$"
    END = "end"


_NODE_TYPES = {"text", "node", "comment", "processing-instruction"}
_OPERATOR_NAMES = {"and", "or", "div", "mod"}


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}@{self.position})"


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in "_-."


def tokenize(expression: str) -> list[Token]:
    """Tokenize an XPath expression; raises XPathSyntaxError on bad input."""
    tokens: list[Token] = []
    position = 0
    length = len(expression)

    def preceding_is_operand() -> bool:
        """True if the previous token can end an operand (spec 3.7)."""
        if not tokens:
            return False
        last = tokens[-1]
        if last.type in (
            TokenType.NAME,
            TokenType.LITERAL,
            TokenType.NUMBER,
            TokenType.RBRACKET,
            TokenType.RPAREN,
            TokenType.DOT,
            TokenType.DOTDOT,
        ):
            return True
        return False

    while position < length:
        char = expression[position]
        if char in " \t\r\n":
            position += 1
            continue
        start = position
        if char == "(":
            tokens.append(Token(TokenType.LPAREN, "(", start))
            position += 1
        elif char == ")":
            tokens.append(Token(TokenType.RPAREN, ")", start))
            position += 1
        elif char == "[":
            tokens.append(Token(TokenType.LBRACKET, "[", start))
            position += 1
        elif char == "]":
            tokens.append(Token(TokenType.RBRACKET, "]", start))
            position += 1
        elif char == ",":
            tokens.append(Token(TokenType.COMMA, ",", start))
            position += 1
        elif char == "@":
            tokens.append(Token(TokenType.AT, "@", start))
            position += 1
        elif char == "$":
            tokens.append(Token(TokenType.DOLLAR, "$", start))
            position += 1
        elif char == ".":
            if expression.startswith("..", position):
                tokens.append(Token(TokenType.DOTDOT, "..", start))
                position += 2
            elif position + 1 < length and expression[position + 1].isdigit():
                position = _lex_number(expression, position, tokens)
            else:
                tokens.append(Token(TokenType.DOT, ".", start))
                position += 1
        elif char == "/":
            if expression.startswith("//", position):
                tokens.append(Token(TokenType.OPERATOR, "//", start))
                position += 2
            else:
                tokens.append(Token(TokenType.OPERATOR, "/", start))
                position += 1
        elif char in "|+-=":
            tokens.append(Token(TokenType.OPERATOR, char, start))
            position += 1
        elif char == "!":
            if not expression.startswith("!=", position):
                raise XPathSyntaxError("'!' must be followed by '='", expression, start)
            tokens.append(Token(TokenType.OPERATOR, "!=", start))
            position += 2
        elif char in "<>":
            if expression.startswith(char + "=", position):
                tokens.append(Token(TokenType.OPERATOR, char + "=", start))
                position += 2
            else:
                tokens.append(Token(TokenType.OPERATOR, char, start))
                position += 1
        elif char == "*":
            if preceding_is_operand():
                tokens.append(Token(TokenType.OPERATOR, "*", start))
            else:
                tokens.append(Token(TokenType.NAME, "*", start))
            position += 1
        elif char in "'\"":
            end = expression.find(char, position + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", expression, start)
            tokens.append(Token(TokenType.LITERAL, expression[position + 1 : end], start))
            position = end + 1
        elif char.isdigit():
            position = _lex_number(expression, position, tokens)
        elif _is_name_start(char):
            position += 1
            while position < length and _is_name_char(expression[position]):
                position += 1
            # Allow one prefix colon (ns:name) but not '::'.
            if (
                position < length
                and expression[position] == ":"
                and not expression.startswith("::", position)
                and position + 1 < length
                and _is_name_start(expression[position + 1])
            ):
                position += 1
                while position < length and _is_name_char(expression[position]):
                    position += 1
            name = expression[start:position]
            # Lookahead for classification.
            lookahead = position
            while lookahead < length and expression[lookahead] in " \t\r\n":
                lookahead += 1
            if expression.startswith("::", lookahead):
                tokens.append(Token(TokenType.AXIS, name, start))
                position = lookahead + 2
            elif lookahead < length and expression[lookahead] == "(":
                token_type = (
                    TokenType.NODE_TYPE if name in _NODE_TYPES else TokenType.FUNCTION
                )
                tokens.append(Token(token_type, name, start))
            elif name in _OPERATOR_NAMES and preceding_is_operand():
                tokens.append(Token(TokenType.OPERATOR, name, start))
            else:
                tokens.append(Token(TokenType.NAME, name, start))
        else:
            raise XPathSyntaxError(f"unexpected character {char!r}", expression, start)
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _lex_number(expression: str, position: int, tokens: list[Token]) -> int:
    start = position
    length = len(expression)
    while position < length and expression[position].isdigit():
        position += 1
    if position < length and expression[position] == ".":
        position += 1
        while position < length and expression[position].isdigit():
            position += 1
    tokens.append(Token(TokenType.NUMBER, expression[start:position], start))
    return position
