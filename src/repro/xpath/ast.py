"""The XPath parse tree (Section IV-A of the paper).

Every location step becomes a :class:`Step` node carrying its axis, node
test and predicate list; predicate expressions form a conventional
expression tree beneath the step.  ``unparse()`` on any node reconstructs
a semantically equivalent XPath string — used by the optimizer trace and
by tests that cross-check rewritten queries against baseline engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model import Axis, NodeTest


class XPathNode:
    """Base class for all parse-tree nodes."""

    def unparse(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.unparse()


@dataclass(frozen=True)
class Step(XPathNode):
    """One location step: ``axis::nodetest[predicate]*``."""

    axis: Axis
    test: NodeTest
    predicates: tuple["XPathNode", ...] = ()

    def unparse(self) -> str:
        text = f"{self.axis.value}::{self.test}"
        for predicate in self.predicates:
            text += f"[{predicate.unparse()}]"
        return text

    def with_predicates(self, predicates: tuple["XPathNode", ...]) -> "Step":
        return Step(self.axis, self.test, predicates)


@dataclass(frozen=True)
class LocationPath(XPathNode):
    """A (possibly absolute) sequence of steps."""

    steps: tuple[Step, ...]
    absolute: bool = False

    def unparse(self) -> str:
        inner = "/".join(step.unparse() for step in self.steps)
        return ("/" + inner) if self.absolute else inner


@dataclass(frozen=True)
class StringLiteral(XPathNode):
    value: str

    def unparse(self) -> str:
        if "'" in self.value:
            return f'"{self.value}"'
        return f"'{self.value}'"


@dataclass(frozen=True)
class NumberLiteral(XPathNode):
    value: float

    def unparse(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class Comparison(XPathNode):
    """``left op right`` with op in = != < <= > >=."""

    op: str
    left: XPathNode
    right: XPathNode

    def unparse(self) -> str:
        return f"{self.left.unparse()} {self.op} {self.right.unparse()}"


@dataclass(frozen=True)
class AndExpr(XPathNode):
    left: XPathNode
    right: XPathNode

    def unparse(self) -> str:
        return f"{self.left.unparse()} and {self.right.unparse()}"


@dataclass(frozen=True)
class OrExpr(XPathNode):
    left: XPathNode
    right: XPathNode

    def unparse(self) -> str:
        return f"{self.left.unparse()} or {self.right.unparse()}"


@dataclass(frozen=True)
class BinaryOp(XPathNode):
    """Arithmetic: + - * div mod."""

    op: str
    left: XPathNode
    right: XPathNode

    def unparse(self) -> str:
        return f"{self.left.unparse()} {self.op} {self.right.unparse()}"


@dataclass(frozen=True)
class Negate(XPathNode):
    operand: XPathNode

    def unparse(self) -> str:
        return f"-{self.operand.unparse()}"


@dataclass(frozen=True)
class FunctionCall(XPathNode):
    name: str
    args: tuple[XPathNode, ...] = ()

    def unparse(self) -> str:
        inner = ", ".join(arg.unparse() for arg in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class UnionExpr(XPathNode):
    """``path | path`` — evaluated as the node-set union."""

    branches: tuple[XPathNode, ...]

    def unparse(self) -> str:
        return " | ".join(branch.unparse() for branch in self.branches)


@dataclass(frozen=True)
class PathExpr(XPathNode):
    """A filter expression followed by a relative path, e.g. ``(..)/a``."""

    primary: XPathNode
    predicates: tuple[XPathNode, ...] = ()
    steps: tuple[Step, ...] = ()

    def unparse(self) -> str:
        text = f"({self.primary.unparse()})"
        for predicate in self.predicates:
            text += f"[{predicate.unparse()}]"
        if self.steps:
            text += "/" + "/".join(step.unparse() for step in self.steps)
        return text


def iter_steps(node: XPathNode):
    """Yield every Step in a parse tree (location paths and predicates)."""
    if isinstance(node, Step):
        yield node
        for predicate in node.predicates:
            yield from iter_steps(predicate)
    elif isinstance(node, LocationPath):
        for step in node.steps:
            yield from iter_steps(step)
    elif isinstance(node, (Comparison, AndExpr, OrExpr, BinaryOp)):
        yield from iter_steps(node.left)
        yield from iter_steps(node.right)
    elif isinstance(node, Negate):
        yield from iter_steps(node.operand)
    elif isinstance(node, FunctionCall):
        for arg in node.args:
            yield from iter_steps(arg)
    elif isinstance(node, UnionExpr):
        for branch in node.branches:
            yield from iter_steps(branch)
    elif isinstance(node, PathExpr):
        yield from iter_steps(node.primary)
        for predicate in node.predicates:
            yield from iter_steps(predicate)
        for step in node.steps:
            yield from iter_steps(step)
