"""The VAMANA XPath compiler.

A hand-written lexer and recursive-descent parser for the XPath 1.0
location-path language: all 13 axes (plus the ``//``, ``.``, ``..`` and
``@`` abbreviations), the four node-test families, nested predicates with
``and`` / ``or`` / ``not()``, value comparisons, range comparisons,
position predicates (``[3]``, ``position()``, ``last()``), arithmetic,
union expressions, and the core function library.

The output is the algebraic parse tree of Section IV-A of the paper (see
:mod:`repro.xpath.ast`), which the plan builder then maps one-to-one onto
VAMANA physical operators.
"""

from repro.xpath.ast import (
    AndExpr,
    BinaryOp,
    Comparison,
    FunctionCall,
    LocationPath,
    NumberLiteral,
    OrExpr,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    XPathNode,
)
from repro.xpath.parser import parse_xpath

__all__ = [
    "parse_xpath",
    "XPathNode",
    "LocationPath",
    "Step",
    "StringLiteral",
    "NumberLiteral",
    "Comparison",
    "AndExpr",
    "OrExpr",
    "BinaryOp",
    "FunctionCall",
    "UnionExpr",
    "PathExpr",
]
