"""Exception hierarchy for the VAMANA reproduction.

Every error raised by this library derives from :class:`ReproError`, so a
caller can catch one type to handle anything the engine may raise.  Subsystem
errors form their own branches (XML parsing, XPath compilation, storage,
planning, execution) to let tests and applications discriminate precisely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class XmlError(ReproError):
    """Raised by the XML tokenizer/parser on malformed input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XPathSyntaxError(ReproError):
    """Raised by the XPath lexer/parser on a malformed expression."""

    def __init__(self, message: str, expression: str = "", position: int = -1):
        self.expression = expression
        self.position = position
        if position >= 0 and expression:
            pointer = " " * position + "^"
            message = f"{message}\n  {expression}\n  {pointer}"
        super().__init__(message)


class UnsupportedFeatureError(ReproError):
    """Raised when a query uses a feature an engine does not implement.

    Baseline engines deliberately raise this for axes and predicate forms
    outside their capability profile, mirroring the gaps the paper reports
    for Galax, Jaxen and eXist.
    """

    def __init__(self, engine: str, feature: str):
        self.engine = engine
        self.feature = feature
        super().__init__(f"{engine} does not support {feature}")


class DocumentTooLargeError(ReproError):
    """Raised by a baseline engine whose profile caps document size."""

    def __init__(self, engine: str, size_bytes: int, limit_bytes: int):
        self.engine = engine
        self.size_bytes = size_bytes
        self.limit_bytes = limit_bytes
        super().__init__(
            f"{engine} cannot load a {size_bytes}-byte document "
            f"(limit {limit_bytes} bytes)"
        )


class StorageError(ReproError):
    """Raised by the MASS storage layer (pages, buffer pool, B+-trees)."""


class TransientStorageError(StorageError):
    """A storage failure that may succeed on retry (I/O hiccup, injected
    fault).  :func:`repro.resilience.with_retries` retries exactly these;
    every other :class:`StorageError` is treated as permanent."""


class KeyOrderError(StorageError):
    """Raised when records would be inserted out of FLEX-key order."""


class PlanError(ReproError):
    """Raised while building or validating a physical query plan."""


class ExecutionError(ReproError):
    """Raised by the pipelined execution engine at run time."""


class QueryTimeoutError(ExecutionError):
    """A query ran past its wall-clock deadline and was aborted."""

    def __init__(self, timeout_ms: float, elapsed_ms: float | None = None):
        self.timeout_ms = timeout_ms
        self.elapsed_ms = elapsed_ms
        detail = f" after {elapsed_ms:.0f} ms" if elapsed_ms is not None else ""
        super().__init__(f"query exceeded its {timeout_ms:.0f} ms deadline{detail}")


class BudgetExceededError(ExecutionError):
    """A query exhausted a resource budget (page reads, result rows)."""

    def __init__(self, resource: str, used: int, limit: int):
        self.resource = resource
        self.used = used
        self.limit = limit
        super().__init__(f"query exceeded its {resource} budget: {used} > {limit}")


class QueryCancelledError(ExecutionError):
    """A query observed its cooperative cancellation flag and stopped."""

    def __init__(self, message: str = "query cancelled"):
        super().__init__(message)


class ServingError(ReproError):
    """Raised by the concurrent query server (:mod:`repro.serving`)."""


class ServerOverloadedError(ServingError):
    """The server shed this request (queue full, admission wait timed out,
    or the cost estimator predicted the query too expensive under the
    current load).  ``retry_after_s`` is the server's hint for when a
    retry is likely to be admitted; :func:`repro.resilience.with_retries`
    honours it when backing off."""

    def __init__(self, reason: str, retry_after_s: float = 0.0):
        self.reason = reason
        self.retry_after_s = retry_after_s
        hint = f" (retry after {retry_after_s:.3f}s)" if retry_after_s > 0 else ""
        super().__init__(f"server overloaded: {reason}{hint}")


class ServerClosedError(ServingError):
    """A request was submitted to a server that has shut down."""

    def __init__(self, message: str = "server is closed"):
        super().__init__(message)


class SnapshotError(ServingError):
    """Snapshot lifecycle misuse (double release, use after release)."""


class ShardingError(ReproError):
    """Raised by the partitioned-execution layer (:mod:`repro.sharding`)."""


class ShardWorkerCrashError(ShardingError):
    """A shard worker process died (killed, crashed, or chaos-injected)
    while the coordinator was waiting on it.  Captured per shard into the
    query's :class:`~repro.sharding.coordinator.ShardedOutcome`, so one
    dead worker yields a typed partial result instead of a hung gather."""

    def __init__(self, shard_id: int, detail: str = ""):
        self.shard_id = shard_id
        suffix = f": {detail}" if detail else ""
        super().__init__(f"shard {shard_id} worker crashed{suffix}")


class ShardProtocolError(ShardingError):
    """The coordinator received a frame it cannot interpret — a version
    mismatch or a corrupted pipe, never a normal failure mode."""


class OptimizerError(ReproError):
    """Raised when a rewrite rule produces an inconsistent plan."""


class PlanInvariantError(OptimizerError):
    """A plan (or a proposed rewrite) violates a verified static invariant.

    Raised by :mod:`repro.analysis.plan_verifier`.  ``violations`` lists
    every broken invariant; ``rule`` names the rewrite rule whose proposal
    was rejected, when the error comes from the optimizer's verification
    gate rather than a standalone check.
    """

    def __init__(self, violations: list[str], rule: str = ""):
        self.violations = list(violations)
        self.rule = rule
        prefix = f"rewrite by {rule!r} rejected: " if rule else ""
        super().__init__(prefix + "; ".join(self.violations))
