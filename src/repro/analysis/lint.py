"""Repo-invariant linter: mechanical checks for contracts tests can't see.

Some of this codebase's correctness rules are *conventions* spread across
many files — exactly the kind of thing a refactor silently breaks and no
unit test notices.  This linter walks the stdlib :mod:`ast` of every
module under ``src/repro`` and enforces them:

``VAM001`` **guard checkpoint** — every ``next_tuple`` and ``next_block``
    implementation must call ``.checkpoint()`` (threading the
    :class:`~repro.resilience.QueryGuard`) before its first ``return`` or
    ``yield``.  A tuple (or block) emitted before the checkpoint escapes
    the governor's deadline/budget/cancellation checks.  Bodies that only
    raise (the abstract base) are exempt.  In addition, every *scan
    generator* inside an operator class (a ``yield``-ing method whose name
    contains ``scan``) must both call ``.checkpoint()`` and bound the
    stretch between checkpoints by comparing a counter against an integer
    cadence of at most 64 (a literal, or a module constant resolving to
    one) — a long single-operator scan must not outrun the governor.

``VAM002`` **no swallowed interrupts** — an ``except Exception`` handler
    (or broader) must either re-raise (a bare ``raise`` in its body) or be
    preceded by a sibling handler that re-raises the query-guard errors
    (``QueryTimeoutError``/``BudgetExceededError``/``QueryCancelledError``,
    or a base class covering them).  Bare and ``BaseException`` handlers
    must additionally let ``KeyboardInterrupt`` escape.  Without this, a
    sandbox "log and continue" site quietly neutralizes the governor.

``VAM003`` **no raw decode errors from persistence** — in
    ``mass/persistence.py``, every ``struct.unpack``/``struct.unpack_from``
    /``zlib.decompress``/``zlib.error``-raising call must sit inside a
    ``try`` that converts decode failures to :class:`StorageError`, and no
    *public* function may call (transitively, within the module) a helper
    that leaks one.  Callers are promised ``StorageError`` on a corrupt
    snapshot, never ``struct.error``.

``VAM004`` **no wall clock in operators** — classes implementing
    ``next_tuple``/``next_block`` (or named ``*Operator``) must not *call*
    ``time.time``/``time.monotonic``/``time.perf_counter``; time is
    injected through the guard's clock so tests and replay stay
    deterministic.  Referencing a clock as a default argument is fine —
    only calls are flagged.

``VAM005`` **rewrite-rule hygiene** — every concrete rule class under
    ``optimizer/rules/`` must declare a non-empty ``paper_ref`` string
    literal tying the rewrite to the paper section it reproduces, and
    every ``<rule>.apply(...)`` call site in optimizer code *outside*
    ``optimizer/rules/`` must sit in a function that also routes the
    result through the ``check_rewrite`` verification gate.  A rewrite
    applied outside the gate dodges both the static invariant checks and
    the opt-in differential oracle of :mod:`repro.analysis.tv`.

``VAM006`` **no leaked snapshot pins** — in the serving package, every
    ``.acquire()`` call must release its
    :class:`~repro.serving.snapshot.StoreSnapshot` on *all* exits: as the
    context expression of a ``with`` statement, assigned to a name some
    ``try``'s ``finally`` releases (with the acquire *inside* that try's
    body, or the try as the very next statement — anything else leaves a
    leak window between acquire and the finally's protection), or
    returned directly (ownership transfer).  A pin leaked on an error
    path keeps a retired store version alive forever.

``VAM007`` **guarded fields stay guarded** — implemented in
    :mod:`repro.analysis.concurrency.static`.  In the serving / engine /
    mass packages, a field of a lock-owning class that is accessed under
    one of the class's locks anywhere must be accessed under it
    everywhere (outside ``__init__`` and ``*_locked`` helpers), and a
    mutable field in a lock-owning class must be written under *some*
    class lock at least once.  ``# race-ok`` waives a line.

``VAM008`` **acyclic lock order** — a whole-repo check (it sees every
    file at once): build the graph of "lock A held while acquiring lock
    B", following intra-repo calls transitively, and reject any cycle —
    two threads taking the same pair of locks in opposite orders is a
    deadlock waiting for load.

``VAM009`` **no blocking under a lock** — no ``Future.result()``, queue
    waits, socket I/O, ``sleep`` or snapshot ``publish`` while a lock is
    held; a blocked lock-holder stalls every thread behind it.

Run it as ``python -m repro.analysis.lint src/repro`` (exit status 0 means
clean, 1 means violations, 2 means bad invocation).  Pass
``--require VAM007,VAM008,VAM009`` to additionally fail (exit 2) if any
named rule is not registered — CI uses this to prove the concurrency
rules are actually wired in, not silently dropped.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from dataclasses import dataclass

GUARD_ERROR_NAMES = frozenset(
    {"QueryTimeoutError", "BudgetExceededError", "QueryCancelledError"}
)
#: Catching any of these re-raises guard errors by subsumption.
GUARD_ERROR_BASES = frozenset({"ExecutionError", "ReproError"})

WALL_CLOCK_ATTRS = frozenset({"time", "monotonic", "perf_counter", "process_time"})

#: (module, attribute) call pairs that raise decode errors on corrupt input.
DECODE_CALLS = {
    ("struct", "unpack"): "struct.error",
    ("struct", "unpack_from"): "struct.error",
    ("struct", "calcsize"): "struct.error",
    ("zlib", "decompress"): "zlib.error",
}

#: Handler names that cover each decode error family.
DECODE_COVERS = {
    "struct.error": frozenset({"error", "Exception", "BaseException", "Error"}),
    "zlib.error": frozenset({"error", "Exception", "BaseException", "Error"}),
}


@dataclass(frozen=True)
class LintViolation:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


# -- shared AST helpers --------------------------------------------------------


def _exception_names(node: ast.expr | None) -> set[str]:
    """The (rightmost) names an ``except`` clause type expression mentions."""
    if node is None:
        return {"BaseException"}
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    if isinstance(node, ast.Tuple):
        names: set[str] = set()
        for element in node.elts:
            names.update(_exception_names(element))
        return names
    if isinstance(node, ast.Starred):
        return _exception_names(node.value)
    return set()


def _has_bare_raise(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def _function_defs(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# -- VAM001: guard checkpoint in next_tuple / next_block -----------------------


def _check_guard_checkpoint(path: str, tree: ast.AST) -> list[LintViolation]:
    violations: list[LintViolation] = []
    for func in _function_defs(tree):
        if func.name not in ("next_tuple", "next_block"):
            continue
        first_emit: int | None = None
        first_checkpoint: int | None = None
        for node in ast.walk(func):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if first_emit is None or node.lineno < first_emit:
                    first_emit = node.lineno
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "checkpoint"
            ):
                if first_checkpoint is None or node.lineno < first_checkpoint:
                    first_checkpoint = node.lineno
        if first_emit is None:
            continue  # raise-only body (the abstract base)
        if first_checkpoint is None:
            violations.append(
                LintViolation(
                    path, func.lineno, "VAM001",
                    f"{func.name} at line {func.lineno} never calls "
                    "guard.checkpoint()",
                )
            )
        elif first_checkpoint > first_emit:
            violations.append(
                LintViolation(
                    path, first_emit, "VAM001",
                    f"{func.name} emits a tuple (line "
                    f"{first_emit}) before its first guard.checkpoint() "
                    f"(line {first_checkpoint})",
                )
            )
    return violations


# -- VAM001 (cont.): bounded checkpoint cadence in operator scan generators ----

#: The largest permitted stretch between guard checkpoints in a scan loop.
MAX_CHECKPOINT_CADENCE = 64


def _module_int_constants(tree: ast.AST) -> dict[str, int]:
    """Module-level ``NAME = <int literal>`` assignments, by name."""
    constants: dict[str, int] = {}
    if not isinstance(tree, ast.Module):
        return constants
    for stmt in tree.body:
        if not (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Constant)
            and type(stmt.value.value) is int
        ):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                constants[target.id] = stmt.value.value
    return constants


def _resolve_int(node: ast.expr, constants: dict[str, int]) -> int | None:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


def _check_scan_cadence(path: str, tree: ast.AST) -> list[LintViolation]:
    constants = _module_int_constants(tree)
    violations: list[LintViolation] = []
    for klass in ast.walk(tree):
        if not (isinstance(klass, ast.ClassDef) and _is_operator_class(klass)):
            continue
        for func in _function_defs(klass):
            if "scan" not in func.name:
                continue
            if not any(
                isinstance(node, (ast.Yield, ast.YieldFrom))
                for node in ast.walk(func)
            ):
                continue
            checkpoints = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "checkpoint"
                for node in ast.walk(func)
            )
            if not checkpoints:
                violations.append(
                    LintViolation(
                        path, func.lineno, "VAM001",
                        f"scan generator {func.name} in operator class "
                        f"{klass.name} never calls guard.checkpoint()",
                    )
                )
                continue
            bounded = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left, *node.comparators]
                for operand in operands:
                    cadence = _resolve_int(operand, constants)
                    if cadence is not None and 0 < cadence <= MAX_CHECKPOINT_CADENCE:
                        bounded = True
                        break
                if bounded:
                    break
            if not bounded:
                violations.append(
                    LintViolation(
                        path, func.lineno, "VAM001",
                        f"scan generator {func.name} in operator class "
                        f"{klass.name} has no bounded checkpoint cadence "
                        "(compare a counter against an integer "
                        f"<= {MAX_CHECKPOINT_CADENCE})",
                    )
                )
    return violations


# -- VAM002: broad handlers must not swallow interrupts ------------------------


def _guard_errors_covered(reraised: set[str]) -> bool:
    if reraised & (GUARD_ERROR_BASES | {"Exception", "BaseException"}):
        return True
    return GUARD_ERROR_NAMES <= reraised


def _check_exception_swallowing(path: str, tree: ast.AST) -> list[LintViolation]:
    violations: list[LintViolation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        reraised: set[str] = set()
        for handler in node.handlers:
            names = _exception_names(handler.type)
            broad = bool(names & {"Exception", "BaseException"})
            if _has_bare_raise(handler):
                reraised.update(names)
                continue
            if not broad:
                continue
            if not _guard_errors_covered(reraised):
                caught = "bare except" if handler.type is None else (
                    "except " + "/".join(sorted(names))
                )
                violations.append(
                    LintViolation(
                        path, handler.lineno, "VAM002",
                        f"{caught} swallows query-guard errors "
                        "(QueryTimeoutError/BudgetExceededError/"
                        "QueryCancelledError): re-raise them in a preceding "
                        "handler or add a bare raise",
                    )
                )
            if "BaseException" in names and not (
                reraised & {"KeyboardInterrupt", "BaseException"}
            ):
                violations.append(
                    LintViolation(
                        path, handler.lineno, "VAM002",
                        "bare/BaseException handler swallows "
                        "KeyboardInterrupt: re-raise it first",
                    )
                )
    return violations


# -- VAM003: persistence must not leak raw decode errors -----------------------


def _module_error_tuples(tree: ast.Module) -> dict[str, set[str]]:
    """Module-level ``NAME = (struct.error, ...)`` tuples, by name."""
    tuples: dict[str, set[str]] = {}
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Tuple)):
            continue
        names = _exception_names(stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                tuples[target.id] = names
    return tuples


def _handler_names_resolved(
    handler: ast.ExceptHandler, module_tuples: dict[str, set[str]]
) -> set[str]:
    names = _exception_names(handler.type)
    resolved = set(names)
    for name in names:
        resolved.update(module_tuples.get(name, ()))
    return resolved


def _decode_call_kind(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute) and isinstance(node.func.value, ast.Name):
        return DECODE_CALLS.get((node.func.value.id, node.func.attr))
    return None


class _TryStack(ast.NodeVisitor):
    """Finds decode calls / intra-module calls and the trys covering them."""

    def __init__(self, module_tuples: dict[str, set[str]], local_functions: set[str]):
        self.module_tuples = module_tuples
        self.local_functions = local_functions
        self.stack: list[ast.Try] = []
        #: (error kind, lineno) of uncovered decode calls.
        self.uncovered: list[tuple[str, int]] = []
        #: (callee name, lineno, frozenset of handled names) per local call.
        self.local_calls: list[tuple[str, int, frozenset[str]]] = []

    def _handled_names(self) -> frozenset[str]:
        names: set[str] = set()
        for block in self.stack:
            for handler in block.handlers:
                names.update(_handler_names_resolved(handler, self.module_tuples))
        return frozenset(names)

    def _covered(self, kind: str) -> bool:
        short = kind.split(".")[-1]
        covers = DECODE_COVERS[kind] | {short}
        return bool(self._handled_names() & covers)

    def visit_Try(self, node: ast.Try) -> None:
        self.stack.append(node)
        for stmt in node.body:
            self.visit(stmt)
        self.stack.pop()
        for handler in node.handlers:
            self.visit(handler)
        for stmt in node.orelse + node.finalbody:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        kind = _decode_call_kind(node)
        if kind is not None and not self._covered(kind):
            self.uncovered.append((kind, node.lineno))
        if isinstance(node.func, ast.Name) and node.func.id in self.local_functions:
            self.local_calls.append((node.func.id, node.lineno, self._handled_names()))
        self.generic_visit(node)


def _check_persistence_decode(path: str, tree: ast.Module) -> list[LintViolation]:
    if not path.replace(os.sep, "/").endswith("mass/persistence.py"):
        return []
    module_tuples = _module_error_tuples(tree)
    functions = {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    scans: dict[str, _TryStack] = {}
    for name, func in functions.items():
        scan = _TryStack(module_tuples, set(functions))
        for stmt in func.body:
            scan.visit(stmt)
        scans[name] = scan

    # Fixpoint: a function leaks a decode error if it performs an uncovered
    # decode call, or calls a leaking local function at a site whose
    # enclosing trys don't convert that error.
    leaks: dict[str, set[str]] = {
        name: {kind for kind, _ in scan.uncovered} for name, scan in scans.items()
    }
    changed = True
    while changed:
        changed = False
        for name, scan in scans.items():
            for callee, _line, handled in scan.local_calls:
                for kind in leaks.get(callee, ()):
                    short = kind.split(".")[-1]
                    if handled & (DECODE_COVERS[kind] | {short}):
                        continue
                    if kind not in leaks[name]:
                        leaks[name].add(kind)
                        changed = True

    # Only *public* escape paths are violations: a private helper may leak
    # raw decode errors as long as every public entry point converts them.
    violations: list[LintViolation] = []
    for name, func in functions.items():
        if name.startswith("_"):
            continue
        scan = scans[name]
        for kind, line in scan.uncovered:
            violations.append(
                LintViolation(
                    path, line, "VAM003",
                    f"raw {kind} may escape {name}(): wrap the decode call "
                    "in a try converting it to StorageError",
                )
            )
        leaked = leaks.get(name, set())
        if leaked and not scan.uncovered:
            violations.append(
                LintViolation(
                    path, func.lineno, "VAM003",
                    f"public function {name}() may leak "
                    f"{', '.join(sorted(leaked))} via a helper it calls",
                )
            )
    return violations


# -- VAM004: no wall-clock calls inside operators ------------------------------


def _is_operator_class(node: ast.ClassDef) -> bool:
    if node.name.endswith("Operator"):
        return True
    return any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item.name in ("next_tuple", "next_block")
        for item in node.body
    )


def _check_wall_clock(path: str, tree: ast.AST) -> list[LintViolation]:
    violations: list[LintViolation] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and _is_operator_class(node)):
            continue
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            func = inner.func
            called = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in WALL_CLOCK_ATTRS
            ):
                called = f"time.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in (
                "monotonic", "perf_counter", "process_time"
            ):
                called = func.id
            if called:
                violations.append(
                    LintViolation(
                        path, inner.lineno, "VAM004",
                        f"operator class {node.name} calls {called}(): "
                        "inject time through the guard's clock instead",
                    )
                )
    return violations


# -- VAM005: rewrite-rule hygiene ----------------------------------------------


def _nonempty_str_assign(stmt: ast.stmt, name: str) -> bool:
    """Is ``stmt`` an assignment of a non-empty string literal to ``name``?"""
    targets: list[ast.expr]
    if isinstance(stmt, ast.Assign):
        targets, value = stmt.targets, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets, value = [stmt.target], stmt.value
    else:
        return False
    if not any(isinstance(t, ast.Name) and t.id == name for t in targets):
        return False
    return isinstance(value, ast.Constant) and isinstance(value.value, str) \
        and bool(value.value.strip())


def _check_rule_hygiene(path: str, tree: ast.AST) -> list[LintViolation]:
    normalized = path.replace(os.sep, "/")
    if "/optimizer/" not in normalized:
        return []
    violations: list[LintViolation] = []
    if "/optimizer/rules/" in normalized:
        # Concrete rule classes must cite the paper.  The abstract base
        # (``RewriteRule``) is the one exemption.
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name == "RewriteRule":
                continue
            is_rule = any(
                isinstance(base, ast.Name) and base.id.endswith("Rule")
                for base in node.bases
            )
            if not is_rule:
                continue
            if not any(
                _nonempty_str_assign(stmt, "paper_ref") for stmt in node.body
            ):
                violations.append(
                    LintViolation(
                        path, node.lineno, "VAM005",
                        f"rule class {node.name} does not declare a non-empty "
                        "paper_ref string literal citing the paper section "
                        "it reproduces",
                    )
                )
        return violations
    # Outside the rule library: every ``<rule>.apply(...)`` must be gated.
    for func in _function_defs(tree):
        apply_sites: list[int] = []
        gated = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                if node.func.attr == "check_rewrite":
                    gated = True
                elif (
                    node.func.attr == "apply"
                    and isinstance(node.func.value, ast.Name)
                    and "rule" in node.func.value.id.lower()
                ):
                    apply_sites.append(node.lineno)
        if apply_sites and not gated:
            for line in apply_sites:
                violations.append(
                    LintViolation(
                        path, line, "VAM005",
                        f"rule.apply() in {func.name}() is not routed through "
                        "the check_rewrite verification gate",
                    )
                )
    return violations


# -- VAM006: snapshots must be released on all exits ---------------------------


def _scope_nodes(root: ast.AST):
    """Walk ``root`` without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_acquire_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "acquire"
    )


def _stmt_blocks(scope: ast.AST):
    """Yield every statement list in ``scope``, not entering nested defs."""
    nodes = [scope]
    for node in _scope_nodes(scope):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a nested scope's blocks belong to that scope
        nodes.append(node)
    for node in nodes:
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            # IfExp/Lambda reuse the attribute names for single exprs.
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block


def _check_snapshot_release(path: str, tree: ast.AST) -> list[LintViolation]:
    """Every ``.acquire()`` in the serving package must be leak-proof.

    A :class:`~repro.serving.snapshot.StoreSnapshot` pin that escapes on
    an error path silently prevents old store versions from ever being
    reclaimed, so an acquire call must be one of:

    * the context expression of a ``with`` statement (the snapshot's
      ``__exit__`` releases the pin on all exits),
    * assigned to a name that some ``try`` releases in its ``finally``
      block, with the acquire either *inside* that try's body or in the
      statement immediately before the try — any statement between the
      acquire and the try (a conditional return, another call that can
      raise) is a window where the pin leaks before the finally exists,
    * returned directly (``return ....acquire()`` transfers ownership to
      the caller, who carries the same obligation).
    """
    if "serving" not in os.path.normpath(path).split(os.sep):
        return []
    violations: list[LintViolation] = []
    scopes = [tree] + [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        with_exprs: set[int] = set()
        returned: set[int] = set()
        #: (try node, names its finally releases) pairs in this scope.
        releasing: list[tuple[ast.Try, set[str]]] = []
        assigned_to: dict[int, str | None] = {}
        assigned_stmt: dict[int, ast.stmt] = {}
        acquires: list[ast.Call] = []
        for node in _scope_nodes(scope):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_exprs.add(id(item.context_expr))
            elif isinstance(node, ast.Return) and node.value is not None:
                returned.add(id(node.value))
            elif isinstance(node, ast.Try):
                names: set[str] = set()
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "release"
                            and isinstance(sub.func.value, ast.Name)
                        ):
                            names.add(sub.func.value.id)
                if names:
                    releasing.append((node, names))
            elif isinstance(node, ast.Assign):
                name = (
                    node.targets[0].id
                    if len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    else None
                )
                assigned_to[id(node.value)] = name
                assigned_stmt[id(node.value)] = node
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                assigned_to[id(node.value)] = (
                    node.target.id if isinstance(node.target, ast.Name) else None
                )
                assigned_stmt[id(node.value)] = node
            if _is_acquire_call(node):
                acquires.append(node)
        #: Statement that immediately follows each statement in its block.
        following: dict[int, ast.stmt] = {}
        for block in _stmt_blocks(scope):
            for index in range(len(block) - 1):
                following[id(block[index])] = block[index + 1]
        #: Node ids inside each releasing try's body (protected region).
        body_ids = [
            (
                {id(sub) for stmt in try_node.body for sub in ast.walk(stmt)},
                names,
            )
            for try_node, names in releasing
        ]
        for call in acquires:
            if id(call) in with_exprs or id(call) in returned:
                continue
            name = assigned_to.get(id(call))
            if name is not None:
                stmt = assigned_stmt[id(call)]
                covered = False
                for (ids, names), (try_node, _names) in zip(body_ids, releasing):
                    if name not in names:
                        continue
                    if id(stmt) in ids or following.get(id(stmt)) is try_node:
                        covered = True
                        break
                if covered:
                    continue
                if any(name in names for _, names in releasing):
                    violations.append(
                        LintViolation(
                            path, call.lineno, "VAM006",
                            "snapshot acquire() can leak before its "
                            "releasing try begins: move the acquire into "
                            "the try body or make the try the very next "
                            "statement",
                        )
                    )
                    continue
            violations.append(
                LintViolation(
                    path, call.lineno, "VAM006",
                    "snapshot acquire() is not released on all exits: use "
                    "'with ...acquire() as s:' or assign to a name that a "
                    "try/finally releases",
                )
            )
    return violations


# -- driver --------------------------------------------------------------------

CHECKS = (
    _check_guard_checkpoint,
    _check_scan_cadence,
    _check_exception_swallowing,
    _check_persistence_decode,
    _check_wall_clock,
    _check_rule_hygiene,
    _check_snapshot_release,
)

#: Every registered rule, for ``--require`` and the README table.
RULE_SUMMARIES = {
    "VAM001": "guard checkpoint threaded through operators; bounded scan cadence",
    "VAM002": "broad exception handlers must not swallow guard interrupts",
    "VAM003": "persistence converts raw decode errors to StorageError",
    "VAM004": "no wall-clock calls inside operators",
    "VAM005": "rewrite rules cite the paper and route through check_rewrite",
    "VAM006": "snapshot pins released on all exits, no pre-try leak window",
    "VAM007": "lock-guarded fields accessed under their lock everywhere",
    "VAM008": "whole-repo lock acquisition order is acyclic",
    "VAM009": "no blocking operations while holding a lock",
}


def _parse_source(path: str):
    """Read and parse ``path`` → (source, tree | None, violations)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return source, None, [
            LintViolation(path, exc.lineno or 0, "VAM000", f"syntax error: {exc.msg}")
        ]
    return source, tree, []


def _lint_tree(path: str, tree: ast.Module, source: str) -> list[LintViolation]:
    """All per-file checks (everything except the repo-level VAM008)."""
    # Imported here, not at module top: concurrency.static needs
    # LintViolation from this module, so a top-level import would cycle.
    from repro.analysis.concurrency.static import check_concurrency

    violations: list[LintViolation] = []
    for check in CHECKS:
        violations.extend(check(path, tree))
    violations.extend(check_concurrency(path, tree, source))
    return violations


def lint_file(path: str) -> list[LintViolation]:
    source, tree, violations = _parse_source(path)
    if tree is None:
        return violations
    return violations + _lint_tree(path, tree, source)


def iter_python_files(paths: list[str]):
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            yield path


def lint_paths(paths: list[str]) -> list[LintViolation]:
    from repro.analysis.concurrency.static import check_lock_order

    violations: list[LintViolation] = []
    #: (path, tree, source) for every parseable file — VAM008 needs the
    #: whole set at once to see lock orders that span modules.
    triples: list[tuple[str, ast.Module, str]] = []
    for path in iter_python_files(paths):
        source, tree, parse_violations = _parse_source(path)
        violations.extend(parse_violations)
        if tree is None:
            continue
        violations.extend(_lint_tree(path, tree, source))
        triples.append((path, tree, source))
    violations.extend(check_lock_order(triples))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Check repo invariants (guard threading, exception "
        "hygiene, persistence error conversion, injectable clocks, "
        "lock discipline).",
    )
    parser.add_argument(
        "paths", nargs="+", help="files or directories to lint (e.g. src/repro)"
    )
    parser.add_argument(
        "--require",
        metavar="RULES",
        help="comma-separated rule ids (e.g. VAM007,VAM008) that must be "
        "registered in this linter; exit 2 if any is unknown",
    )
    options = parser.parse_args(argv)
    if options.require:
        required = [rule.strip() for rule in options.require.split(",") if rule.strip()]
        unknown = sorted(set(required) - set(RULE_SUMMARIES))
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)} "
                f"(registered: {', '.join(sorted(RULE_SUMMARIES))})",
                file=sys.stderr,
            )
            return 2
    for path in options.paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    violations = lint_paths(options.paths)
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
