"""The differential oracle: three independent answers, one verdict.

For a candidate rewrite ``before -> after`` of one expression, the oracle
computes the result node-set

* of the **before** plan and the **after** plan,
* through the **tuple-at-a-time** pipeline *and* the **batched** one
  (:mod:`repro.algebra.execution` shares no code between the two inner
  loops, so a rewrite can be correct in one mode and wrong in the other),
* and, independently of the whole index stack, through the naive
  :class:`~repro.baselines.dom_engine.DomTraversalEngine` reference.

Node-sets are compared as **ordered FLEX-key sequences** (the
order-preserving :attr:`~repro.mass.flexkey.FlexKey.sort_bytes` images),
so a rewrite that returns the right nodes in the wrong order, or the
right nodes twice, is a failure — exactly the document-order/duplicate
bugs that set-based comparison masks.

The DOM reference speaks :class:`~repro.xmlkit.dom.DomNode`; the bridge
is :func:`dom_key_map`, which assigns every DOM node the FLEX key the
MASS loader gives the same node (attributes first, then content children,
adjacent text merged — the ordinal discipline of
:func:`repro.mass.loader.load_events`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError, UnsupportedFeatureError
from repro.mass.flexkey import FlexKey
from repro.mass.store import MassStore
from repro.baselines.dom_engine import DomTraversalEngine
from repro.baselines.profiles import JAXEN_PROFILE
from repro.algebra.execution import (
    BlockConfig,
    TUPLE_AT_A_TIME,
    dedup_document_order,
    execute_plan,
)
from repro.algebra.plan import QueryPlan
from repro.xmlkit.dom import DomDocument

#: A deliberately small block so the batched pipeline genuinely blocks
#: (multiple fills per query) even on the tiny enumerated documents.
_BATCHED = BlockConfig(enabled=True, size=4, coalesce=True)

#: Execution modes an obligation must agree across.
MODES: tuple[tuple[str, BlockConfig], ...] = (
    ("tuple", TUPLE_AT_A_TIME),
    ("batched", _BATCHED),
)


def dom_key_map(document: DomDocument) -> dict[int, FlexKey]:
    """Map ``id(DomNode)`` to the FLEX key the MASS loader assigns it.

    Both sides walk the same event stream: an element's attributes (and
    namespace declarations) take ordinals ``0..n-1``, content children
    (elements, merged text, comments, PIs) continue from there.
    """
    mapping: dict[int, FlexKey] = {
        id(document.document_node): FlexKey.document()
    }
    stack = [(document.document_node, FlexKey.document())]
    while stack:
        node, key = stack.pop()
        for ordinal, attribute in enumerate(node.attributes):
            mapping[id(attribute)] = key.child(ordinal)
        base = len(node.attributes)
        for offset, child in enumerate(node.children):
            child_key = key.child(base + offset)
            mapping[id(child)] = child_key
            stack.append((child, child_key))
    return mapping


def evaluate_modes(
    plan: QueryPlan, store: MassStore
) -> dict[str, list[FlexKey]]:
    """The plan's final result per execution mode.

    Applies the engine's output discipline: distinct plans dedup and sort
    (as :meth:`VamanaEngine.execute` does), non-distinct plans keep the
    raw emission sequence.
    """
    results: dict[str, list[FlexKey]] = {}
    for mode, block in MODES:
        raw = list(execute_plan(plan, store, block=block))
        results[mode] = dedup_document_order(raw) if plan.root.distinct else raw
    return results


def dom_reference(
    expression: str, document: DomDocument, key_map: dict[int, FlexKey]
) -> list[FlexKey]:
    """The DOM baseline's answer, as FLEX keys in document order."""
    engine = DomTraversalEngine(JAXEN_PROFILE)
    engine.load_dom(document)
    return [key_map[id(node)] for node in engine.evaluate(expression)]


def _describe_divergence(label: str, left: list[FlexKey], right: list[FlexKey]) -> str:
    left_bytes = [key.sort_bytes for key in left]
    right_bytes = [key.sort_bytes for key in right]
    index = next(
        (i for i, (a, b) in enumerate(zip(left_bytes, right_bytes)) if a != b),
        min(len(left_bytes), len(right_bytes)),
    )
    def show(keys: list[FlexKey]) -> str:
        if index < len(keys):
            return repr(keys[index])
        return "(exhausted)"
    return (
        f"{label}: {len(left)} vs {len(right)} keys, "
        f"first divergence at position {index}: {show(left)} vs {show(right)}"
    )


def compare_sequences(
    label: str, left: list[FlexKey], right: list[FlexKey]
) -> str | None:
    """None when the ordered key sequences agree, else a description."""
    if [key.sort_bytes for key in left] == [key.sort_bytes for key in right]:
        return None
    return _describe_divergence(label, left, right)


@dataclass
class DifferentialOracle:
    """A rewrite-equivalence checker bound to one store (and optional DOM).

    ``discrepancies(before, after, rule)`` is the contract
    :class:`~repro.analysis.plan_verifier.PlanVerifier` accepts for its
    opt-in dynamic validation mode: an empty list discharges the
    obligation, anything else is a counterexample description.

    Without a DOM (``document=None``) the oracle still cross-checks the
    two plans and the two execution modes; with one, both plans must also
    match the naive reference.  DOM checks are skipped (not failed) for
    expressions outside the baseline's feature set.
    """

    store: MassStore
    document: DomDocument | None = None
    key_map: dict[int, FlexKey] | None = None

    def __post_init__(self) -> None:
        if self.document is not None and self.key_map is None:
            self.key_map = dom_key_map(self.document)

    # -- pieces (reused by the runner to avoid recomputation) ---------------

    def reference(self, expression: str) -> list[FlexKey] | None:
        """The DOM answer, or None when unavailable/unsupported."""
        if self.document is None or self.key_map is None:
            return None
        try:
            return dom_reference(expression, self.document, self.key_map)
        except (UnsupportedFeatureError, ReproError):
            return None

    def check_plan(
        self,
        plan: QueryPlan,
        label: str,
        reference: list[FlexKey] | None,
    ) -> tuple[dict[str, list[FlexKey]], list[str]]:
        """Run one plan in every mode; cross-check modes and the DOM."""
        problems: list[str] = []
        results = evaluate_modes(plan, self.store)
        mismatch = compare_sequences(
            f"{label} plan: tuple vs batched pipeline", results["tuple"],
            results["batched"],
        )
        if mismatch:
            problems.append(mismatch)
        if reference is not None and plan.root.distinct:
            mismatch = compare_sequences(
                f"{label} plan vs DOM baseline", results["tuple"], reference
            )
            if mismatch:
                problems.append(mismatch)
        return results, problems

    # -- the PlanVerifier contract ------------------------------------------

    def discrepancies(
        self, before: QueryPlan, after: QueryPlan, rule: str = ""
    ) -> list[str]:
        """Counterexample descriptions; empty = obligation discharged."""
        expression = before.expression or after.expression
        reference = self.reference(expression) if expression else None
        before_results, problems = self.check_plan(before, "pre-rewrite", reference)
        after_results, after_problems = self.check_plan(
            after, "post-rewrite", reference
        )
        problems.extend(after_problems)
        mismatch = compare_sequences(
            f"rewrite {rule or '?'}: pre vs post result",
            before_results["tuple"], after_results["tuple"],
        )
        if mismatch:
            problems.append(mismatch)
        return problems
