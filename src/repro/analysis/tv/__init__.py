"""Translation validation for the optimizer (``repro.analysis.tv``).

The plan verifier of :mod:`repro.analysis.plan_verifier` checks *static*
properties of a rewrite — tree shape, ordering/distinctness flags,
guard threading.  This package discharges the stronger obligation the
paper only argues informally: that every rewrite rule is a true
*equivalence*, returning the same node-set as the plan it replaced on
every document.

Four cooperating parts:

* :mod:`repro.analysis.tv.documents` — a bounded enumerator producing
  every XMark-vocabulary document up to a node budget (bounded model
  checking), plus seeded random documents beyond the bound;
* :mod:`repro.analysis.tv.oracle` — the differential harness: a rewrite's
  pre- and post-plans run through both execution modes (tuple-at-a-time
  and batched) and are cross-checked against the DOM baseline, comparing
  ordered FLEX-key sequences;
* :mod:`repro.analysis.tv.shrinker` — delta debugging: a failing
  (document, query, rule) triple is minimized to a smallest reproducer
  and emitted as a pytest-ready fixture;
* :mod:`repro.analysis.tv.bounds` — abstract interpretation of plans
  into guaranteed ``[lo, hi]`` cardinality intervals, used to lint the
  cost estimator's point estimates (estimator soundness) and to clamp
  :meth:`~repro.cost.estimator.CostEstimator.suggest_block_size`.

:mod:`repro.analysis.tv.runner` drives them all; the CLI front-end is
``repro verify-rules [--quick|--exhaustive]``.
"""

from repro.analysis.tv.bounds import (
    CardinalityInterval,
    check_estimator_soundness,
    derive_intervals,
    soundness_violations,
)
from repro.analysis.tv.documents import (
    DocumentBounds,
    enumerate_documents,
    random_documents,
)
from repro.analysis.tv.oracle import (
    DifferentialOracle,
    dom_key_map,
    dom_reference,
    evaluate_modes,
)
from repro.analysis.tv.runner import VerifyReport, verify_rules
from repro.analysis.tv.shrinker import Reproducer, count_nodes, shrink_document

__all__ = [
    "CardinalityInterval",
    "DifferentialOracle",
    "DocumentBounds",
    "Reproducer",
    "VerifyReport",
    "check_estimator_soundness",
    "count_nodes",
    "derive_intervals",
    "dom_key_map",
    "dom_reference",
    "enumerate_documents",
    "evaluate_modes",
    "random_documents",
    "shrink_document",
    "soundness_violations",
    "verify_rules",
]
