"""Known-broken rewrite rules: the validator's own test subjects.

Each mutant reintroduces a bug the real rule guards against.  They exist
so the translation-validation harness can be *tested*: running
:func:`repro.analysis.tv.runner.verify_rules` over a mutant must produce
a counterexample and shrink it to a handful of nodes.  The shrunk
reproducers are checked into ``tests/analysis/fixtures/`` and replayed
forever.

None of these are registered anywhere — importing this module has no
effect on the optimizer.
"""

from __future__ import annotations

from repro.model import Axis, NodeTestKind
from repro.algebra.plan import ExistsNode, PlanBase, QueryPlan, StepNode
from repro.optimizer.rules.duplicate_elim import DuplicateEliminationRule
from repro.optimizer.rules.pushdown import (
    _DOWN_LEAF_AXES,
    _PUSHABLE_AXES,
    PredicatePushdownRule,
)
from repro.optimizer.util import find_by_id, on_context_path


class BrokenPushdownRule(PredicatePushdownRule):
    """Pushdown minus the positional-predicate guard.

    ``//people/person[1]`` means "the first person *of each people*"; the
    pushed-down form re-runs the positional filter against a different
    context and the rewrite stops being an equivalence.  The real rule
    rejects such sites via ``has_positional_predicates``; this mutant
    applies anyway.
    """

    name = "broken-pushdown"
    paper_ref = "mutant of Figure 11 (drops the positional guard)"

    def matches(self, plan: QueryPlan, node: PlanBase) -> bool:
        if not isinstance(node, StepNode) or node.axis not in _PUSHABLE_AXES:
            return False
        if node.test.kind is NodeTestKind.NODE:
            return False
        leaf = node.context_child
        if not isinstance(leaf, StepNode) or leaf.context_child is not None:
            return False
        if leaf.axis not in _DOWN_LEAF_AXES:
            return False
        if leaf.test.kind is NodeTestKind.NODE:
            return False
        # The real rule rejects positional predicates here; the mutant
        # deliberately does not.
        return on_context_path(plan, node)


class BrokenDuplicateEliminationRule(DuplicateEliminationRule):
    """Duplicate elimination with ``ancestor`` instead of ``ancestor-or-self``.

    The rewrite's correctness argument is ``ancestor(child of x) =
    ancestor-or-self(x)``; keeping the plain ancestor axis silently drops
    ``x`` itself whenever ``x`` matches the ancestor test (e.g.
    ``//person/name/ancestor::person``).
    """

    name = "broken-duplicate-elimination"
    paper_ref = "mutant of Section VIII (forgets the -or-self case)"

    def apply(self, plan: QueryPlan, node: PlanBase) -> None:
        # The base rule's rewrite, except the hoisted step keeps the
        # plain ANCESTOR axis (cannot patch after super().apply(): its
        # renumber() invalidates node.op_id).
        step = find_by_id(plan, node.op_id)
        assert isinstance(step, StepNode)
        middle = step.context_child
        assert isinstance(middle, StepNode)
        carrier = middle.context_child
        assert carrier is not None
        probe = StepNode(Axis.CHILD, middle.test)
        probe.predicates = list(middle.predicates)
        carrier.predicates = carrier.predicates + [ExistsNode(probe)]
        step.axis = Axis.ANCESTOR
        step.context_child = carrier
        plan.renumber()


#: Queries that give each mutant a matching site *and* a document class
#: on which the bug is observable.
MUTANT_QUERIES: dict[str, tuple[str, ...]] = {
    BrokenPushdownRule.name: ("//people/person[1]",),
    BrokenDuplicateEliminationRule.name: ("//person/name/ancestor::person",),
}

MUTANT_RULES = (BrokenPushdownRule(), BrokenDuplicateEliminationRule())
