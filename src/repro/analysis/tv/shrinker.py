"""Delta debugging for failing (document, query, rule) triples.

A counterexample from the differential oracle is only useful if a human
can read it: a 40-node random document with one misplaced text value is
noise, the 4-node core of the same failure is a bug report.  This module
minimizes a failing document with greedy ddmin-style subtree removal —
repeatedly delete one element subtree, text node or attribute, keep the
deletion whenever the failure predicate still holds, and stop at a
fixpoint where removing any single node makes the failure disappear
(1-minimality).

The result is emitted as a :class:`Reproducer` — a pytest-ready fixture
(JSON: document, expression, rule, discrepancies) the regression corpus
under ``tests/analysis/fixtures/`` replays forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.mass.records import NodeKind
from repro.xmlkit.dom import build_dom
from repro.analysis.tv.documents import TreeNode, serialize


def _tree_from_xml(xml_text: str) -> TreeNode:
    """Parse a document back into the mutable-by-reconstruction tree."""
    document = build_dom(xml_text)
    return _convert(document.document_element)


def _convert(node) -> TreeNode:
    text_parts = [
        child.value for child in node.children if child.kind is NodeKind.TEXT
    ]
    children = tuple(
        _convert(child)
        for child in node.children
        if child.kind is NodeKind.ELEMENT
    )
    return TreeNode(
        node.name,
        text="".join(text_parts) if text_parts else None,
        children=children,
        attributes=tuple((a.name, a.value) for a in node.attributes),
    )


def count_nodes(xml_text: str) -> int:
    """Elements + attributes + text nodes (the shrink-target metric)."""
    return _tree_from_xml(xml_text).node_count()


def _candidates(tree: TreeNode) -> Iterator[TreeNode]:
    """Every tree obtainable by deleting exactly one node, biggest first.

    Deletions of large subtrees are yielded before small ones so the
    greedy pass takes the biggest sound step available each round.
    """
    edits: list[tuple[int, TreeNode]] = []
    for edit in _single_deletions(tree):
        edits.append((tree.node_count() - edit.node_count(), edit))
    edits.sort(key=lambda entry: -entry[0])
    for _gain, edit in edits:
        yield edit


def _single_deletions(tree: TreeNode) -> Iterator[TreeNode]:
    # Delete one child subtree (any size — subtree removal is what makes
    # this ddmin rather than node-at-a-time).
    for index in range(len(tree.children)):
        yield TreeNode(
            tree.name, text=tree.text,
            children=tree.children[:index] + tree.children[index + 1:],
            attributes=tree.attributes,
        )
    # Drop the text node.
    if tree.text is not None:
        yield TreeNode(tree.name, text=None, children=tree.children,
                       attributes=tree.attributes)
    # Drop one attribute.
    for index in range(len(tree.attributes)):
        yield TreeNode(
            tree.name, text=tree.text, children=tree.children,
            attributes=tree.attributes[:index] + tree.attributes[index + 1:],
        )
    # Recurse: the same edits inside each child.
    for index, child in enumerate(tree.children):
        for edited in _single_deletions(child):
            yield TreeNode(
                tree.name, text=tree.text,
                children=tree.children[:index] + (edited,)
                + tree.children[index + 1:],
                attributes=tree.attributes,
            )


def shrink_document(
    xml_text: str,
    still_failing: Callable[[str], bool],
    max_steps: int = 10_000,
) -> str:
    """The smallest document (under single-deletion) still failing.

    ``still_failing`` receives serialized XML and must return True while
    the failure reproduces.  The input document itself must fail —
    otherwise it is returned unchanged.  The root element is never
    removed (an empty document is not valid XML).
    """
    if not still_failing(xml_text):
        return xml_text
    current = _tree_from_xml(xml_text)
    if not still_failing(serialize(current)):
        # Tree normalization (text-first canonicalization of mixed
        # content) lost the failure: shrink nothing rather than lie.
        return xml_text
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in _candidates(current):
            steps += 1
            if steps >= max_steps:
                break
            if still_failing(serialize(candidate)):
                current = candidate
                progress = True
                break
    return serialize(current)


@dataclass(frozen=True)
class Reproducer:
    """A minimized counterexample, ready to be checked in as a fixture."""

    rule: str
    expression: str
    document: str
    node_count: int
    discrepancies: tuple[str, ...] = field(default_factory=tuple)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "expression": self.expression,
            "document": self.document,
            "node_count": self.node_count,
            "discrepancies": list(self.discrepancies),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Reproducer":
        return cls(
            rule=payload["rule"],
            expression=payload["expression"],
            document=payload["document"],
            node_count=payload["node_count"],
            discrepancies=tuple(payload.get("discrepancies", ())),
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Reproducer":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    def describe(self) -> str:
        lines = [
            f"rule {self.rule!r} on {self.expression!r} "
            f"({self.node_count}-node reproducer):",
            f"  document: {self.document}",
        ]
        lines.extend(f"  {problem}" for problem in self.discrepancies)
        return "\n".join(lines)
