"""The translation-validation driver behind ``repro verify-rules``.

For every rewrite rule it builds the rule's *obligations*: each query in
the rule's pool is compiled to a cleaned default plan, the rule is
applied at **every** matching operator (not just the optimizer's pick),
and each (before, after) pair must produce identical ordered FLEX-key
sequences — tuple and batched pipelines, cross-checked against the DOM
baseline — on **every** document of the corpus.  The corpus is the
exhaustive bounded enumeration of :mod:`repro.analysis.tv.documents`
plus seeded random documents beyond the bound.

Plans are store-independent, so obligations are built once and executed
per document; each document's store, DOM and key map are shared across
all obligations.

A failing obligation is minimized by the shrinker into a
:class:`~repro.analysis.tv.shrinker.Reproducer` that can be written to
``tests/analysis/fixtures/`` and replayed forever.

The run finishes with the estimator-soundness pass: the paper's Q1-Q5
are planned (default and optimized) against a generated XMark document
and every point estimate must fall inside the provable
:mod:`~repro.analysis.tv.bounds` interval.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import (
    BudgetExceededError,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.mass.loader import load_xml
from repro.xmark.generator import XmarkGenerator
from repro.xmlkit.dom import build_dom
from repro.algebra.builder import build_default_plan
from repro.algebra.plan import PlanBase, QueryPlan
from repro.analysis.satisfiability import xmark_schema
from repro.analysis.tv.bounds import check_estimator_soundness
from repro.analysis.tv.documents import (
    DocumentBounds,
    enumerate_documents,
    random_documents,
)
from repro.analysis.tv.oracle import DifferentialOracle, compare_sequences
from repro.analysis.tv.shrinker import Reproducer, count_nodes, shrink_document
from repro.cost.estimator import CostEstimator
from repro.optimizer.cleanup import cleanup_plan
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.rules import DEFAULT_RULES, RewriteRule
from repro.optimizer.util import find_by_id

#: Queries every rule is obligated on (slice vocabulary; a rule with no
#: matching operator on a query discharges that obligation trivially).
GENERIC_QUERIES: tuple[str, ...] = (
    "//person/name",
    "//people/person",
    "//person/address/city",
    "//address/city",
    "//watches/watch",
    "//person/name/text()",
    "//people/person[1]",
    "//person[address]",
)

#: Extra queries aimed at each rule's rewrite pattern.
RULE_QUERIES: dict[str, tuple[str, ...]] = {
    "predicate-pushdown": (
        "//person[name]/address",
        "//people/person[watches]/name",
        "//person[address/city]/watches",
        "//address[city]/city",
    ),
    "reverse-axis": (
        "//watch/ancestor::person",
        "//name/parent::person",
        "//city/ancestor::person/name",
        "/descendant::name/parent::*",
    ),
    "value-index": (
        "//name[text()='v']",
        "//person[name='v']/address",
        "//city[text()='w']",
        "//person[name/text()='w']/name",
    ),
    "duplicate-elimination": (
        "//watches/watch/ancestor::person",
        "//address/city/ancestor::person",
        "//person/name/ancestor::people",
        "//name | //city",
        "//person/name | //people/person/name",
    ),
    "path-fusion": (
        "//people/person/name",
        "//person/name/text()",
        "//people//name",
        "/child::people/child::person/child::name",
        "//people/person/address/city",
        "/descendant-or-self::node()/child::person/descendant::text()",
    ),
}

#: The paper's benchmark queries for the estimator-soundness pass.
SOUNDNESS_QUERIES: dict[str, str] = {
    "Q1": "//person/address",
    "Q2": "//watches/watch/ancestor::person",
    "Q3": "/descendant::name/parent::*/self::person/address",
    "Q4": "//itemref/following-sibling::price/parent::*",
    "Q5": "//province[text()='Vermont']/ancestor::person",
}


@dataclass(frozen=True)
class Obligation:
    """One rewrite site: the rule applied at one operator of one plan."""

    rule: str
    expression: str
    site: str
    before: QueryPlan
    after: QueryPlan


@dataclass
class ObligationFailure:
    """One counterexample, optionally minimized."""

    rule: str
    expression: str
    site: str
    document: str
    discrepancies: tuple[str, ...]
    reproducer: Reproducer | None = None

    def describe(self) -> str:
        lines = [
            f"FAIL {self.rule} on {self.expression!r} at {self.site}:",
            f"  document: {self.document}",
        ]
        lines.extend(f"  {problem}" for problem in self.discrepancies)
        if self.reproducer is not None:
            lines.append(
                f"  shrunk to {self.reproducer.node_count} nodes: "
                f"{self.reproducer.document}"
            )
        return "\n".join(lines)


@dataclass
class VerifyReport:
    """Everything one ``verify-rules`` run established."""

    mode: str = "quick"
    documents: int = 0
    obligations: int = 0
    checked: int = 0
    failures: list[ObligationFailure] = field(default_factory=list)
    soundness_violations: dict[str, list[str]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures and not any(
            problems for problems in self.soundness_violations.values()
        )

    def describe(self) -> str:
        lines = [
            f"verify-rules ({self.mode}): {self.obligations} obligations x "
            f"{self.documents} documents ({self.checked} checks) in "
            f"{self.elapsed_seconds:.1f}s",
        ]
        for failure in self.failures:
            lines.append(failure.describe())
        for label, problems in sorted(self.soundness_violations.items()):
            for problem in problems:
                lines.append(f"UNSOUND estimate on {label}: {problem}")
        lines.append(
            "all equivalence obligations discharged; estimator sound on "
            + "/".join(sorted(self.soundness_violations))
            if self.ok
            else f"{len(self.failures)} obligation failure(s), "
            + f"{sum(len(p) for p in self.soundness_violations.values())} "
            "unsound estimate(s)"
        )
        return "\n".join(lines)


def build_obligations(
    rules: tuple[RewriteRule, ...] = DEFAULT_RULES,
    extra_queries: tuple[str, ...] = (),
) -> list[Obligation]:
    """Every (rule, query, matching site) triple as a before/after pair.

    Mirrors the optimizer's mechanics exactly — clone, apply at the
    matched operator, cleanup — but applies the rule at *every* matching
    site, so an equivalence bug is exposed even at sites the cost model
    would never pick.
    """
    obligations: list[Obligation] = []
    for rule in rules:
        queries = GENERIC_QUERIES + RULE_QUERIES.get(rule.name, ()) + extra_queries
        for expression in queries:
            plan = build_default_plan(expression)
            cleanup_plan(plan)
            sites = [
                node
                for node in plan.walk()
                if isinstance(node, PlanBase) and rule.matches(plan, node)
            ]
            for site in sites:
                candidate = plan.clone()
                target = find_by_id(candidate, site.op_id)
                if target is None:
                    continue
                rule.apply(candidate, target)
                cleanup_plan(candidate)
                obligations.append(
                    Obligation(
                        rule=rule.name,
                        expression=expression,
                        site=site.describe(),
                        before=plan,
                        after=candidate,
                    )
                )
    return obligations


def corpus(quick: bool = True, seed: int = 7) -> list[str]:
    """The document corpus: exhaustive tier + seeded random tier."""
    if quick:
        bounds = DocumentBounds(max_nodes=7)
        random_count = 24
    else:
        bounds = DocumentBounds(max_nodes=9, max_depth=5, max_width=3)
        random_count = 120
    documents = list(enumerate_documents(bounds))
    documents.extend(random_documents(random_count, seed=seed))
    # The random tier can land inside the exhaustive tier; drop repeats.
    return list(dict.fromkeys(documents))


def check_document(
    xml_text: str, obligations: list[Obligation]
) -> list[ObligationFailure]:
    """Run every obligation against one document."""
    store = load_xml(xml_text, name="tv-corpus")
    oracle = DifferentialOracle(store, build_dom(xml_text))
    failures: list[ObligationFailure] = []
    # The before plan and DOM answer are shared per expression.
    by_expression: dict[str, tuple] = {}
    for obligation in obligations:
        cached = by_expression.get(obligation.expression)
        if cached is None:
            reference = oracle.reference(obligation.expression)
            before_results, before_problems = oracle.check_plan(
                obligation.before, "pre-rewrite", reference
            )
            cached = (reference, before_results, before_problems)
            by_expression[obligation.expression] = cached
        reference, before_results, problems = cached
        problems = list(problems)
        after_results, after_problems = oracle.check_plan(
            obligation.after, "post-rewrite", reference
        )
        problems.extend(after_problems)
        mismatch = compare_sequences(
            f"rewrite {obligation.rule}: pre vs post result",
            before_results["tuple"],
            after_results["tuple"],
        )
        if mismatch:
            problems.append(mismatch)
        if problems:
            failures.append(
                ObligationFailure(
                    rule=obligation.rule,
                    expression=obligation.expression,
                    site=obligation.site,
                    document=xml_text,
                    discrepancies=tuple(problems),
                )
            )
    return failures


def _obligation_fails(xml_text: str, obligation: Obligation) -> bool:
    """The shrinker's predicate: does the failure still reproduce?"""
    try:
        return bool(check_document(xml_text, [obligation]))
    except (
        KeyboardInterrupt,
        QueryTimeoutError,
        BudgetExceededError,
        QueryCancelledError,
    ):
        raise
    except Exception:  # noqa: BLE001 - a crash on a shrunk doc still "fails"
        return True


def shrink_failure(
    failure: ObligationFailure, obligation: Obligation
) -> Reproducer:
    """Minimize one failure to its smallest reproducing document."""
    minimal = shrink_document(
        failure.document, lambda xml: _obligation_fails(xml, obligation)
    )
    remaining = check_document(minimal, [obligation])
    discrepancies = (
        remaining[0].discrepancies if remaining else failure.discrepancies
    )
    return Reproducer(
        rule=failure.rule,
        expression=failure.expression,
        document=minimal,
        node_count=count_nodes(minimal),
        discrepancies=discrepancies,
    )


def soundness_pass(quick: bool = True) -> dict[str, list[str]]:
    """Estimator-soundness lint on Q1-Q5 (default and optimized plans)."""
    factor = 0.005 if quick else 0.02
    text = XmarkGenerator(seed=42).generate(factor)
    store = load_xml(text, name="tv-xmark")
    schema = xmark_schema()
    optimizer = Optimizer(store)
    estimator = CostEstimator(store)
    violations: dict[str, list[str]] = {}
    for label, expression in SOUNDNESS_QUERIES.items():
        default = build_default_plan(expression)
        cleanup_plan(default)
        problems = list(check_estimator_soundness(default, store, schema))
        optimized, _trace = optimizer.optimize(build_default_plan(expression))
        estimator.estimate(optimized)
        problems.extend(
            f"(optimized) {problem}"
            for problem in check_estimator_soundness(optimized, store, schema)
        )
        violations[label] = problems
    return violations


def verify_rules(
    quick: bool = True,
    rules: tuple[RewriteRule, ...] = DEFAULT_RULES,
    seed: int = 7,
    shrink: bool = True,
    max_failures: int = 8,
    extra_queries: tuple[str, ...] = (),
    soundness: bool = True,
) -> VerifyReport:
    """Discharge every rewrite rule's equivalence obligation.

    ``quick`` bounds the corpus for CI (< 2 minutes); the exhaustive
    mode widens the node budget and the random tier.  At most one
    failure per (rule, expression) pair is shrunk — the first
    counterexample is what a human debugs.
    """
    started = time.perf_counter()
    report = VerifyReport(mode="quick" if quick else "exhaustive")
    obligations = build_obligations(rules, extra_queries=extra_queries)
    report.obligations = len(obligations)
    seen_failures: set[tuple[str, str]] = set()
    for xml_text in corpus(quick=quick, seed=seed):
        report.documents += 1
        report.checked += len(obligations)
        for failure in check_document(xml_text, obligations):
            key = (failure.rule, failure.expression)
            if key in seen_failures:
                continue
            seen_failures.add(key)
            if shrink and len(report.failures) < max_failures:
                obligation = next(
                    o
                    for o in obligations
                    if o.rule == failure.rule
                    and o.expression == failure.expression
                    and o.site == failure.site
                )
                failure.reproducer = shrink_failure(failure, obligation)
            report.failures.append(failure)
        if len(report.failures) >= max_failures:
            break
    if soundness:
        report.soundness_violations = soundness_pass(quick=quick)
    report.elapsed_seconds = time.perf_counter() - started
    return report
