"""Bounded document enumeration for translation validation.

Differential testing of rewrite rules is only as strong as its inputs.
Random documents find *some* bugs, but the classic ordering/duplicate
mistakes of XPath optimizers (Maneth & Nguyen) hide in tiny structural
corners: two siblings of the same name, an element nested under itself's
sibling, an empty optional child.  Those corners are cheap to cover
*exhaustively*: this module enumerates **every** document over a slice of
the XMark vocabulary (:mod:`repro.xmark.vocabulary`) up to a global node
budget — bounded model checking over the document space.  Beyond the
bound, seeded random documents add depth and width the exhaustive tier
cannot afford.

Documents are built as plain nested tuples and serialized to XML text so
every consumer (MASS loader, DOM builder, fixtures on disk) parses the
same bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator
from xml.sax.saxutils import escape, quoteattr

from repro.xmark import vocabulary

#: The vocabulary slice the exhaustive tier enumerates: a chain of the
#: XMark grammar (site → people → person → {name, address → city,
#: watches → watch}) chosen so every rewrite rule has structure to bite
#: on — repeated siblings for positional predicates, a two-level nest for
#: pushdown, text leaves for the value index.  Every edge is a real edge
#: of :data:`~repro.xmark.vocabulary.SCHEMA_CHILDREN`, so satisfiability
#: analysis never prunes these documents.
SLICE_CHILDREN: dict[str, tuple[str, ...]] = {
    "site": ("people",),
    "people": ("person",),
    "person": ("name", "address", "watches"),
    "address": ("city",),
    "watches": ("watch",),
    "name": (),
    "city": (),
    "watch": (),
}

#: Slice elements that may carry a text child (all really do in XMark).
SLICE_TEXT_ELEMENTS: frozenset[str] = frozenset({"name", "city"})

#: Attributes the random tier may attach (exhaustively enumerating
#: attributes doubles the space per element; randomness covers them).
SLICE_ATTRIBUTES: dict[str, tuple[str, ...]] = {
    "person": ("id",),
    "watch": ("open_auction",),
}

_SLICE_SCHEMA_OK = all(
    frozenset(children) <= vocabulary.SCHEMA_CHILDREN[name]
    for name, children in SLICE_CHILDREN.items()
) and SLICE_TEXT_ELEMENTS <= vocabulary.SCHEMA_TEXT_ELEMENTS
assert _SLICE_SCHEMA_OK, "document slice must stay inside the XMark grammar"


@dataclass(frozen=True)
class DocumentBounds:
    """The exhaustive tier's search space.

    ``max_nodes`` is the global budget (elements + text nodes, the
    document node excluded) — the knob that actually tames the
    combinatorics; depth/width alone explode into hundreds of thousands
    of shapes.  ``max_width`` caps same-parent repetition of one child
    name, ``max_depth`` caps element nesting below ``site``, and
    ``text_alphabet`` is the value pool for text leaves (two distinct
    values suffice to separate value-index hits from misses).
    """

    max_nodes: int = 7
    max_depth: int = 4
    max_width: int = 2
    text_alphabet: tuple[str, ...] = ("v", "w")


@dataclass(frozen=True)
class TreeNode:
    """One enumerated element: name, optional text, child elements."""

    name: str
    text: str | None = None
    children: tuple["TreeNode", ...] = ()
    attributes: tuple[tuple[str, str], ...] = ()

    def node_count(self) -> int:
        total = 1 + (1 if self.text is not None else 0) + len(self.attributes)
        for child in self.children:
            total += child.node_count()
        return total


def serialize(tree: TreeNode) -> str:
    """The XML text of one enumerated document."""
    pieces: list[str] = []
    _serialize_into(tree, pieces)
    return "".join(pieces)


def _serialize_into(node: TreeNode, pieces: list[str]) -> None:
    attrs = "".join(
        f" {name}={quoteattr(value)}" for name, value in node.attributes
    )
    if node.text is None and not node.children:
        pieces.append(f"<{node.name}{attrs}/>")
        return
    pieces.append(f"<{node.name}{attrs}>")
    if node.text is not None:
        pieces.append(escape(node.text))
    for child in node.children:
        _serialize_into(child, pieces)
    pieces.append(f"</{node.name}>")


def enumerate_documents(bounds: DocumentBounds | None = None) -> Iterator[str]:
    """Every slice document within ``bounds``, smallest first, as XML text.

    The enumeration is exhaustive and deterministic: same bounds, same
    sequence.  Child *sequences* are enumerated (order and multiplicity
    matter to positional predicates), but sibling lists are kept in the
    slice's canonical name order — XMark itself never interleaves, and
    dropping permutations buys an order of magnitude more node budget.
    """
    bounds = bounds or DocumentBounds()
    trees = sorted(
        _enumerate_element("site", bounds.max_depth, bounds.max_nodes, bounds),
        key=lambda entry: entry[1],
    )
    for tree, _nodes in trees:
        yield serialize(tree)


def _enumerate_element(
    name: str, depth_left: int, budget: int, bounds: DocumentBounds
) -> list[tuple[TreeNode, int]]:
    """All subtrees rooted at ``name`` using at most ``budget`` nodes."""
    if budget < 1:
        return []
    results: list[tuple[TreeNode, int]] = []
    text_options: list[tuple[str | None, int]] = [(None, 0)]
    if name in SLICE_TEXT_ELEMENTS:
        text_options.extend((value, 1) for value in bounds.text_alphabet)
    child_names = SLICE_CHILDREN[name] if depth_left > 0 else ()
    for text, text_cost in text_options:
        remaining = budget - 1 - text_cost
        if remaining < 0:
            continue
        for children, child_cost in _enumerate_children(
            child_names, depth_left - 1, remaining, bounds
        ):
            results.append(
                (
                    TreeNode(name, text=text, children=children),
                    1 + text_cost + child_cost,
                )
            )
    return results


def _enumerate_children(
    names: tuple[str, ...], depth_left: int, budget: int, bounds: DocumentBounds
) -> list[tuple[tuple[TreeNode, ...], int]]:
    """All child sequences over ``names`` (canonical order, bounded width)."""
    sequences: list[tuple[tuple[TreeNode, ...], int]] = [((), 0)]
    for name in names:
        # Subtrees for this name, reusable across repetition counts.
        options = _enumerate_element(name, depth_left, budget, bounds)
        extended: list[tuple[tuple[TreeNode, ...], int]] = []
        for prefix, prefix_cost in sequences:
            extended.append((prefix, prefix_cost))  # zero copies of `name`
            tails: list[tuple[tuple[TreeNode, ...], int]] = [((), 0)]
            for _repeat in range(bounds.max_width):
                grown: list[tuple[tuple[TreeNode, ...], int]] = []
                for tail, tail_cost in tails:
                    for tree, tree_cost in options:
                        total = prefix_cost + tail_cost + tree_cost
                        if total <= budget:
                            grown.append((tail + (tree,), tail_cost + tree_cost))
                extended.extend(
                    (prefix + tail, prefix_cost + tail_cost)
                    for tail, tail_cost in grown
                )
                tails = grown
        sequences = extended
    return sequences


def random_documents(
    count: int, seed: int = 7, max_depth: int = 5, max_width: int = 3,
    text_alphabet: tuple[str, ...] = ("v", "w", "x"),
) -> Iterator[str]:
    """Seeded random slice documents beyond the exhaustive bound.

    Wider and deeper than :func:`enumerate_documents` affords, with
    attributes from :data:`SLICE_ATTRIBUTES` mixed in.  Deterministic for
    a given ``(count, seed)``.
    """
    rng = random.Random(seed)
    for _ in range(count):
        yield serialize(_random_element("site", max_depth, max_width,
                                        text_alphabet, rng))


def _random_element(
    name: str, depth_left: int, max_width: int,
    alphabet: tuple[str, ...], rng: random.Random,
) -> TreeNode:
    text = None
    if name in SLICE_TEXT_ELEMENTS and rng.random() < 0.7:
        text = rng.choice(alphabet)
    attributes = tuple(
        (attr, rng.choice(alphabet))
        for attr in SLICE_ATTRIBUTES.get(name, ())
        if rng.random() < 0.5
    )
    children: list[TreeNode] = []
    if depth_left > 0:
        for child_name in SLICE_CHILDREN[name]:
            for _ in range(rng.randint(0, max_width)):
                children.append(
                    _random_element(child_name, depth_left - 1, max_width,
                                    alphabet, rng)
                )
    return TreeNode(name, text=text, children=tuple(children),
                    attributes=attributes)
