"""Abstract interpretation of plans into sound cardinality intervals.

The cost estimator (:mod:`repro.cost.estimator`) annotates every
operator with a *point estimate* of its output cardinality, built from
Table I of the paper.  Table I is a heuristic, not a bound: for the up
axes it charges ``OUT = IN`` even though one context node can emit many
ancestors, and for the down axes it charges ``COUNT`` even when the
schema proves the input empty.  This module derives what *can* be
guaranteed — a ``[lo, hi]`` interval per operator that holds on **every**
document the store could contain — and uses it two ways:

* **estimator-soundness lint** (:func:`soundness_violations`): a point
  estimate outside the provable interval is flagged.  An estimate above
  ``hi`` means the optimizer is being scared away from a plan by
  phantom tuples (e.g. a step whose input is provably empty but still
  charged ``COUNT``); an estimate below ``lo`` means a rewrite could be
  accepted on an impossibly cheap figure.
* **sound block sizing**: :meth:`CostEstimator.suggest_block_size`
  accepts the interval table and clamps each operator's estimate to its
  upper bound before sizing pipeline blocks, so a phantom estimate can
  no longer inflate block memory.

The interval semantics is **pipeline emissions** under document-context
evaluation: ``hi`` bounds how many tuples the operator can hand its
consumer (duplicates included), ``lo`` how few.  The derivation:

* a context-path leaf step ``descendant[-or-self]::name`` with no
  predicates drains the element index — exactly ``COUNT`` emissions,
  so ``lo = hi = COUNT`` (the one exact case);
* any other step emits at most ``IN_hi × cap(axis)`` tuples, where
  ``cap`` is 1 for ``self``/``parent``/named-attribute steps (at most
  one hit per context) and ``COUNT(test)`` otherwise;
* predicates can only filter: they force ``lo = 0`` and keep ``hi``;
* a value-index probe emits at most ``TC(value)`` entries;
* a union emits at most the sum of its branches (its merge dedups, so
  fewer is possible → ``lo = 0``); a join at most its right child;
* the root passes its child's interval through (dedup only shrinks, and
  the exact-leaf case emits distinct keys already);
* on an exhaustive schema, token-flow refinement (the transfer functions
  of :class:`~repro.analysis.satisfiability.SatisfiabilityAnalyzer`)
  propagates the set of element/kind tokens a step can deliver — an
  empty token set collapses the interval to ``[0, 0]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mass.store import MassStore
from repro.model import Axis, NodeTestKind
from repro.analysis.satisfiability import DOC, SatisfiabilityAnalyzer, SchemaGraph
from repro.algebra.plan import (
    BinaryPredicateNode,
    ExistsNode,
    ExprNode,
    FunctionNode,
    FusedPathScanNode,
    JoinNode,
    NegateNode,
    PathExprNode,
    PlanNode,
    QueryPlan,
    RootNode,
    StepNode,
    UnionNode,
    ValueStepNode,
)

#: Axes that deliver at most one node per context tuple.
_UNIT_CAP_AXES = frozenset({Axis.SELF, Axis.PARENT})

#: Leaf axes that enumerate the index exhaustively from the document
#: context — the one case where emissions are exact.
_EXACT_LEAF_AXES = frozenset({Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF})


@dataclass(frozen=True)
class CardinalityInterval:
    """Guaranteed emission bounds for one operator: ``lo <= out <= hi``."""

    lo: int
    hi: int

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def describe(self) -> str:
        return f"[{self.lo}, {self.hi}]"


_TOP_TOKENS: frozenset[str] | None = None  # "any token" (no refinement)


class _IntervalDeriver:
    """One bottom-up derivation pass over a plan."""

    def __init__(self, store: MassStore, schema: SchemaGraph | None):
        self.store = store
        self.analyzer = (
            SatisfiabilityAnalyzer(schema)
            if schema is not None and schema.exhaustive
            else None
        )
        self.intervals: dict[int, CardinalityInterval] = {}

    # -- token flow ----------------------------------------------------------

    def _step_tokens(
        self, node: StepNode, tokens_in: frozenset[str] | None
    ) -> frozenset[str] | None:
        if self.analyzer is None or tokens_in is None:
            return None
        moved: set[str] = set()
        for token in tokens_in:
            moved.update(self.analyzer._axis(node.axis, token))
        return self.analyzer._filter_test(node.axis, node.test, frozenset(moved))

    # -- plan nodes ----------------------------------------------------------

    def derive(
        self,
        node: PlanNode,
        predicate_input: tuple[CardinalityInterval, frozenset[str] | None] | None,
    ) -> tuple[CardinalityInterval, frozenset[str] | None]:
        interval, tokens = self._derive(node, predicate_input)
        self.intervals[node.op_id] = interval
        return interval, tokens

    def _derive(
        self,
        node: PlanNode,
        predicate_input: tuple[CardinalityInterval, frozenset[str] | None] | None,
    ) -> tuple[CardinalityInterval, frozenset[str] | None]:
        if isinstance(node, RootNode):
            if node.context_child is None:
                return CardinalityInterval(1, 1), frozenset({DOC})
            return self.derive(node.context_child, predicate_input)
        if isinstance(node, UnionNode):
            hi = 0
            tokens: set[str] = set()
            any_tokens = self.analyzer is not None
            for branch in node.branches:
                branch_interval, branch_tokens = self.derive(branch, predicate_input)
                hi += branch_interval.hi
                if branch_tokens is None:
                    any_tokens = False
                else:
                    tokens.update(branch_tokens)
            return (
                CardinalityInterval(0, hi),
                frozenset(tokens) if any_tokens else None,
            )
        if isinstance(node, JoinNode):
            self.derive(node.left, predicate_input)
            right_interval, right_tokens = self.derive(node.right, predicate_input)
            interval = CardinalityInterval(0, right_interval.hi)
            interval = self._apply_predicates(node, interval, right_tokens)
            return interval, right_tokens
        if isinstance(node, ValueStepNode):
            text_count = self.store.text_count(node.value)
            interval = CardinalityInterval(0, text_count)
            interval = self._apply_predicates(node, interval, None)
            return interval, None
        if isinstance(node, FusedPathScanNode):
            return self._derive_fused(node, predicate_input)
        if isinstance(node, StepNode):
            return self._derive_step(node, predicate_input)
        # Unknown operator: claim nothing (the static verifier rejects
        # these separately).
        return CardinalityInterval(0, _unbounded(self.store)), None

    def _derive_fused(
        self,
        node: FusedPathScanNode,
        predicate_input: tuple[CardinalityInterval, frozenset[str] | None] | None,
    ) -> tuple[CardinalityInterval, frozenset[str] | None]:
        """A fused chain emits distinct nodes matching its final step, so
        the final step's population bounds one pass (times the input bound
        on a predicate path).  Token flow composes the per-step transfer
        functions; an empty token set anywhere collapses to ``[0, 0]``."""
        final_axis, final_test = node.steps[-1]
        count = self.store.count(final_test, final_axis.principal_kind)
        if predicate_input is not None:
            in_interval, tokens = predicate_input
            hi = in_interval.hi * count
        else:
            tokens = frozenset({DOC}) if self.analyzer is not None else None
            hi = count
        if self.analyzer is not None and tokens is not None:
            for axis, test in node.steps:
                moved: set[str] = set()
                for token in tokens:
                    moved.update(self.analyzer._axis(axis, token))
                tokens = self.analyzer._filter_test(axis, test, frozenset(moved))
        else:
            tokens = None
        interval = CardinalityInterval(0, hi)
        if tokens is not None and not tokens:
            interval = CardinalityInterval(0, 0)
        interval = self._apply_predicates(node, interval, tokens)
        return interval, tokens

    def _derive_step(
        self,
        node: StepNode,
        predicate_input: tuple[CardinalityInterval, frozenset[str] | None] | None,
    ) -> tuple[CardinalityInterval, frozenset[str] | None]:
        count = self.store.count(node.test, node.axis.principal_kind)
        if node.context_child is not None:
            in_interval, in_tokens = self.derive(node.context_child, predicate_input)
        elif predicate_input is not None:
            in_interval, in_tokens = predicate_input
        else:
            # Context-path leaf under document-context evaluation.
            in_tokens = frozenset({DOC}) if self.analyzer is not None else None
            if (
                node.axis in _EXACT_LEAF_AXES
                and node.test.kind is NodeTestKind.NAME
            ):
                # The leaf drains the element index: exactly COUNT hits.
                interval = CardinalityInterval(count, count)
            else:
                interval = CardinalityInterval(0, count)
            tokens_out = self._step_tokens(node, in_tokens)
            if tokens_out is not None and not tokens_out:
                interval = CardinalityInterval(0, 0)
            interval = self._apply_predicates(node, interval, tokens_out)
            return interval, tokens_out
        if node.axis in _UNIT_CAP_AXES or (
            node.axis is Axis.ATTRIBUTE and node.test.kind is NodeTestKind.NAME
        ):
            cap = 1
        else:
            cap = count
        interval = CardinalityInterval(0, in_interval.hi * cap)
        tokens_out = self._step_tokens(node, in_tokens)
        if tokens_out is not None and not tokens_out:
            interval = CardinalityInterval(0, 0)
        interval = self._apply_predicates(node, interval, tokens_out)
        return interval, tokens_out

    # -- predicates ----------------------------------------------------------

    def _apply_predicates(
        self,
        node: PlanNode,
        interval: CardinalityInterval,
        tokens: frozenset[str] | None,
    ) -> CardinalityInterval:
        if not node.predicates:
            return interval
        for predicate in node.predicates:
            self._walk_expr(predicate, interval, tokens)
        # Filtering can drop anything, never add.
        return CardinalityInterval(0, interval.hi)

    def _walk_expr(
        self,
        expr: ExprNode,
        parent_interval: CardinalityInterval,
        parent_tokens: frozenset[str] | None,
    ) -> None:
        """Derive intervals for plan sub-trees nested in a predicate.

        A predicate path's leaf is evaluated once per candidate tuple of
        the operator it filters, so its input bound is that operator's
        pre-predicate interval (the analogue of the estimator's case 3).
        """
        if isinstance(expr, (ExistsNode, PathExprNode)):
            self.derive(
                expr.path,
                (CardinalityInterval(0, parent_interval.hi), parent_tokens),
            )
            return
        if isinstance(expr, BinaryPredicateNode):
            self._walk_expr(expr.left, parent_interval, parent_tokens)
            self._walk_expr(expr.right, parent_interval, parent_tokens)
            return
        if isinstance(expr, NegateNode):
            self._walk_expr(expr.operand, parent_interval, parent_tokens)
            return
        if isinstance(expr, FunctionNode):
            for arg in expr.args:
                self._walk_expr(arg, parent_interval, parent_tokens)


def _unbounded(store: MassStore) -> int:
    """A trivially sound ceiling: every stored node per input tuple."""
    return max(len(store.node_index), 1) ** 2


def derive_intervals(
    plan: QueryPlan, store: MassStore, schema: SchemaGraph | None = None
) -> dict[int, CardinalityInterval]:
    """Sound ``[lo, hi]`` emission intervals for every plan operator.

    ``schema`` enables token-flow refinement when exhaustive (pass
    :func:`~repro.analysis.satisfiability.xmark_schema` for XMark
    stores); ``None`` or a names-only schema derives purely from counts.
    Intervals assume document-context evaluation — the mode the engine's
    cost model (and the paper) reason about.
    """
    deriver = _IntervalDeriver(store, schema)
    deriver.derive(plan.root, None)
    return deriver.intervals


def soundness_violations(
    plan: QueryPlan, intervals: dict[int, CardinalityInterval]
) -> list[str]:
    """Operators whose point estimate falls outside the provable interval.

    The plan must already carry estimates (run
    :meth:`CostEstimator.estimate` first); un-annotated operators are
    skipped.
    """
    problems: list[str] = []
    for node in plan.walk():
        if not isinstance(node, PlanNode):
            continue
        interval = intervals.get(node.op_id)
        estimate = node.cost.tuples_out
        if interval is None or estimate is None:
            continue
        if not interval.contains(estimate):
            side = "above" if estimate > interval.hi else "below"
            problems.append(
                f"{node.describe()}: estimate OUT={estimate} is {side} the "
                f"provable interval {interval.describe()}"
            )
    return problems


def check_estimator_soundness(
    plan: QueryPlan, store: MassStore, schema: SchemaGraph | None = None
) -> list[str]:
    """Estimate the plan, derive intervals, and lint the estimates."""
    from repro.cost.estimator import CostEstimator

    CostEstimator(store).estimate(plan)
    return soundness_violations(plan, derive_intervals(plan, store, schema))
