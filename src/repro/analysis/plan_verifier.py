"""Static verification of physical query plans.

The optimizer's central promise — "the optimized plan is never slower",
and above all *never wrong* — rests on every rewrite rule being a true
algebraic equivalence.  A buggy rule used to surface only at runtime (or
worse, as silently wrong answers).  This module reasons about plans
*before* they execute, in the spirit of SXSI's whole-query static
analysis: it infers per-operator properties and checks structural
invariants, and the optimizer uses :meth:`PlanVerifier.check_rewrite` as
a gate on every proposed rewrite.

Two layers:

* **Property inference** (:func:`infer_properties`): for every operator,
  its output *ordering* (document order / reverse / unordered), whether
  its output is *duplicate-free*, whether the subtree is
  *context-dependent* (needs an externally supplied context tuple),
  whether the step is *statically empty* (its axis can never deliver a
  node satisfying its node test), and whether *guard threading* is
  guaranteed (the node maps to a runtime operator known to checkpoint the
  :class:`~repro.resilience.QueryGuard` in ``next_tuple``/``next_block``).
* **Structural invariants** (:meth:`PlanVerifier.verify`): the plan is a
  tree (no aliasing, no cycles), rooted at a :class:`RootNode`, operator
  ids are unique after cleanup (no dangling duplicates), child arity is
  respected, predicate sub-plans are rooted correctly (no nested
  ``RootNode``; their leaf takes the dynamic context), and every operator
  carries a valid operator kind (join conditions, predicate ops).

The rewrite gate then compares properties across a proposed rewrite and
rejects regressions: a changed duplicate-elimination flag, an
order/distinctness loss that matters under non-distinct output semantics,
or a newly introduced statically-empty step.  Violations raise (or are
collected into) :class:`~repro.errors.PlanInvariantError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanInvariantError
from repro.model import Axis, NodeTestKind
from repro.algebra.plan import (
    BinaryPredicateNode,
    ExistsNode,
    ExprNode,
    FunctionNode,
    FusedPathScanNode,
    JoinNode,
    LiteralNode,
    NegateNode,
    NumberNode,
    PathExprNode,
    PlanBase,
    PlanNode,
    QueryPlan,
    RootNode,
    StepNode,
    UnionNode,
    ValueStepNode,
)

#: Output-ordering lattice: ``document`` and ``reverse`` are both "known"
#: orders; ``unordered`` is the bottom the gate treats as a regression.
DOCUMENT_ORDER = "document"
REVERSE_ORDER = "reverse"
UNORDERED = "unordered"

#: Plan-node types with a known runtime operator whose ``next_tuple`` /
#: ``next_block`` checkpoint the query guard (enforced by the repo linter).
_GUARDED_NODE_TYPES = (
    RootNode,
    StepNode,
    ValueStepNode,
    FusedPathScanNode,
    UnionNode,
    JoinNode,
)

#: The predicate-expression operators execution understands.
_KNOWN_EXPR_TYPES = (
    ExistsNode,
    PathExprNode,
    BinaryPredicateNode,
    LiteralNode,
    NumberNode,
    FunctionNode,
    NegateNode,
)

_BINARY_OPS = frozenset(
    {"=", "!=", "<", "<=", ">", ">=", "and", "or", "+", "-", "*", "div", "mod"}
)


@dataclass(frozen=True)
class OperatorProperties:
    """Statically inferred properties of one tuple-producing operator."""

    ordering: str  # DOCUMENT_ORDER | REVERSE_ORDER | UNORDERED
    distinct: bool  # output is duplicate-free
    context_dependent: bool  # subtree needs an external context tuple
    statically_empty: bool  # axis/node-test pair can never match
    guard_threaded: bool  # runtime operator checkpoints the guard

    def describe(self) -> str:
        flags = [f"order={self.ordering}", f"distinct={'yes' if self.distinct else 'no'}"]
        if self.statically_empty:
            flags.append("statically-empty")
        if not self.guard_threaded:
            flags.append("UNGUARDED")
        return " ".join(flags)


def step_statically_empty(axis: Axis, test) -> bool:
    """Can ``axis::test`` ever deliver a node?

    The attribute and namespace axes only deliver nodes of their principal
    kind, so a kind test for text/comment/processing-instruction nodes on
    them is a contradiction — the step is empty on every document.
    """
    if axis in (Axis.ATTRIBUTE, Axis.NAMESPACE):
        return test.kind in (
            NodeTestKind.TEXT,
            NodeTestKind.COMMENT,
            NodeTestKind.PROCESSING_INSTRUCTION,
        )
    return False


def infer_properties(plan: QueryPlan) -> dict[int, OperatorProperties]:
    """Infer :class:`OperatorProperties` for every tuple-producing node.

    Keys are operator ids (``op_id``); call after ``renumber``/cleanup so
    ids are unique.  Inference is conservative: a property is only claimed
    when it holds on every document.
    """
    properties: dict[int, OperatorProperties] = {}

    def visit(node: PlanNode) -> OperatorProperties:
        props = _infer_node(node, visit)
        properties[node.op_id] = props
        return props

    visit(plan.root)
    return properties


def _infer_node(node: PlanNode, visit) -> OperatorProperties:
    if isinstance(node, RootNode):
        child = (
            visit(node.context_child) if node.context_child is not None else None
        )
        _visit_predicate_paths(node, visit)
        if child is None:
            return OperatorProperties(DOCUMENT_ORDER, True, False, True, True)
        if node.distinct:
            # The engine dedups and sorts the root's output.
            return OperatorProperties(
                DOCUMENT_ORDER, True, child.context_dependent,
                child.statically_empty, child.guard_threaded,
            )
        return child

    if isinstance(node, ValueStepNode):
        _visit_predicate_paths(node, visit)
        # A leaf probe over the value index: entries come back in document
        # order and each node appears once per (value, key) entry.
        return OperatorProperties(DOCUMENT_ORDER, True, True, False, True)

    if isinstance(node, FusedPathScanNode):
        _visit_predicate_paths(node, visit)
        # One document-order pass over the node index; the automaton emits
        # each accepting node exactly once, so the output is distinct and
        # ordered by construction.  A leaf: it consumes the external
        # context.  Fusable axes never form a statically-empty step.
        return OperatorProperties(DOCUMENT_ORDER, True, True, False, True)

    if isinstance(node, StepNode):
        _visit_predicate_paths(node, visit)
        empty = step_statically_empty(node.axis, node.test)
        if node.context_child is None:
            # A context-path leaf: one context tuple, so the axis's own
            # delivery order is the output order.
            ordering = REVERSE_ORDER if node.axis.is_reverse else DOCUMENT_ORDER
            return OperatorProperties(ordering, True, True, empty, True)
        child = visit(node.context_child)
        if node.axis is Axis.SELF:
            # self:: is a pure filter — order and multiplicity pass through.
            return OperatorProperties(
                child.ordering, child.distinct, child.context_dependent,
                empty or child.statically_empty, child.guard_threaded,
            )
        # Hits from successive context tuples may interleave (nested
        # contexts) and repeat (shared ancestors): claim nothing.
        return OperatorProperties(
            UNORDERED, False, child.context_dependent,
            empty or child.statically_empty, child.guard_threaded,
        )

    if isinstance(node, UnionNode):
        _visit_predicate_paths(node, visit)
        branches = [visit(branch) for branch in node.branches]
        # The union operator merges, sorts and dedups before emitting.
        return OperatorProperties(
            DOCUMENT_ORDER,
            True,
            any(branch.context_dependent for branch in branches),
            bool(branches) and all(branch.statically_empty for branch in branches),
            all(branch.guard_threaded for branch in branches),
        )

    if isinstance(node, JoinNode):
        _visit_predicate_paths(node, visit)
        left = visit(node.left)
        right = visit(node.right)
        # The join emits deduplicated right tuples in document order.
        return OperatorProperties(
            DOCUMENT_ORDER,
            True,
            left.context_dependent or right.context_dependent,
            left.statically_empty or right.statically_empty,
            left.guard_threaded and right.guard_threaded,
        )

    # Unknown PlanNode subclass: execution has no operator for it, so
    # guard threading (and everything else) cannot be guaranteed.
    return OperatorProperties(UNORDERED, False, True, False, False)


def _visit_predicate_paths(node: PlanNode, visit) -> None:
    """Infer properties for plan sub-trees nested inside predicates."""
    for predicate in node.predicates:
        _visit_expr_paths(predicate, visit)


def _visit_expr_paths(expr: ExprNode, visit) -> None:
    if isinstance(expr, (ExistsNode, PathExprNode)):
        visit(expr.path)
        return
    for child in expr.children():
        if isinstance(child, ExprNode):
            _visit_expr_paths(child, visit)


class PlanVerifier:
    """Checks structural invariants and gates optimizer rewrites.

    ``oracle`` enables the opt-in *dynamic* validation mode of
    :meth:`check_rewrite`: any object with a
    ``discrepancies(before, after, rule) -> list[str]`` method (e.g.
    :class:`repro.analysis.tv.oracle.DifferentialOracle`) is consulted
    after the static gate passes, and its counterexamples are raised as
    :class:`~repro.errors.PlanInvariantError` like any other violation —
    the optimizer then rejects the rewrite and keeps going.
    """

    def __init__(self, oracle=None):
        self.oracle = oracle

    # -- structural invariants ---------------------------------------------

    def violations(self, plan: QueryPlan) -> list[str]:
        """Every broken structural invariant, as human-readable strings."""
        problems: list[str] = []
        if not isinstance(plan.root, RootNode):
            problems.append(
                f"plan root is {type(plan.root).__name__}, not RootNode"
            )
        problems.extend(self._tree_shape(plan))
        if not problems:
            problems.extend(self._node_invariants(plan))
        return problems

    def verify(self, plan: QueryPlan, rule: str = "") -> dict[int, OperatorProperties]:
        """Raise :class:`PlanInvariantError` unless every invariant holds.

        Returns the inferred property table on success, so callers get the
        analysis for free.
        """
        problems = self.violations(plan)
        if problems:
            raise PlanInvariantError(problems, rule=rule)
        return infer_properties(plan)

    def _tree_shape(self, plan: QueryPlan) -> list[str]:
        """The plan must be a tree: every node one parent, no cycles."""
        problems: list[str] = []
        indegree: dict[int, int] = {}
        labels: dict[int, str] = {}
        for parent, child in plan.walk_edges():
            indegree[id(child)] = indegree.get(id(child), 0) + 1
            labels[id(child)] = child.describe()
            if child is plan.root:
                problems.append(
                    f"cycle: {parent.describe()} points back at the plan root"
                )
        for identity, count in indegree.items():
            if count > 1:
                problems.append(
                    f"operator {labels[identity]} is shared by {count} parents "
                    "(rewrites must clone, not alias)"
                )
        return problems

    def _node_invariants(self, plan: QueryPlan) -> list[str]:
        problems: list[str] = []
        seen_ids: dict[int, str] = {}
        for node in plan.walk():
            if not isinstance(node.op_id, int) or node.op_id < 1:
                problems.append(
                    f"operator {node.describe()} has invalid id {node.op_id!r}"
                )
            elif node.op_id in seen_ids:
                problems.append(
                    f"duplicate operator id {node.op_id} "
                    f"({seen_ids[node.op_id]} vs {node.describe()}) — "
                    "dangling id after cleanup"
                )
            else:
                seen_ids[node.op_id] = node.describe()
            if isinstance(node, RootNode) and node is not plan.root:
                problems.append(
                    f"nested RootNode {node.describe()} — predicate sub-plans "
                    "must be rooted at their path's outermost step"
                )
            if isinstance(node, UnionNode) and not node.branches:
                problems.append(f"union {node.describe()} has no branches")
            if isinstance(node, JoinNode):
                if node.condition not in JoinNode.CONDITIONS:
                    problems.append(
                        f"join {node.describe()} has unknown condition "
                        f"{node.condition!r}"
                    )
            if isinstance(node, BinaryPredicateNode) and node.op not in _BINARY_OPS:
                problems.append(
                    f"predicate {node.describe()} has unknown operator {node.op!r}"
                )
            if isinstance(node, PlanNode):
                if not isinstance(node, _GUARDED_NODE_TYPES):
                    problems.append(
                        f"unknown operator type {type(node).__name__} — "
                        "guard threading cannot be guaranteed"
                    )
                for predicate in node.predicates:
                    if not isinstance(predicate, ExprNode):
                        problems.append(
                            f"{node.describe()} carries a non-expression "
                            f"predicate {type(predicate).__name__}"
                        )
            elif isinstance(node, ExprNode):
                if not isinstance(node, _KNOWN_EXPR_TYPES):
                    problems.append(
                        f"unknown expression type {type(node).__name__}"
                    )
                if isinstance(node, (ExistsNode, PathExprNode)) and not isinstance(
                    node.path, PlanNode
                ):
                    problems.append(
                        f"{node.describe()} wraps a non-plan path "
                        f"{type(node.path).__name__}"
                    )
        return problems

    # -- the rewrite gate ----------------------------------------------------

    def check_rewrite(
        self, before: QueryPlan, after: QueryPlan, rule: str = ""
    ) -> dict[int, OperatorProperties]:
        """Verify a proposed rewrite; raise on any property regression.

        ``before`` is the plan under optimization, ``after`` the cleaned
        candidate a rule produced.  The gate enforces:

        * ``after`` satisfies every structural invariant;
        * the root's duplicate-elimination flag is untouched (dropping it
          silently changes node-*set* semantics into multiset semantics);
        * under non-distinct output (``distinct=False``), document order
          and duplicate-freedom at the root must not regress — with
          ``distinct=True`` the engine re-establishes both, so rewrites
          may trade them for cost;
        * no statically-empty step is introduced: a correct equivalence
          never manufactures an impossible axis/node-test pair.
        """
        after_props = self.verify(after, rule=rule)
        problems: list[str] = []
        if not isinstance(before.root, RootNode):
            raise PlanInvariantError(
                ["pre-rewrite plan has no RootNode"], rule=rule
            )
        before_props = infer_properties(before)
        if after.root.distinct != before.root.distinct:
            problems.append(
                "duplicate-elimination flag changed "
                f"({before.root.distinct} -> {after.root.distinct})"
            )
        b_root = before_props[before.root.op_id]
        a_root = after_props[after.root.op_id]
        if not before.root.distinct:
            if b_root.ordering == DOCUMENT_ORDER and a_root.ordering != DOCUMENT_ORDER:
                problems.append(
                    "output ordering regressed "
                    f"({b_root.ordering} -> {a_root.ordering}) under "
                    "non-distinct semantics"
                )
            if b_root.distinct and not a_root.distinct:
                problems.append(
                    "output duplicate-freedom lost under non-distinct semantics"
                )
        before_empty = sum(p.statically_empty for p in before_props.values())
        after_empty = sum(p.statically_empty for p in after_props.values())
        if after_empty > before_empty:
            problems.append(
                f"rewrite introduced {after_empty - before_empty} "
                "statically-empty step(s)"
            )
        if not problems and self.oracle is not None:
            # Dynamic validation: run both plans and compare result
            # sequences.  Only consulted once the static gate is clean —
            # a structurally broken plan may not be executable at all.
            problems.extend(self.oracle.discrepancies(before, after, rule))
        if problems:
            raise PlanInvariantError(problems, rule=rule)
        return after_props


def describe_properties(plan: QueryPlan) -> str:
    """A printable property table, one line per tuple-producing operator."""
    properties = infer_properties(plan)
    lines = [f"static properties of {plan.expression!r}"]
    for node in plan.walk():
        if isinstance(node, PlanNode) and node.op_id in properties:
            lines.append(f"  {node.describe()}: {properties[node.op_id].describe()}")
    return "\n".join(lines)


def verify_plan(plan: QueryPlan) -> dict[int, OperatorProperties]:
    """Convenience wrapper: structural check + property inference."""
    return PlanVerifier().verify(plan)
