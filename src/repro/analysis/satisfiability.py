"""Schema-based query satisfiability analysis.

Some queries can be proven empty without reading a single page: a name
test no document node carries, a parent/child pair the vocabulary never
nests, a step along the attribute axis asking for a comment.  Following
the whole-query static analysis of SXSI (Maneth & Nguyen), this module
evaluates a *compiled XPath parse tree* against a small schema graph and
reports whether the query is satisfiable.  The engine consults it before
planning and short-circuits statically-empty queries to an empty result —
zero index I/O, zero operator work.

The analysis is **sound, not complete**: ``satisfiable=False`` is a
proof (no document conforming to the schema can match), while
``satisfiable=True`` merely means "could not prove empty".  Everything
uncertain — following/preceding reachability, positional predicates,
``not()`` — is approximated permissively, because a wrong "empty" verdict
would silently drop answers.

Two schema sources:

* :func:`xmark_schema` — the exhaustive parent→child/attribute graph of
  the XMark generator, straight from :mod:`repro.xmark.vocabulary`.
* :func:`names_only_schema` — the opt-out for arbitrary documents: only
  the *name* universe is known (mined from the store's name index), so
  just unknown-name tests prune; every structural combination is assumed
  possible.

Contexts are modelled as sets of **tokens**: element names, ``#doc`` (the
document node), ``#text``, ``#comment``, ``#pi``, ``@name`` (attributes)
and ``#ns`` (namespace nodes).  Text, comment and PI nodes are allowed
under every element even with the exhaustive schema — real documents
carry whitespace text and annotations the generator grammar doesn't
mention, and pruning those would be unsound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model import Axis, NodeTest, NodeTestKind
from repro.xmark import vocabulary
from repro.xpath.ast import (
    AndExpr,
    BinaryOp,
    Comparison,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    OrExpr,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    XPathNode,
)

DOC = "#doc"
TEXT = "#text"
COMMENT = "#comment"
PI = "#pi"
NS = "#ns"

_KIND_TOKENS = frozenset({TEXT, COMMENT, PI})


def _is_element(token: str) -> bool:
    return not (token.startswith(("#", "@")))


@dataclass(frozen=True)
class SchemaGraph:
    """What the analyzer knows about documents in a store.

    ``exhaustive`` marks the children/attribute maps as complete: with it
    set, a parent→child pair absent from ``children`` is *impossible*;
    without it, only the name universes (``elements``/``attributes_all``)
    are trusted and structure is assumed arbitrary.
    """

    elements: frozenset[str]
    attributes_all: frozenset[str]
    children: dict[str, frozenset[str]] = field(default_factory=dict)
    attributes: dict[str, frozenset[str]] = field(default_factory=dict)
    root: str = ""
    exhaustive: bool = False

    def describe(self) -> str:
        kind = "exhaustive" if self.exhaustive else "names-only"
        return (
            f"{kind} schema: {len(self.elements)} element names, "
            f"{len(self.attributes_all)} attribute names"
            + (f", root <{self.root}>" if self.root else "")
        )


def xmark_schema() -> SchemaGraph:
    """The XMark generator's document grammar as a schema graph."""
    return SchemaGraph(
        elements=vocabulary.SCHEMA_ELEMENTS,
        attributes_all=frozenset().union(*vocabulary.SCHEMA_ATTRIBUTES.values()),
        children=dict(vocabulary.SCHEMA_CHILDREN),
        attributes=dict(vocabulary.SCHEMA_ATTRIBUTES),
        root=vocabulary.SCHEMA_ROOT,
        exhaustive=True,
    )


def names_only_schema(
    elements: frozenset[str] | set[str],
    attributes: frozenset[str] | set[str] = frozenset(),
    root: str = "",
) -> SchemaGraph:
    """A permissive schema knowing only which names exist in a store."""
    return SchemaGraph(
        elements=frozenset(elements),
        attributes_all=frozenset(attributes),
        root=root,
        exhaustive=False,
    )


@dataclass(frozen=True)
class SatReport:
    """The analyzer's verdict on one expression."""

    satisfiable: bool
    reasons: tuple[str, ...] = ()
    schema: str = ""

    def describe(self) -> str:
        if self.satisfiable:
            return "satisfiable (not provably empty)"
        return "statically empty: " + "; ".join(self.reasons)


class SatisfiabilityAnalyzer:
    """Evaluates parse trees over token sets drawn from one schema."""

    def __init__(self, schema: SchemaGraph):
        self.schema = schema
        self._parents: dict[str, frozenset[str]] = {}
        self._descendants: dict[str, frozenset[str]] = {}
        self._ancestors: dict[str, frozenset[str]] = {}
        self._anywhere = frozenset(schema.elements) | _KIND_TOKENS

    # -- public API ---------------------------------------------------------

    def analyze(self, tree: XPathNode) -> SatReport:
        """Judge a full compiled expression (absolute context)."""
        reasons: list[str] = []
        satisfiable = self._node_satisfiable(tree, frozenset({DOC}), reasons)
        return SatReport(
            satisfiable=satisfiable,
            reasons=tuple(reasons) if not satisfiable else (),
            schema=self.schema.describe(),
        )

    # -- expression dispatch -------------------------------------------------

    def _node_satisfiable(
        self, node: XPathNode, context: frozenset[str], reasons: list[str]
    ) -> bool:
        if isinstance(node, LocationPath):
            return bool(self._walk_path(node, context, reasons))
        if isinstance(node, UnionExpr):
            branch_reasons: list[str] = []
            if any(
                self._node_satisfiable(branch, context, branch_reasons)
                for branch in node.branches
            ):
                return True
            reasons.extend(branch_reasons)
            return False
        # Filter expressions, literals, arithmetic, function calls: these
        # produce values (or unanalyzed node-sets) — never prove them empty.
        return True

    def _walk_path(
        self, path: LocationPath, context: frozenset[str], reasons: list[str]
    ) -> frozenset[str]:
        """Token set a path may deliver; empty means provably no match."""
        tokens = frozenset({DOC}) if path.absolute else context
        for step in path.steps:
            tokens = self._apply_step(step, tokens, reasons)
            if not tokens:
                return tokens
        return tokens

    def _apply_step(
        self, step: Step, tokens: frozenset[str], reasons: list[str]
    ) -> frozenset[str]:
        moved: set[str] = set()
        for token in tokens:
            moved.update(self._axis(step.axis, token))
        tested = self._filter_test(step.axis, step.test, frozenset(moved))
        if not tested:
            reasons.append(self._step_reason(step, tokens, frozenset(moved)))
            return frozenset()
        for predicate in step.predicates:
            if self._predicate_must_fail(predicate, tested):
                reasons.append(
                    f"predicate [{predicate.unparse()}] of step "
                    f"'{step.axis.value}::{step.test}' can never hold"
                )
                return frozenset()
        return tested

    def _step_reason(
        self, step: Step, context: frozenset[str], moved: frozenset[str]
    ) -> str:
        test = step.test
        where = f"step '{step.axis.value}::{test}'"
        if (
            test.kind is NodeTestKind.NAME
            and step.axis.principal_kind.name == "ELEMENT"
            and test.name not in self.schema.elements
        ):
            return f"{where}: no element named '{test.name}' exists in the schema"
        if (
            test.kind is NodeTestKind.NAME
            and step.axis is Axis.ATTRIBUTE
            and test.name not in self.schema.attributes_all
        ):
            return f"{where}: no attribute named '{test.name}' exists in the schema"
        if not moved:
            sources = ", ".join(sorted(context)) or "(empty)"
            return f"{where}: the {step.axis.value} axis is empty from {sources}"
        return (
            f"{where}: none of " + ", ".join(sorted(moved)) + f" satisfies '{test}'"
        )

    # -- axis transitions ----------------------------------------------------

    def _axis(self, axis: Axis, token: str) -> frozenset[str]:
        if axis is Axis.SELF:
            return frozenset({token})
        if axis is Axis.CHILD:
            return self._children(token)
        if axis is Axis.DESCENDANT:
            return self._descendant_closure(token)
        if axis is Axis.DESCENDANT_OR_SELF:
            return self._descendant_closure(token) | {token}
        if axis is Axis.PARENT:
            return self._parent(token)
        if axis is Axis.ANCESTOR:
            return self._ancestor_closure(token)
        if axis is Axis.ANCESTOR_OR_SELF:
            return self._ancestor_closure(token) | {token}
        if axis is Axis.ATTRIBUTE:
            return self._attribute(token)
        if axis is Axis.NAMESPACE:
            return frozenset({NS}) if _is_element(token) else frozenset()
        # Sibling and document-order axes: no structural reasoning — any
        # non-attribute node elsewhere in the document may qualify.  The
        # document node itself has no siblings and nothing before/after it.
        if token == DOC:
            return frozenset()
        return self._anywhere

    def _children(self, token: str) -> frozenset[str]:
        if token == DOC:
            roots = (
                frozenset({self.schema.root})
                if self.schema.exhaustive and self.schema.root
                else self.schema.elements
            )
            return roots | {COMMENT, PI}
        if not _is_element(token):
            return frozenset()
        if self.schema.exhaustive:
            elements = self.schema.children.get(token, frozenset())
        else:
            elements = self.schema.elements
        # Text/comment/PI nodes may sit under any element: mixed content,
        # inter-element whitespace and annotations are outside the grammar.
        return elements | _KIND_TOKENS

    def _parent(self, token: str) -> frozenset[str]:
        if token == DOC:
            return frozenset()
        cached = self._parents.get(token)
        if cached is not None:
            return cached
        if token in _KIND_TOKENS:
            result = frozenset(self.schema.elements) | {DOC}
        elif token == NS:
            result = frozenset(self.schema.elements)
        elif token.startswith("@"):
            name = token[1:]
            if self.schema.exhaustive:
                result = frozenset(
                    element
                    for element, attrs in self.schema.attributes.items()
                    if name in attrs
                )
            else:
                result = frozenset(self.schema.elements)
        elif self.schema.exhaustive:
            owners = {
                parent
                for parent, kids in self.schema.children.items()
                if token in kids
            }
            if token == self.schema.root:
                owners.add(DOC)
            result = frozenset(owners)
        else:
            result = frozenset(self.schema.elements) | {DOC}
        self._parents[token] = result
        return result

    def _attribute(self, token: str) -> frozenset[str]:
        if not _is_element(token):
            return frozenset()
        if self.schema.exhaustive:
            names = self.schema.attributes.get(token, frozenset())
        else:
            names = self.schema.attributes_all
        return frozenset("@" + name for name in names)

    def _descendant_closure(self, token: str) -> frozenset[str]:
        cached = self._descendants.get(token)
        if cached is not None:
            return cached
        reached: set[str] = set()
        frontier = [token]
        while frontier:
            current = frontier.pop()
            for child in self._children(current):
                if child not in reached:
                    reached.add(child)
                    frontier.append(child)
        result = frozenset(reached)
        self._descendants[token] = result
        return result

    def _ancestor_closure(self, token: str) -> frozenset[str]:
        cached = self._ancestors.get(token)
        if cached is not None:
            return cached
        reached: set[str] = set()
        frontier = [token]
        while frontier:
            current = frontier.pop()
            for parent in self._parent(current):
                if parent not in reached:
                    reached.add(parent)
                    frontier.append(parent)
        result = frozenset(reached)
        self._ancestors[token] = result
        return result

    # -- node tests ----------------------------------------------------------

    def _filter_test(
        self, axis: Axis, test: NodeTest, tokens: frozenset[str]
    ) -> frozenset[str]:
        kind = test.kind
        if kind is NodeTestKind.NODE:
            return tokens
        if kind is NodeTestKind.TEXT:
            return tokens & {TEXT}
        if kind is NodeTestKind.COMMENT:
            return tokens & {COMMENT}
        if kind is NodeTestKind.PROCESSING_INSTRUCTION:
            # PI targets are not in the schema: keep any PI token.
            return tokens & {PI}
        if axis is Axis.ATTRIBUTE:
            if kind is NodeTestKind.ANY:
                return frozenset(t for t in tokens if t.startswith("@"))
            return tokens & {"@" + test.name}
        if axis is Axis.NAMESPACE:
            return tokens & {NS}
        if kind is NodeTestKind.ANY:
            return frozenset(t for t in tokens if _is_element(t))
        return tokens & {test.name}

    # -- predicate analysis --------------------------------------------------

    def _predicate_must_fail(self, expr: XPathNode, context: frozenset[str]) -> bool:
        """True only when the predicate is false for *every* context node."""
        if isinstance(expr, LocationPath):
            return not self._walk_path(expr, context, [])
        if isinstance(expr, UnionExpr):
            return all(
                self._predicate_must_fail(branch, context) for branch in expr.branches
            )
        if isinstance(expr, AndExpr):
            return self._predicate_must_fail(
                expr.left, context
            ) or self._predicate_must_fail(expr.right, context)
        if isinstance(expr, OrExpr):
            return self._predicate_must_fail(
                expr.left, context
            ) and self._predicate_must_fail(expr.right, context)
        if isinstance(expr, Comparison):
            return self._comparison_must_fail(expr, context)
        if isinstance(expr, NumberLiteral):
            # [n] is position() = n: impossible for n < 1 or fractional n.
            return expr.value < 1 or expr.value != int(expr.value)
        if isinstance(expr, StringLiteral):
            return expr.value == ""
        if isinstance(expr, FunctionCall):
            return expr.name == "false" and not expr.args
        # not(), arithmetic, filter expressions: unknown — assume it can hold.
        return False

    def _comparison_must_fail(self, expr: Comparison, context: frozenset[str]) -> bool:
        # A comparison against an empty node-set is false in XPath 1.0,
        # whatever the operator — even '!='.
        for side in (expr.left, expr.right):
            if isinstance(side, LocationPath) and not self._walk_path(
                side, context, []
            ):
                return True
        left = self._literal_value(expr.left)
        right = self._literal_value(expr.right)
        if left is None or right is None:
            return False
        return not _compare_literals(expr.op, left, right)

    @staticmethod
    def _literal_value(node: XPathNode) -> str | float | None:
        if isinstance(node, StringLiteral):
            return node.value
        if isinstance(node, NumberLiteral):
            return node.value
        if isinstance(node, Negate):
            operand = SatisfiabilityAnalyzer._literal_value(node.operand)
            if isinstance(operand, float):
                return -operand
        return None


def _to_number(value: str | float) -> float:
    if isinstance(value, float):
        return value
    try:
        return float(value.strip())
    except ValueError:
        return float("nan")


def _compare_literals(op: str, left: str | float, right: str | float) -> bool:
    """XPath 1.0 comparison of two constants."""
    if op in ("=", "!="):
        if isinstance(left, str) and isinstance(right, str):
            equal = left == right
        else:
            lnum, rnum = _to_number(left), _to_number(right)
            equal = lnum == rnum  # NaN compares unequal, as required
        return equal if op == "=" else not equal
    lnum, rnum = _to_number(left), _to_number(right)
    if op == "<":
        return lnum < rnum
    if op == "<=":
        return lnum <= rnum
    if op == ">":
        return lnum > rnum
    if op == ">=":
        return lnum >= rnum
    return True  # unknown operator: never claim failure


def analyze(tree: XPathNode, schema: SchemaGraph) -> SatReport:
    """One-shot convenience wrapper around :class:`SatisfiabilityAnalyzer`."""
    return SatisfiabilityAnalyzer(schema).analyze(tree)
