"""Static analysis for VAMANA: plan verification, satisfiability, linting.

Three layers, all ahead of execution:

* :mod:`repro.analysis.plan_verifier` — per-operator property inference
  (ordering, duplicate-freedom, context dependency, guard threading) and
  structural invariants over :class:`~repro.algebra.plan.QueryPlan`; the
  optimizer's rewrite gate.
* :mod:`repro.analysis.satisfiability` — schema-graph evaluation of a
  compiled XPath tree; proves queries statically empty so the engine can
  answer without touching the store.
* :mod:`repro.analysis.lint` — a stdlib-``ast`` linter for repo-wide
  conventions (guard checkpointing, exception hygiene, persistence error
  conversion, injectable clocks); ``python -m repro.analysis.lint``.
"""

from repro.analysis.plan_verifier import (
    OperatorProperties,
    PlanVerifier,
    describe_properties,
    infer_properties,
    verify_plan,
)
from repro.analysis.satisfiability import (
    SatisfiabilityAnalyzer,
    SatReport,
    SchemaGraph,
    analyze,
    names_only_schema,
    xmark_schema,
)
# NOTE: repro.analysis.lint is intentionally not imported here — it is an
# executable module (``python -m repro.analysis.lint``), and importing it
# from the package root would make runpy warn about double execution.

__all__ = [
    "OperatorProperties",
    "PlanVerifier",
    "describe_properties",
    "infer_properties",
    "verify_plan",
    "SatisfiabilityAnalyzer",
    "SatReport",
    "SchemaGraph",
    "analyze",
    "names_only_schema",
    "xmark_schema",
]
