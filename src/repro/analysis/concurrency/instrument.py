"""Eraser-style dynamic lockset race detection for the serving stack.

The classic Eraser algorithm (Savage et al., TOCS 1997), reproduced over
Python threads:

* every lock acquire/release is intercepted so the detector knows each
  thread's **held set** at any instant;
* every *watched field* of an instrumented object carries a shadow state
  moving ``virgin → exclusive → shared → shared-modified``: the creating
  thread owns it exclusively (initialization needs no locks), the first
  access from a second thread starts lockset refinement, and writes in
  the shared state make it shared-modified;
* the field's **candidate lockset** starts as "all locks" and is
  intersected with the accessing thread's held set on every post-
  exclusive access.  A shared-modified field whose candidate set drains
  to the empty set has no lock that consistently protects it — a data
  race is reported with the access locations that drained it.

Instrumentation is deliberately surgical: :meth:`RaceDetector.
instrument_serving` swaps each serving/engine module's ``threading``
*binding* for a proxy whose ``Lock``/``RLock`` factories return wrapped
locks, and rebinds the module-level classes (``StoreVersion``,
``VamanaEngine``, ``SnapshotManager``, …) to traced subclasses — so
every object the chaos swarm creates is shadowed from birth, while the
stdlib's own internals (``concurrent.futures`` conditions, queues) stay
untouched.  Overhead is one dict lookup per watched-field access; the
whole thing is test-harness machinery, never imported on the serving
hot path.

:class:`NullLock` is the mutation-testing accomplice: substituting it
for a real lock "deletes" that lock at runtime, and the detector must
kill the mutant (see ``tests/analysis/test_concurrency_dynamic.py``).
"""

from __future__ import annotations

import sys
import threading as _threading
from contextlib import contextmanager
from dataclasses import dataclass, field

_REAL_LOCK = _threading.Lock
_REAL_RLOCK = _threading.RLock

VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared-modified"

#: Watched fields per serving/engine class (mutable shared state only —
#: immutable config attributes would just waste shadow slots).
WATCHED_FIELDS = {
    "StoreVersion": ("refcount", "retired"),
    "SnapshotManager": (
        "_current", "acquires", "releases", "publishes", "noop_publishes",
        "failed_publishes", "reclaimed",
    ),
    "AdmissionController": (
        "_queued", "_active", "_service_ewma_s", "admitted",
        "queue_rejections", "cost_rejections", "degraded",
    ),
    "ServerMetrics": (
        "submitted", "completed", "failed", "shed", "degraded", "partial",
        "timeouts", "deadline_expired_in_queue", "worker_crashes",
        "release_faults", "updates_applied", "update_failures",
        "queued_s_total", "service_s_total",
    ),
    "VamanaEngine": (
        "_plan_cache", "_plan_cache_epoch", "plan_cache_hits",
        "plan_cache_misses", "_schema", "_schema_epoch", "_sat_cache",
    ),
    "QueryServer": ("_closed",),
}


class NullLock:
    """A lock-shaped object that never locks — the dynamic mutant's knife."""

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return True

    def release(self) -> None:
        return None

    def __enter__(self) -> "NullLock":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def locked(self) -> bool:
        return False


@dataclass(frozen=True)
class RaceReport:
    """One field whose candidate lockset drained to the empty set."""

    cls: str
    field: str
    state: str
    locations: tuple

    def render(self) -> str:
        where = ", ".join(self.locations) if self.locations else "?"
        return (
            f"{self.cls}.{self.field}: lockset drained to {{}} in state "
            f"{self.state} (accessed at {where})"
        )


class _Shadow:
    __slots__ = ("state", "owner", "lockset", "locations", "reported")

    def __init__(self, owner: int):
        self.state = EXCLUSIVE
        self.owner = owner
        self.lockset: frozenset | None = None  # None = "all locks" (top)
        self.locations: list[str] = []
        self.reported = False


class InstrumentedLock:
    """Delegates to a real ``threading.Lock`` and tracks the holder."""

    _reentrant = False

    def __init__(self, detector: "RaceDetector", inner=None):
        self._inner = inner if inner is not None else _REAL_LOCK()
        self._detector = detector

    def acquire(self, blocking: bool = True, timeout: float = -1):
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._detector._push(self)
        return acquired

    def release(self) -> None:
        # Drop from the held set *before* the real release: a window
        # where the lock is free but still credited would hide races.
        self._detector._pop(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class InstrumentedRLock(InstrumentedLock):
    """Reentrant variant: the held set counts the outermost acquire once."""

    _reentrant = True

    def __init__(self, detector: "RaceDetector", inner=None):
        super().__init__(detector, inner if inner is not None else _REAL_RLOCK())


class _ThreadingProxy:
    """A stand-in for the ``threading`` module inside instrumented modules.

    Only ``Lock``/``RLock`` construction is intercepted; everything else
    (``Thread``, ``local``, ``current_thread``, …) passes through to the
    real module, so instrumented code behaves identically apart from the
    bookkeeping.
    """

    def __init__(self, detector: "RaceDetector"):
        self._detector = detector

    def Lock(self):
        return InstrumentedLock(self._detector)

    def RLock(self):
        return InstrumentedRLock(self._detector)

    def __getattr__(self, name):
        return getattr(_threading, name)


class RaceDetector:
    """Held-set tracking plus the Eraser shadow state machine."""

    def __init__(self, max_locations: int = 4):
        self._lock = _REAL_LOCK()  # guards shadows and reports (leaf lock)
        self._held = _threading.local()
        self._shadows: dict[tuple[int, str], _Shadow] = {}
        self._anchors: dict[int, object] = {}  # keep ids stable while traced
        self._traced_types: dict[tuple, type] = {}
        self._max_locations = max_locations
        self.reports: list[RaceReport] = []

    # -- held-set bookkeeping ------------------------------------------------

    def _held_map(self) -> dict[int, int]:
        held = getattr(self._held, "locks", None)
        if held is None:
            held = {}
            self._held.locks = held
        return held

    def held_ids(self) -> frozenset[int]:
        return frozenset(self._held_map())

    def _push(self, lock) -> None:
        held = self._held_map()
        key = id(lock)
        if lock._reentrant:
            held[key] = held.get(key, 0) + 1
        else:
            held[key] = 1

    def _pop(self, lock) -> None:
        held = self._held_map()
        key = id(lock)
        depth = held.get(key, 0)
        if depth <= 1:
            held.pop(key, None)
        else:
            held[key] = depth - 1

    # -- the Eraser state machine --------------------------------------------

    def on_access(self, obj, cls_name: str, field_name: str, is_write: bool) -> None:
        frame = sys._getframe(2)
        location = f"{frame.f_code.co_filename.rsplit('/', 1)[-1]}:{frame.f_lineno}"
        self._record(
            key=(id(obj), field_name),
            cls_name=cls_name,
            thread=_threading.get_ident(),
            held=self.held_ids(),
            is_write=is_write,
            location=location,
            anchor=obj,
        )

    def _record(
        self,
        key: tuple,
        cls_name: str,
        thread: int,
        held: frozenset,
        is_write: bool,
        location: str,
        anchor: object | None = None,
    ) -> None:
        with self._lock:
            shadow = self._shadows.get(key)
            if shadow is None:
                shadow = _Shadow(owner=thread)
                self._shadows[key] = shadow
                if anchor is not None:
                    self._anchors[key[0]] = anchor
                shadow.locations.append(location)
                return
            if shadow.state == EXCLUSIVE:
                if shadow.owner == thread:
                    return  # initialization/ownership phase: no refinement
                shadow.state = SHARED_MODIFIED if is_write else SHARED
                shadow.lockset = frozenset(held)
            else:
                assert shadow.lockset is not None
                shadow.lockset = shadow.lockset & held
                if is_write and shadow.state == SHARED:
                    shadow.state = SHARED_MODIFIED
            if len(shadow.locations) < self._max_locations:
                shadow.locations.append(location)
            if (
                shadow.state == SHARED_MODIFIED
                and not shadow.lockset
                and not shadow.reported
            ):
                shadow.reported = True
                self.reports.append(RaceReport(
                    cls=cls_name,
                    field=key[1],
                    state=shadow.state,
                    locations=tuple(shadow.locations),
                ))

    def race_count(self) -> int:
        with self._lock:
            return len(self.reports)

    def summaries(self) -> list[str]:
        with self._lock:
            return [report.render() for report in self.reports]

    # -- tracing shared objects ----------------------------------------------

    def trace_type(self, cls: type, fields: tuple) -> type:
        """A subclass of ``cls`` reporting every access to ``fields``.

        Works for ``__slots__`` classes too (the subclass adds no state).
        The detector reads nothing off the instance inside the callback,
        so tracing cannot recurse.
        """
        cache_key = (cls, fields)
        traced = self._traced_types.get(cache_key)
        if traced is not None:
            return traced
        watched = frozenset(fields)
        detector = self
        name = cls.__name__

        class Traced(cls):  # type: ignore[misc, valid-type]
            __slots__ = ()

            def __getattribute__(self, attr):
                if attr in watched:
                    detector.on_access(self, name, attr, is_write=False)
                return cls.__getattribute__(self, attr)

            def __setattr__(self, attr, value):
                if attr in watched:
                    detector.on_access(self, name, attr, is_write=True)
                cls.__setattr__(self, attr, value)

        Traced.__name__ = f"Traced{name}"
        Traced.__qualname__ = f"Traced{name}"
        self._traced_types[cache_key] = Traced
        return Traced

    # -- wiring into the serving modules -------------------------------------

    @contextmanager
    def instrument_serving(self):
        """Patch the serving/engine modules for the ``with`` block's extent.

        * each module's ``threading`` global becomes a proxy handing out
          instrumented locks (objects built inside the block get them);
        * module-level class bindings are replaced with traced subclasses
          so instances are shadowed from construction on.

        Everything is restored on exit; objects created inside the block
        keep working afterwards (wrappers hold their own references).
        """
        import repro.engine.database as database_mod
        import repro.engine.engine as engine_mod
        import repro.mass.pages as pages_mod
        import repro.serving.admission as admission_mod
        import repro.serving.chaos as chaos_mod
        import repro.serving.metrics as metrics_mod
        import repro.serving.server as server_mod
        import repro.serving.snapshot as snapshot_mod

        proxy = _ThreadingProxy(self)
        modules = (
            snapshot_mod, server_mod, admission_mod, metrics_mod,
            chaos_mod, engine_mod, database_mod, pages_mod,
        )
        class_patches = (
            (snapshot_mod, "StoreVersion"),
            (snapshot_mod, "VamanaEngine"),
            (server_mod, "SnapshotManager"),
            (server_mod, "AdmissionController"),
            (server_mod, "ServerMetrics"),
            (chaos_mod, "QueryServer"),
        )
        saved_threading = [(mod, mod.threading) for mod in modules]
        saved_classes = [
            (mod, attr, getattr(mod, attr)) for mod, attr in class_patches
        ]
        try:
            for mod in modules:
                mod.threading = proxy
            for mod, attr, original in saved_classes:
                fields = WATCHED_FIELDS.get(attr)
                if fields:
                    setattr(mod, attr, self.trace_type(original, fields))
            yield self
        finally:
            for mod, original in saved_threading:
                mod.threading = original
            for mod, attr, original in saved_classes:
                setattr(mod, attr, original)
