"""Static lockset and lock-order analysis (VAM007, VAM008, VAM009).

The serving stack's thread safety rests on conventions — "every access
to ``SnapshotManager._current`` holds ``_lock``", "``_write_lock`` is
taken before ``_lock``, never the other way", "nothing blocks while a
lock is held" — that no unit test can see until a rare interleaving
breaks one.  This module infers those conventions from the stdlib
:mod:`ast` and enforces them:

``VAM007`` **guarded-field consistency.**  For every class that owns a
    lock attribute (``self.X = threading.Lock()/RLock()/Condition()``),
    each *mutable* instance field (one written outside ``__init__``) must
    be accessed consistently: if any site holds a class lock, every site
    must (clause A); and in a lock-owning class a mutable field written
    with *no* class lock held at any site is a dropped-lock smell
    (clause B) — exactly what deleting one ``with self._lock:`` produces.
    Exemptions: ``__init__``/``__new__`` (single-threaded construction),
    methods named ``*_locked`` (documented called-with-lock-held
    helpers), lock attributes themselves, ``threading.local()`` fields
    (inherently thread-confined), and lines carrying a ``# race-ok``
    waiver for deliberate benign races.

``VAM008`` **lock-order acyclicity.**  A whole-repo pass collects every
    "acquire Y while holding X" edge — directly from nested ``with``
    statements and interprocedurally through a fixpoint over resolvable
    calls (``self.m()``, ``self.attr.m()`` and ``var.m()`` via
    constructor-based type inference) — and rejects any cycle in the
    resulting graph.  An acyclic acquisition order is deadlock-free;
    a cycle is a deadlock waiting for the right two threads.

``VAM009`` **no blocking under a lock.**  Inside a held-lock region,
    calls that can block indefinitely — ``Future.result``, queue
    ``get``/waits, ``Condition.wait``, thread ``join``, socket I/O,
    ``sleep``, ``SnapshotManager.publish`` — are flagged: they stretch
    the critical section across arbitrary waits and invert the latency
    isolation the admission controller promises.

Scope: files whose path contains a ``serving``, ``engine`` or ``mass``
segment (the packages that actually run multithreaded).  All three rules
run from :mod:`repro.analysis.lint`; VAM007/VAM009 are per-file, VAM008
needs the whole file set and runs from ``lint_paths``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

#: ``threading`` factory names whose result is a lock-like primitive.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})

#: Path segments that place a file in the concurrency-checked packages.
SCOPE_SEGMENTS = frozenset({"serving", "engine", "mass"})

#: Method names exempt from VAM007 (single-threaded or documented
#: called-with-lock-held).
EXEMPT_METHODS = frozenset({"__init__", "__new__", "__del__"})

#: Receiver-method calls that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "appendleft", "popleft",
})

#: Attribute-call names that can block indefinitely, by reason.  ``get``
#: and ``join`` are receiver-gated below to avoid ``dict.get``/``str.join``.
BLOCKING_ATTR_CALLS = {
    "result": "Future.result() waits for another worker",
    "wait": "condition/event wait",
    "wait_for": "condition wait",
    "recv": "socket read",
    "accept": "socket accept",
    "connect": "socket connect",
    "sendall": "socket write",
    "serve_forever": "socket serve loop",
    "sleep": "sleep",
    "publish": "SnapshotManager.publish clones and swaps the store",
    "publish_pinned": "SnapshotManager.publish clones and swaps the store",
}

#: Receiver-name substrings that make ``.get()`` a queue wait.
QUEUE_RECEIVER_HINTS = ("queue", "_q",)

#: Receiver-name substrings that make ``.join()`` a thread join.
JOIN_RECEIVER_HINTS = ("thread", "worker", "pool", "proc")


def _lazy_violation(path: str, line: int, rule: str, message: str):
    # Imported late: repro.analysis.lint imports this module's checks.
    from repro.analysis.lint import LintViolation

    return LintViolation(path, line, rule, message)


def in_scope(path: str) -> bool:
    segments = os.path.normpath(path).split(os.sep)
    return bool(SCOPE_SEGMENTS.intersection(segments))


def waived_lines(source: str) -> frozenset[int]:
    """1-based line numbers carrying a ``# race-ok`` (or noqa) waiver."""
    waived = set()
    for number, text in enumerate(source.splitlines(), start=1):
        if "race-ok" in text or "noqa: VAM00" in text:
            waived.add(number)
    return frozenset(waived)


# -- lock identities -----------------------------------------------------------


@dataclass(frozen=True)
class LockId:
    """One lock the analysis can name: a class attribute or a function local."""

    owner: str  #: class name, or ``module.function`` for local locks
    attr: str

    def render(self) -> str:
        return f"{self.owner}.{self.attr}"


def _is_lock_factory_call(node: ast.expr) -> bool:
    """``threading.Lock()`` / ``Lock()`` style constructor calls."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in LOCK_FACTORIES:
        return True
    return isinstance(func, ast.Name) and func.id in LOCK_FACTORIES


def _is_local_factory_call(node: ast.expr) -> bool:
    """``threading.local()`` — thread-confined storage, exempt everywhere."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "local":
        return True
    return isinstance(func, ast.Name) and func.id == "local"


def _self_assign_target(stmt: ast.stmt) -> str | None:
    """The ``X`` of a single-target ``self.X = ...`` assignment."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _chain_base_field(node: ast.expr) -> str | None:
    """For ``self.a``, ``self.a.b``, ``self.a[k]`` …: the first field ``a``.

    Returns None when the access chain does not bottom out at ``self``.
    """
    first_attr: str | None = None
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            first_attr = current.attr
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            return first_attr if current.id == "self" else None
        else:
            return None


# -- per-class / per-module models ---------------------------------------------


@dataclass
class ClassModel:
    name: str
    path: str
    node: ast.ClassDef
    lock_attrs: dict[str, str] = field(default_factory=dict)  #: attr -> factory
    local_attrs: set[str] = field(default_factory=set)  #: threading.local fields
    ctor_types: dict[str, str] = field(default_factory=dict)  #: attr -> class name
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)


def _class_model(path: str, node: ast.ClassDef) -> ClassModel:
    model = ClassModel(name=node.name, path=path, node=node)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.methods[item.name] = item
            for stmt in ast.walk(item):
                attr = _self_assign_target(stmt)
                if attr is None:
                    continue
                value = stmt.value
                if _is_lock_factory_call(value):
                    func = value.func
                    kind = func.attr if isinstance(func, ast.Attribute) else func.id
                    model.lock_attrs[attr] = kind
                elif _is_local_factory_call(value):
                    model.local_attrs.add(attr)
                elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                    model.ctor_types[attr] = value.func.id
    return model


def _iter_classes(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


# -- the held-set walker -------------------------------------------------------


@dataclass(frozen=True)
class Access:
    field: str
    write: bool
    line: int
    held: frozenset  #: LockIds held at the access


@dataclass(frozen=True)
class AcquireEvent:
    lock: LockId
    held: tuple  #: LockIds already held when this one is entered
    line: int


@dataclass(frozen=True)
class CallEvent:
    node: ast.Call
    held: tuple
    line: int


@dataclass
class FunctionFacts:
    accesses: list = field(default_factory=list)
    acquire_events: list = field(default_factory=list)
    call_events: list = field(default_factory=list)

    @property
    def direct_locks(self) -> set:
        return {event.lock for event in self.acquire_events}


class _HeldWalker:
    """Walks one function body tracking the set of held locks.

    Nested ``def``/``lambda`` bodies are skipped (they run later, on
    whatever thread calls them); comprehensions execute inline and are
    descended into.
    """

    def __init__(self, cls: ClassModel | None, local_locks: dict[str, LockId]):
        self.cls = cls
        self.local_locks = local_locks
        self.facts = FunctionFacts()

    def _resolve_lock(self, expr: ast.expr) -> LockId | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.cls is not None
            and expr.attr in self.cls.lock_attrs
        ):
            return LockId(self.cls.name, expr.attr)
        if isinstance(expr, ast.Name) and expr.id in self.local_locks:
            return self.local_locks[expr.id]
        return None

    def walk(self, stmts, held: tuple = ()) -> FunctionFacts:
        for stmt in stmts:
            self._visit(stmt, held)
        return self.facts

    def _visit(self, node: ast.AST, held: tuple) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            entered: list[LockId] = []
            for item in node.items:
                self._visit(item.context_expr, held + tuple(entered))
                lock = self._resolve_lock(item.context_expr)
                if lock is not None:
                    self.facts.acquire_events.append(
                        AcquireEvent(lock, held + tuple(entered), node.lineno)
                    )
                    entered.append(lock)
            inner = held + tuple(entered)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            field_name = _chain_base_field(node)
            if field_name is not None:
                write = isinstance(node.ctx, (ast.Store, ast.Del))
                self.facts.accesses.append(
                    Access(field_name, write, node.lineno, frozenset(held))
                )
        elif isinstance(node, ast.Call):
            self.facts.call_events.append(CallEvent(node, held, node.lineno))
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                field_name = _chain_base_field(func.value)
                if field_name is not None:
                    self.facts.accesses.append(
                        Access(field_name, True, node.lineno, frozenset(held))
                    )
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)


def _function_local_locks(
    func: ast.FunctionDef, qualifier: str
) -> dict[str, LockId]:
    """``name = threading.Lock()`` locals, excluding nested defs."""
    locks: dict[str, LockId] = {}
    stack = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_lock_factory_call(node.value)
        ):
            name = node.targets[0].id
            locks[name] = LockId(qualifier, name)
        stack.extend(ast.iter_child_nodes(node))
    return locks


def _walk_method(cls: ClassModel, qualifier: str, func) -> FunctionFacts:
    walker = _HeldWalker(cls, _function_local_locks(func, qualifier))
    return walker.walk(func.body)


# -- VAM007: guarded-field consistency -----------------------------------------


def _check_guarded_fields(
    path: str, tree: ast.Module, waived: frozenset[int]
) -> list:
    violations = []
    module = os.path.splitext(os.path.basename(path))[0]
    for node in _iter_classes(tree):
        cls = _class_model(path, node)
        if not cls.lock_attrs:
            continue
        own_locks = {LockId(cls.name, attr) for attr in cls.lock_attrs}
        sites: dict[str, list[Access]] = {}
        for name, func in cls.methods.items():
            if name in EXEMPT_METHODS or name.endswith("_locked"):
                continue
            facts = _walk_method(cls, f"{module}.{name}", func)
            for access in facts.accesses:
                if access.field in cls.lock_attrs or access.field in cls.local_attrs:
                    continue
                if access.line in waived:
                    continue
                held_own = frozenset(access.held & own_locks)
                sites.setdefault(access.field, []).append(
                    Access(access.field, access.write, access.line, held_own)
                )
        for field_name in sorted(sites):
            # One site per source line: ``self.x[k] = v`` records both the
            # subscript store and the inner attribute load — collapse them
            # (a write wins; locksets at one line are identical anyway).
            by_line: dict[int, Access] = {}
            for access in sites[field_name]:
                previous = by_line.get(access.line)
                if previous is None:
                    by_line[access.line] = access
                else:
                    by_line[access.line] = Access(
                        access.field,
                        previous.write or access.write,
                        access.line,
                        previous.held & access.held,
                    )
            accesses = [by_line[line] for line in sorted(by_line)]
            writes = [a for a in accesses if a.write]
            if not writes:
                continue  # effectively immutable after __init__
            locked = [a for a in accesses if a.held]
            unlocked = [a for a in accesses if not a.held]
            if locked and unlocked:
                guard = sorted({lock.render() for a in locked for lock in a.held})
                for access in unlocked:
                    kind = "written" if access.write else "read"
                    violations.append(_lazy_violation(
                        path, access.line, "VAM007",
                        f"field {cls.name}.{field_name} is {kind} without "
                        f"{'/'.join(guard)}, which guards it at "
                        f"line {locked[0].line} (add the lock or a "
                        "'# race-ok' waiver)",
                    ))
            elif not locked:
                for access in writes:
                    violations.append(_lazy_violation(
                        path, access.line, "VAM007",
                        f"mutable field {cls.name}.{field_name} is written "
                        f"with none of the class locks "
                        f"({'/'.join(sorted(cls.lock_attrs))}) held at any "
                        "site — a dropped-lock smell in a lock-owning class",
                    ))
    return violations


# -- VAM009: no blocking calls under a lock ------------------------------------


def _receiver_text(expr: ast.expr) -> str:
    """Dotted-name text of a call receiver, lowercased ('' if opaque)."""
    parts: list[str] = []
    current = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    return ".".join(reversed(parts)).lower()


def _blocking_reason(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return "sleep" if func.id == "sleep" else None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = _receiver_text(func.value)
    if func.attr == "get":
        if any(hint in receiver for hint in QUEUE_RECEIVER_HINTS):
            return "queue wait"
        return None
    if func.attr == "join":
        if any(hint in receiver for hint in JOIN_RECEIVER_HINTS):
            return "thread join"
        return None
    return BLOCKING_ATTR_CALLS.get(func.attr)


def _check_blocking_under_lock(
    path: str, tree: ast.Module, waived: frozenset[int]
) -> list:
    violations = []
    module = os.path.splitext(os.path.basename(path))[0]

    def scan(facts: FunctionFacts, where: str) -> None:
        for event in facts.call_events:
            if not event.held or event.line in waived:
                continue
            reason = _blocking_reason(event.node)
            if reason is None:
                continue
            locks = "/".join(lock.render() for lock in event.held)
            violations.append(_lazy_violation(
                path, event.line, "VAM009",
                f"{where} performs a blocking operation ({reason}) while "
                f"holding {locks}: move the wait outside the critical "
                "section",
            ))

    for node in _iter_classes(tree):
        cls = _class_model(path, node)
        for name, func in cls.methods.items():
            scan(
                _walk_method(cls, f"{module}.{name}", func),
                f"{cls.name}.{name}",
            )
    class_funcs = {
        id(func) for node in _iter_classes(tree) for func in node.body
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for func in tree.body:
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if id(func) in class_funcs:
                continue
            qualifier = f"{module}.{func.name}"
            walker = _HeldWalker(None, _function_local_locks(func, qualifier))
            scan(walker.walk(func.body), func.name)
    return violations


# -- the per-file entry point (VAM007 + VAM009) --------------------------------


def check_concurrency(path: str, tree: ast.Module, source: str) -> list:
    """Per-file concurrency lints; empty outside the scoped packages."""
    if not in_scope(path):
        return []
    waived = waived_lines(source)
    return _check_guarded_fields(path, tree, waived) + _check_blocking_under_lock(
        path, tree, waived
    )


# -- VAM008: whole-repo lock-order graph ---------------------------------------


def _module_name(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


def check_lock_order(files: list) -> list:
    """Reject cycles in the acquires-while-holding graph.

    ``files`` is a list of ``(path, tree, source)`` triples; only files
    in the scoped packages contribute.  Edges come from nested ``with``
    statements directly, and interprocedurally from calls whose callee's
    transitively-acquired lock set is resolvable (same-class methods,
    ``self.attr.m()``/``var.m()`` via constructor type inference,
    same-module functions, and class constructors).
    """
    scoped = [
        (path, tree, source) for path, tree, source in files if in_scope(path)
    ]
    classes: dict[str, ClassModel] = {}
    module_funcs: dict[tuple[str, str], ast.FunctionDef] = {}
    for path, tree, _source in scoped:
        for node in _iter_classes(tree):
            classes.setdefault(node.name, _class_model(path, node))
        class_member_ids = {
            id(item)
            for node in _iter_classes(tree)
            for item in node.body
        }
        for func in tree.body:
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if id(func) not in class_member_ids:
                    module_funcs[(path, func.name)] = func

    def resolve_call(call: ast.Call, cls: ClassModel | None,
                     path: str, local_types: dict[str, str]):
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in classes:
                return ("C", func.id, "__init__")
            if (path, func.id) in module_funcs:
                return ("F", path, func.id)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and cls is not None:
                if func.attr in cls.methods:
                    return ("C", cls.name, func.attr)
                return None
            typename = local_types.get(receiver.id)
            if typename in classes and func.attr in classes[typename].methods:
                return ("C", typename, func.attr)
            return None
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and cls is not None
        ):
            typename = cls.ctor_types.get(receiver.attr)
            if typename in classes and func.attr in classes[typename].methods:
                return ("C", typename, func.attr)
        return None

    def local_var_types(func) -> dict[str, str]:
        types: dict[str, str] = {}
        for stmt in ast.walk(func):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
                and stmt.value.func.id in classes
            ):
                types[stmt.targets[0].id] = stmt.value.func.id
        return types

    # Per-function facts + resolved call targets.
    facts_by_key: dict[tuple, FunctionFacts] = {}
    calls_by_key: dict[tuple, list] = {}
    waived_by_path = {
        path: waived_lines(source) for path, _tree, source in scoped
    }

    def ingest(key, facts: FunctionFacts, cls, path, local_types):
        facts_by_key[key] = facts
        resolved = []
        for event in facts.call_events:
            target = resolve_call(event.node, cls, path, local_types)
            if target is not None:
                resolved.append((target, event.held, event.line))
        calls_by_key[key] = resolved

    for name, cls in classes.items():
        module = _module_name(cls.path)
        for method_name, func in cls.methods.items():
            key = ("C", name, method_name)
            facts = _walk_method(cls, f"{module}.{method_name}", func)
            ingest(key, facts, cls, cls.path, local_var_types(func))
    for (path, func_name), func in module_funcs.items():
        key = ("F", path, func_name)
        qualifier = f"{_module_name(path)}.{func_name}"
        walker = _HeldWalker(None, _function_local_locks(func, qualifier))
        facts = walker.walk(func.body)
        ingest(key, facts, None, path, local_var_types(func))

    # Fixpoint: locks each function may acquire, transitively.
    acquires = {key: set(facts.direct_locks) for key, facts in facts_by_key.items()}
    changed = True
    while changed:
        changed = False
        for key, resolved in calls_by_key.items():
            for target, _held, _line in resolved:
                extra = acquires.get(target, set()) - acquires[key]
                if extra:
                    acquires[key].update(extra)
                    changed = True

    # Edges: held -> acquired, with one witness each.
    edges: dict[LockId, dict[LockId, tuple]] = {}

    def add_edge(source: LockId, dest: LockId, witness: tuple) -> None:
        if source == dest:
            return  # re-entrancy is VAM007/RLock territory, not ordering
        edges.setdefault(source, {}).setdefault(dest, witness)

    key_paths = {}
    for name, cls in classes.items():
        for method_name in cls.methods:
            key_paths[("C", name, method_name)] = cls.path
    for (path, func_name) in module_funcs:
        key_paths[("F", path, func_name)] = path

    for key, facts in facts_by_key.items():
        path = key_paths[key]
        waived = waived_by_path.get(path, frozenset())
        for event in facts.acquire_events:
            if event.line in waived:
                continue
            for held in event.held:
                add_edge(held, event.lock, (path, event.line))
        for target, held, line in calls_by_key[key]:
            if not held or line in waived:
                continue
            for dest in acquires.get(target, ()):
                for source in held:
                    add_edge(source, dest, (path, line))

    # Cycle detection (iterative DFS, each cycle reported once).
    violations = []
    seen_cycles: set[frozenset] = set()
    WHITE, GREY, BLACK = 0, 1, 2
    color = {lock: WHITE for lock in edges}

    def dfs(start: LockId) -> None:
        stack = [(start, iter(edges.get(start, {})))]
        trail = [start]
        color[start] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color.get(child, WHITE) == GREY:
                    cycle = trail[trail.index(child):] + [child]
                    cycle_key = frozenset(cycle)
                    if cycle_key not in seen_cycles:
                        seen_cycles.add(cycle_key)
                        path, line = edges[node][child]
                        rendered = " -> ".join(lock.render() for lock in cycle)
                        violations.append(_lazy_violation(
                            path, line, "VAM008",
                            f"lock-order cycle: {rendered} — two threads "
                            "taking these in opposite orders deadlock; pick "
                            "one global order",
                        ))
                elif color.get(child, WHITE) == WHITE:
                    color[child] = GREY
                    stack.append((child, iter(edges.get(child, {}))))
                    trail.append(child)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                trail.pop()

    for lock in list(edges):
        if color.get(lock, WHITE) == WHITE:
            dfs(lock)
    return violations


def lock_order_edges(files: list) -> dict[str, list[str]]:
    """The acquires-while-holding graph, rendered — for docs and debugging."""
    scoped = [(p, t, s) for p, t, s in files if in_scope(p)]
    # Re-run the edge construction by reusing check_lock_order's machinery
    # is overkill here; a direct nested-with scan covers the common case.
    rendered: dict[str, set] = {}
    for path, tree, _source in scoped:
        for node in _iter_classes(tree):
            cls = _class_model(path, node)
            module = _module_name(path)
            for name, func in cls.methods.items():
                facts = _walk_method(cls, f"{module}.{name}", func)
                for event in facts.acquire_events:
                    for held in event.held:
                        if held != event.lock:
                            rendered.setdefault(held.render(), set()).add(
                                event.lock.render()
                            )
    return {source: sorted(dests) for source, dests in sorted(rendered.items())}
