"""Concurrency correctness suite for the serving stack.

Two prongs guard the code PR 7 made concurrent (and ROADMAP item 2 is
about to make *more* concurrent):

* :mod:`repro.analysis.concurrency.static` — AST lockset inference over
  ``src/repro/serving``, ``engine`` and ``mass``: guarded-field
  consistency (**VAM007**), a whole-repo lock-order graph rejecting
  acquire cycles (**VAM008**), and a no-blocking-under-lock rule
  (**VAM009**).  All three register in :mod:`repro.analysis.lint` and
  are clean on the shipped tree.
* :mod:`repro.analysis.concurrency.instrument` — an Eraser-style dynamic
  lockset race detector: wrapped lock primitives track each thread's
  held set, traced shared objects move through the
  virgin → exclusive → shared → shared-modified shadow states, and any
  field whose candidate lockset drains to the empty set is reported.
  ``run_chaos(race_detect=True)`` and ``python -m repro race`` run the
  seeded chaos swarm under it.

Both prongs are mutation-tested: deleting the engine's plan-cache lock
or the snapshot manager's refcount lock must be killed by VAM007 *and*
by the dynamic detector (see ``tests/analysis/test_concurrency_*``).
"""

from repro.analysis.concurrency.instrument import (
    InstrumentedLock,
    InstrumentedRLock,
    NullLock,
    RaceDetector,
    RaceReport,
)
from repro.analysis.concurrency.static import (
    check_concurrency,
    check_lock_order,
)

__all__ = [
    "InstrumentedLock",
    "InstrumentedRLock",
    "NullLock",
    "RaceDetector",
    "RaceReport",
    "check_concurrency",
    "check_lock_order",
]
