"""VAMANA's cost-driven, rule-based optimizer (Section VI).

One optimization iteration runs three phases:

1. **expression clean-up** (:mod:`repro.optimizer.cleanup`) — merge
   ``self`` steps into their context children and collapse the
   ``descendant-or-self::node()/child::x`` pairs that the ``//``
   abbreviation produces (Figure 5),
2. **cost gathering** — the estimator annotates every operator and sorts
   them by selectivity ratio,
3. **re-writing** — starting from the most selective operator, try the
   transformation library; a rewrite is kept only if the re-estimated plan
   cost strictly drops.

Iterations repeat until no rule improves the plan; because each accepted
rewrite strictly lowers the integer cost figure, the loop always
terminates, and the final plan is never estimated worse than the default —
the paper's "guaranteed to produce a query plan that has the same or
better execution time".
"""

from repro.optimizer.optimizer import Optimizer, OptimizationTrace, optimize_plan
from repro.optimizer.cleanup import cleanup_plan
from repro.optimizer.rules import DEFAULT_RULES, RewriteRule

__all__ = [
    "Optimizer",
    "OptimizationTrace",
    "optimize_plan",
    "cleanup_plan",
    "DEFAULT_RULES",
    "RewriteRule",
]
