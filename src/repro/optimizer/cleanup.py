"""Query clean-up (Section VI-A, Figure 5).

Two normalisations run before every costing pass:

* **self-merge** — ``parent::*/self::person`` becomes ``parent::person``:
  a ``self`` step is a pure filter, so its node test intersects into its
  context child and its predicates append to the child's.
* **descendant collapse** — the parser expands ``//name`` into
  ``descendant-or-self::node()/child::name``; clean-up rewrites that pair
  into the single operator ``descendant::name`` (the paper's ``//::name``
  step).

Both preserve candidate *sets*; they are skipped when positional
predicates would change meaning.
"""

from __future__ import annotations

from repro.model import Axis, NodeTest, NodeTestKind
from repro.algebra.plan import ExistsNode, PathExprNode, PlanNode, QueryPlan, StepNode, UnionNode
from repro.optimizer.util import has_positional_predicates


def intersect_tests(outer: NodeTest, inner: NodeTest) -> NodeTest | None:
    """The node test matched by both, or None if they cannot be merged.

    ``node()`` is the universal test; ``*`` matches any principal-kind
    node; two distinct names are contradictory (the merge would be the
    empty step — clean-up leaves that to execution, which yields nothing
    either way).
    """
    if outer.kind is NodeTestKind.NODE:
        return inner
    if inner.kind is NodeTestKind.NODE:
        return outer
    if outer.kind is NodeTestKind.ANY and inner.kind in (
        NodeTestKind.ANY,
        NodeTestKind.NAME,
    ):
        return inner
    if inner.kind is NodeTestKind.ANY and outer.kind is NodeTestKind.NAME:
        return outer
    if outer == inner:
        return outer
    return None


def cleanup_plan(plan: QueryPlan) -> bool:
    """Apply clean-up rewrites to a fixpoint; returns True if changed."""
    changed = False
    while _cleanup_pass(plan):
        changed = True
    if changed:
        plan.renumber()
    return changed


def _cleanup_pass(plan: QueryPlan) -> bool:
    """One sweep over every context chain in the plan (predicates too)."""
    for node in plan.walk():
        if isinstance(node, UnionNode):
            for index, branch in enumerate(node.branches):
                replacement = _rewrite_step(branch)
                if replacement is not None:
                    node.branches[index] = replacement
                    return True
        elif isinstance(node, PlanNode):
            if _cleanup_chain(node, "context_child"):
                return True
        if isinstance(node, (ExistsNode, PathExprNode)):
            if _cleanup_chain(node, "path"):
                return True
    return False


def _rewrite_step(node) -> StepNode | None:
    if not isinstance(node, StepNode):
        return None
    return _merge_self(node) or _collapse_descendant(node)


def _cleanup_chain(parent, attribute: str) -> bool:
    """Try to rewrite the operator held by ``parent.attribute``."""
    node = getattr(parent, attribute)
    replacement = _rewrite_step(node)
    if replacement is not None:
        setattr(parent, attribute, replacement)
        return True
    return False


def _merge_self(node: StepNode) -> StepNode | None:
    """``child.axis::T1 / self::T2``  →  ``child.axis::(T1 ∩ T2)``."""
    if node.axis is not Axis.SELF:
        return None
    child = node.context_child
    if not isinstance(child, StepNode):
        return None
    if has_positional_predicates(node) or has_positional_predicates(child):
        return None
    merged_test = intersect_tests(child.test, node.test)
    if merged_test is None:
        return None
    merged = StepNode(child.axis, merged_test, context_child=child.context_child)
    merged.predicates = list(child.predicates) + list(node.predicates)
    merged.op_id = child.op_id
    return merged


def _collapse_descendant(node: StepNode) -> StepNode | None:
    """``descendant-or-self::node() / child::T``  →  ``descendant::T``."""
    if node.axis is not Axis.CHILD:
        return None
    child = node.context_child
    if not isinstance(child, StepNode):
        return None
    if child.axis is not Axis.DESCENDANT_OR_SELF:
        return None
    if child.test.kind is not NodeTestKind.NODE:
        return None
    if child.predicates or has_positional_predicates(node):
        return None
    merged = StepNode(Axis.DESCENDANT, node.test, context_child=child.context_child)
    merged.predicates = list(node.predicates)
    merged.op_id = node.op_id
    return merged
