"""The cost-driven optimization loop (Section VI-C).

Per iteration: clean up, estimate, sort operators by selectivity ratio,
and — starting from the most selective — offer each operator to the
transformation library.  A rewrite proposal is re-estimated and kept only
if the whole-plan cost figure strictly drops ("if the transformation
increases the cost … that transformation rule is not considered").  After
a kept rewrite the process of costing and transformation repeats; the
loop ends when a full sweep finds nothing to improve.

Because every kept rewrite strictly lowers an integer cost bounded below
by zero, termination is guaranteed, and the final plan's estimate is
never worse than the default plan's — the basis of the paper's
"optimized plan is never slower" claim, which the benchmarks then verify
against measured work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import (
    BudgetExceededError,
    PlanInvariantError,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.mass.store import MassStore
from repro.algebra.plan import QueryPlan
from repro.analysis.plan_verifier import PlanVerifier
from repro.cost.estimator import CostEstimator, plan_cost
from repro.optimizer.cleanup import cleanup_plan
from repro.optimizer.rules import DEFAULT_RULES, RewriteRule
from repro.optimizer.util import find_by_id


@dataclass
class TraceEntry:
    """One accepted rewrite."""

    iteration: int
    rule: str
    operator: str
    cost_before: int
    cost_after: int
    plan_after: str


@dataclass
class OptimizationTrace:
    """What the optimizer did and what it cost."""

    expression: str = ""
    cleaned: bool = False
    initial_cost: int = 0
    final_cost: int = 0
    entries: list[TraceEntry] = field(default_factory=list)
    iterations: int = 0
    elapsed_seconds: float = 0.0
    rules_considered: int = 0
    rules_rejected: int = 0
    #: Sandboxed rule failures ("rule on operator: error"); the rule was
    #: skipped and optimization continued with the remaining rules.
    rule_failures: list[str] = field(default_factory=list)
    #: Rewrites rejected by the static plan verifier, as typed errors
    #: (each is also summarized on :attr:`rule_failures`).
    invariant_errors: list[PlanInvariantError] = field(default_factory=list)
    #: Set when the whole optimization pass died and the engine fell back
    #: to the default plan.
    failure: str | None = None

    @property
    def improved(self) -> bool:
        return self.final_cost < self.initial_cost

    def describe(self) -> str:
        lines = [
            f"optimization of {self.expression!r}",
            f"  cleaned: {self.cleaned}; iterations: {self.iterations}; "
            f"cost {self.initial_cost} -> {self.final_cost}; "
            f"{self.elapsed_seconds * 1000:.2f} ms",
        ]
        if self.failure is not None:
            lines.append(f"  FAILED ({self.failure}); default plan used")
        for entry in self.entries:
            lines.append(
                f"  [{entry.iteration}] {entry.rule} on {entry.operator}: "
                f"{entry.cost_before} -> {entry.cost_after}"
            )
        if not self.entries and self.failure is None:
            lines.append("  (no transformation improved the plan)")
        for failed in self.rule_failures:
            lines.append(f"  skipped failing rule: {failed}")
        return "\n".join(lines)


class Optimizer:
    """Greedy, selectivity-ordered rule application with cost gating."""

    def __init__(
        self,
        store: MassStore,
        rules: tuple[RewriteRule, ...] = DEFAULT_RULES,
        max_iterations: int = 32,
        verify: bool = True,
        validate=None,
    ):
        self.store = store
        self.rules = rules
        self.max_iterations = max_iterations
        self.estimator = CostEstimator(store)
        #: The static verification gate of :mod:`repro.analysis`: every
        #: proposed rewrite must preserve the verified plan invariants
        #: before its cost is even considered.  ``verify=False`` disables
        #: the gate (used by tests that study the unguarded behaviour).
        #: ``validate`` adds the opt-in *dynamic* gate: a differential
        #: oracle (``discrepancies(before, after, rule) -> list[str]``,
        #: e.g. :class:`repro.analysis.tv.oracle.DifferentialOracle`)
        #: that executes both plans and rejects any rewrite whose result
        #: sequence changes.  Expensive — meant for validation runs, not
        #: the production query path.
        self.verifier = (
            PlanVerifier(oracle=validate) if verify or validate is not None else None
        )

    def optimize(self, plan: QueryPlan) -> tuple[QueryPlan, OptimizationTrace]:
        """Optimize a (default) plan; the input plan is not mutated."""
        started = time.perf_counter()
        trace = OptimizationTrace(expression=plan.expression)
        current = plan.clone()
        trace.cleaned = cleanup_plan(current)
        self.estimator.estimate(current)
        current_cost = plan_cost(current)
        trace.initial_cost = current_cost

        for iteration in range(1, self.max_iterations + 1):
            trace.iterations = iteration
            improved = self._improve_once(current, current_cost, iteration, trace)
            if improved is None:
                break
            current, current_cost = improved
        trace.final_cost = current_cost
        trace.elapsed_seconds = time.perf_counter() - started
        return current, trace

    def _improve_once(
        self,
        plan: QueryPlan,
        current_cost: int,
        iteration: int,
        trace: OptimizationTrace,
    ) -> tuple[QueryPlan, int] | None:
        """One sweep of phase 3; returns the improved plan or None."""
        ordered = self.estimator.ordered_list(plan)
        for entry in ordered:
            for rule in self.rules:
                # A buggy rewrite rule must not kill the query: any
                # exception from matching or applying it is logged on the
                # trace and the rule is skipped — the plan under
                # optimization is never the clone the rule corrupted.
                # Interrupts and query-guard violations are *not* rule
                # bugs: they must abort the whole optimization, so the
                # sandbox re-raises them.
                try:
                    if not rule.matches(plan, entry.node):
                        continue
                except (
                    KeyboardInterrupt,
                    QueryTimeoutError,
                    BudgetExceededError,
                    QueryCancelledError,
                ):
                    raise
                except Exception as error:  # noqa: BLE001 - deliberate sandbox
                    trace.rule_failures.append(
                        f"{rule.name} matching {entry.node.describe()}: "
                        f"{type(error).__name__}: {error}"
                    )
                    continue
                trace.rules_considered += 1
                candidate = plan.clone()
                target = find_by_id(candidate, entry.node.op_id)
                if target is None:
                    continue
                try:
                    rule.apply(candidate, target)
                    cleanup_plan(candidate)
                    if self.verifier is not None:
                        self.verifier.check_rewrite(plan, candidate, rule.name)
                    self.estimator.estimate(candidate)
                    candidate_cost = plan_cost(candidate)
                except (
                    KeyboardInterrupt,
                    QueryTimeoutError,
                    BudgetExceededError,
                    QueryCancelledError,
                ):
                    raise
                except PlanInvariantError as error:
                    trace.invariant_errors.append(error)
                    trace.rule_failures.append(
                        f"{rule.name} on {entry.node.describe()}: "
                        f"PlanInvariantError: {error}"
                    )
                    continue
                except Exception as error:  # noqa: BLE001 - deliberate sandbox
                    trace.rule_failures.append(
                        f"{rule.name} on {entry.node.describe()}: "
                        f"{type(error).__name__}: {error}"
                    )
                    continue
                if candidate_cost >= current_cost:
                    trace.rules_rejected += 1
                    continue
                trace.entries.append(
                    TraceEntry(
                        iteration=iteration,
                        rule=rule.name,
                        operator=entry.node.describe(),
                        cost_before=current_cost,
                        cost_after=candidate_cost,
                        plan_after=candidate.explain(costs=False),
                    )
                )
                return candidate, candidate_cost
        return None


def optimize_plan(
    plan: QueryPlan, store: MassStore, rules: tuple[RewriteRule, ...] = DEFAULT_RULES
) -> tuple[QueryPlan, OptimizationTrace]:
    """Convenience wrapper: optimize ``plan`` against ``store``."""
    return Optimizer(store, rules).optimize(plan)
