"""Plan-navigation helpers shared by the clean-up pass and rewrite rules."""

from __future__ import annotations

from repro.algebra.plan import (
    BinaryPredicateNode,
    ExprNode,
    FunctionNode,
    NegateNode,
    NumberNode,
    PlanBase,
    PlanNode,
    QueryPlan,
    StepNode,
)


def find_by_id(plan: QueryPlan, op_id: int) -> PlanBase | None:
    """Locate the operator with a given id (ids survive ``clone``)."""
    for node in plan.walk():
        if node.op_id == op_id:
            return node
    return None


def context_path(plan: QueryPlan) -> list[PlanNode]:
    """The plan's context path, outermost (root's child) first.

    These are the operators whose leaf receives the document root from
    the execution engine — the only operators the context-sensitive
    rewrites may touch (predicate-path leaves get per-tuple contexts).
    """
    path: list[PlanNode] = []
    node = plan.root.context_child
    while node is not None:
        path.append(node)
        node = node.context_child
    return path


def on_context_path(plan: QueryPlan, node: PlanNode) -> bool:
    return any(candidate is node for candidate in context_path(plan))


def context_parent(plan: QueryPlan, node: PlanNode) -> PlanNode | None:
    """The operator whose ``context_child`` is ``node`` (root included)."""
    if plan.root.context_child is node:
        return plan.root
    for candidate in plan.walk():
        if isinstance(candidate, PlanNode) and candidate.context_child is node:
            return candidate
    return None


_NUMERIC_FUNCTIONS = frozenset(
    {"position", "last", "count", "string-length", "sum", "number",
     "floor", "ceiling", "round"}
)


def is_positional(expr: ExprNode) -> bool:
    """True if a predicate's meaning depends on candidate order.

    A predicate is positional when it mentions ``position()``/``last()``
    anywhere, or when its *top level* can evaluate to a number (XPath's
    ``[3]`` ≡ ``[position() = 3]`` rule).  A number nested inside a
    comparison (``[price > 5]``) is an ordinary boolean predicate and must
    not block rewrites.
    """
    if _mentions_position(expr):
        return True
    if isinstance(expr, (NumberNode, NegateNode)):
        return True
    if isinstance(expr, BinaryPredicateNode) and expr.op in ("+", "-", "*", "div", "mod"):
        return True
    if isinstance(expr, FunctionNode) and expr.name in _NUMERIC_FUNCTIONS:
        return True
    return False


def _mentions_position(expr: ExprNode) -> bool:
    if isinstance(expr, FunctionNode) and expr.name in ("position", "last"):
        return True
    for child in expr.children():
        if isinstance(child, ExprNode) and _mentions_position(child):
            return True
        if isinstance(child, PlanNode) and _plan_mentions_position(child):
            return True
    return False


def _plan_mentions_position(node: PlanNode) -> bool:
    for predicate in node.predicates:
        if _mentions_position(predicate):
            return True
    child = node.context_child
    return child is not None and _plan_mentions_position(child)


def has_positional_predicates(node: PlanNode) -> bool:
    return any(is_positional(predicate) for predicate in node.predicates)


def step_on_context_path_is_document_leaf(plan: QueryPlan, node: PlanNode) -> bool:
    """True if ``node`` is the context-path leaf (its context is the root)."""
    if not isinstance(node, StepNode) and node.context_child is not None:
        return False
    path = context_path(plan)
    return bool(path) and path[-1] is node and node.context_child is None
