"""Selective-step push-down (Figure 11).

Pattern::

    φ(child::B)  ←ctx—  φ(descendant[-or-self]::A)   (context-path leaf)

rewrites to::

    φ(descendant::B)[ ξ( φ(parent::A)[A's predicates] ) ]

(and the ``descendant::B`` / ``ancestor::A`` variant), making the *most
selective* node test drive the index scan: ``//person[child::name]/address``
becomes ``//address[parent::person[child::name]]``, which reads 1256
addresses instead of 2550 persons on the paper's 10 MB document — the
"at least 40%" fetch reduction quoted in Section VIII.

Chained paths optimise in multiple optimizer iterations: each application
leaves a new context-path leaf for the next one.
"""

from __future__ import annotations

from repro.model import Axis, NodeTestKind
from repro.algebra.plan import ExistsNode, PlanBase, QueryPlan, StepNode
from repro.optimizer.rules.base import RewriteRule
from repro.optimizer.util import find_by_id, has_positional_predicates, on_context_path

_PUSHABLE_AXES = {Axis.CHILD: Axis.PARENT, Axis.DESCENDANT: Axis.ANCESTOR}
_DOWN_LEAF_AXES = frozenset({Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF})


class PredicatePushdownRule(RewriteRule):
    name = "predicate-pushdown"
    paper_ref = "Figure 11 (optimized plan of Q1)"

    def matches(self, plan: QueryPlan, node: PlanBase) -> bool:
        if not isinstance(node, StepNode) or node.axis not in _PUSHABLE_AXES:
            return False
        if node.test.kind is NodeTestKind.NODE:
            return False  # descendant::node() would re-match everything
        leaf = node.context_child
        if not isinstance(leaf, StepNode) or leaf.context_child is not None:
            return False
        if leaf.axis not in _DOWN_LEAF_AXES:
            return False
        if leaf.test.kind is NodeTestKind.NODE:
            # The inverted probe (parent::node()/ancestor::node()) would
            # also match the document node, which the original leaf's
            # descendant axis excluded.
            return False
        if not on_context_path(plan, node):
            return False
        if has_positional_predicates(node) or has_positional_predicates(leaf):
            return False
        return True

    def apply(self, plan: QueryPlan, node: PlanBase) -> None:
        step = find_by_id(plan, node.op_id)
        assert isinstance(step, StepNode)
        leaf = step.context_child
        assert isinstance(leaf, StepNode)
        probe_axis = _PUSHABLE_AXES[step.axis]
        probe = StepNode(probe_axis, leaf.test)
        probe.predicates = list(leaf.predicates)
        step.axis = Axis.DESCENDANT
        step.context_child = None
        step.predicates = [ExistsNode(probe)] + step.predicates
        plan.renumber()
