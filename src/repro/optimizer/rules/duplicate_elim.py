"""The duplicate-elimination rewrite (the paper's Q2 example, Section VIII).

Pattern::

    φ(ancestor::B)  ←ctx—  φ(child::A)  ←ctx—  X

rewrites to::

    φ(ancestor-or-self::B)  ←ctx—  X[ ξ( φ(child::A) ) ]

For every child ``a`` of ``x``: ``ancestor(a) = {x} ∪ ancestor(x) =
ancestor-or-self(x)``, so the rewrite preserves the result *set* exactly
while the ancestor step now receives one tuple per qualifying ``x``
instead of one per child — that is how
``//watches/watch/ancestor::person`` becomes
``//watches[watch]/ancestor::person`` in the paper.  Because the pipeline
would otherwise emit one (duplicate) person per watch, the paper applies
this "only when duplicate elimination is desired"; the optimizer mirrors
that with its ``distinct_output`` flag.
"""

from __future__ import annotations

from repro.model import Axis
from repro.algebra.plan import ExistsNode, PlanBase, QueryPlan, StepNode
from repro.optimizer.rules.base import RewriteRule
from repro.optimizer.util import find_by_id, has_positional_predicates, on_context_path


class DuplicateEliminationRule(RewriteRule):
    name = "duplicate-elimination"
    paper_ref = "Section VIII (Q2 discussion)"

    #: This rewrite changes tuple multiplicity, so it is only valid under
    #: node-set (distinct) output semantics.
    requires_distinct = True

    def matches(self, plan: QueryPlan, node: PlanBase) -> bool:
        if not isinstance(node, StepNode) or node.axis is not Axis.ANCESTOR:
            return False
        middle = node.context_child
        if not isinstance(middle, StepNode) or middle.axis is not Axis.CHILD:
            return False
        if middle.context_child is None:
            return False  # need an X step to carry the exist predicate
        if not on_context_path(plan, node):
            return False
        if not plan.root.distinct:
            return False
        if has_positional_predicates(node) or has_positional_predicates(middle):
            return False
        return True

    def apply(self, plan: QueryPlan, node: PlanBase) -> None:
        step = find_by_id(plan, node.op_id)
        assert isinstance(step, StepNode)
        middle = step.context_child
        assert isinstance(middle, StepNode)
        carrier = middle.context_child
        assert carrier is not None
        probe = StepNode(Axis.CHILD, middle.test)
        probe.predicates = list(middle.predicates)
        carrier.predicates = carrier.predicates + [ExistsNode(probe)]
        step.axis = Axis.ANCESTOR_OR_SELF
        step.context_child = carrier
        plan.renumber()
