"""The transformation library.

Each rule is an equivalence rewrite over physical plans, adapted from the
"XPath looking forward" rule set the paper cites, specialised to VAMANA's
index-centric algebra:

* :class:`ReverseAxisRule` — Figure 8: ``descendant::A/parent::B`` becomes
  ``descendant::B[child::A]`` (and the ancestor variants), replacing an
  up-navigation over many tuples with an index-driven scan plus an
  existence probe.
* :class:`PredicatePushdownRule` — Figure 11: pushes a selective step to
  the front of the plan, turning its former context chain into a nested
  exist predicate (``//person[child::name]/address`` →
  ``//address[parent::person[child::name]]``).
* :class:`ValueIndexRule` — Figure 9: turns a ``text() = 'literal'``
  predicate into a ``value::'literal'`` leaf step over the value index
  followed by a ``parent`` step.
* :class:`DuplicateEliminationRule` — the Q2 rewrite:
  ``//watches/watch/ancestor::person`` becomes
  ``//watches[watch]/ancestor-or-self::person`` when set semantics allow
  it, shrinking the tuple stream feeding the ancestor step.
* :class:`PathFusionRule` — whole-query compilation (SXSI): a predicate-free
  chain of child/descendant/self steps ending at the context-path leaf
  becomes one ``FusedPathScan`` automaton evaluated in a single
  document-order node-index pass.

Rules only *propose* plans; the optimizer keeps a proposal when the
re-estimated cost strictly improves.
"""

from repro.optimizer.rules.base import RewriteRule
from repro.optimizer.rules.reverse_axis import ReverseAxisRule
from repro.optimizer.rules.pushdown import PredicatePushdownRule
from repro.optimizer.rules.value_index import ValueIndexRule
from repro.optimizer.rules.duplicate_elim import DuplicateEliminationRule
from repro.optimizer.rules.fusion import PathFusionRule

DEFAULT_RULES: tuple[RewriteRule, ...] = (
    ValueIndexRule(),
    ReverseAxisRule(),
    PredicatePushdownRule(),
    DuplicateEliminationRule(),
    PathFusionRule(),
)

__all__ = [
    "RewriteRule",
    "ReverseAxisRule",
    "PredicatePushdownRule",
    "ValueIndexRule",
    "DuplicateEliminationRule",
    "PathFusionRule",
    "DEFAULT_RULES",
]
