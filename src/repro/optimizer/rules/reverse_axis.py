"""The reverse-axis rewrite (Figure 8).

Pattern::

    φ(up::B)  ←ctx—  φ(descendant[-or-self]::A)   (context-path leaf)

with ``up`` ∈ {parent, ancestor, ancestor-or-self}, rewrites to::

    φ(descendant::B)[ ξ( φ(inverse(up)::A) ) ]    (context-path leaf)

i.e. ``descendant::name/parent::person`` → ``//person[child::name]``.
The leaf's own predicates travel into the new existence path.

Soundness rests on the leaf's context being the document node: every
candidate B reachable as an ancestor/parent of a document descendant is
itself a document descendant (or the document, which only a ``node()``
test could match — that case keeps ``descendant-or-self``).
"""

from __future__ import annotations

from repro.model import Axis, NodeTestKind
from repro.algebra.plan import ExistsNode, PlanBase, QueryPlan, StepNode
from repro.optimizer.rules.base import RewriteRule
from repro.optimizer.util import find_by_id, has_positional_predicates, on_context_path

_UP_AXES = frozenset({Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF})
_DOWN_LEAF_AXES = frozenset({Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF})


class ReverseAxisRule(RewriteRule):
    name = "reverse-axis"
    paper_ref = "Figure 8 (optimization of Q1)"

    def matches(self, plan: QueryPlan, node: PlanBase) -> bool:
        if not isinstance(node, StepNode) or node.axis not in _UP_AXES:
            return False
        if node.axis.inverse is None:
            return False
        leaf = node.context_child
        if not isinstance(leaf, StepNode) or leaf.context_child is not None:
            return False
        if leaf.axis not in _DOWN_LEAF_AXES:
            return False
        if not on_context_path(plan, node):
            return False
        if has_positional_predicates(node) or has_positional_predicates(leaf):
            return False
        return True

    def apply(self, plan: QueryPlan, node: PlanBase) -> None:
        step = find_by_id(plan, node.op_id)
        assert isinstance(step, StepNode)
        leaf = step.context_child
        assert isinstance(leaf, StepNode)
        inverse_axis = step.axis.inverse
        assert inverse_axis is not None
        probe = StepNode(inverse_axis, leaf.test)
        probe.predicates = list(leaf.predicates)
        new_axis = (
            Axis.DESCENDANT_OR_SELF
            if step.test.kind is NodeTestKind.NODE
            else Axis.DESCENDANT
        )
        step.axis = new_axis
        step.context_child = None
        step.predicates = [ExistsNode(probe)] + step.predicates
        plan.renumber()
