"""Whole-query path fusion: collapse a step chain into one automaton scan.

Pattern::

    φ(axis_n::T_n)  ←ctx—  …  ←ctx—  φ(axis_1::T_1)   (context-path leaf)

with every axis forward-structural (child / descendant[-or-self] / self)
and no predicates anywhere on the chain, rewrites to the single operator::

    FPS[axis_1::T_1 / … / axis_n::T_n]

which compiles the chain to an NFA over (depth, kind, name) events and
evaluates it in one document-order scan of the node index (see
:mod:`repro.algebra.fused`).  This is the whole-query optimization of
SXSI applied to VAMANA's algebra: instead of one index scan per location
step — each re-walking the subtree entries of every context tuple — the
chain costs a single pass, and subtrees the automaton proves dead are
skipped wholesale.

The rewrite changes multiset cardinalities (``//a//b`` emits a nested
``b`` once, not once per enclosing ``a``), so it requires the plan root's
``distinct`` node-set semantics.  Like every rule, it only *proposes*:
the optimizer keeps the fused plan when the estimator's entries-touched
figure strictly drops, so selective name-indexed chains (whose per-step
scans are cheaper than one full pass) stay unfused.
"""

from __future__ import annotations

from repro.model import Axis
from repro.algebra.plan import FusedPathScanNode, PlanBase, QueryPlan, StepNode
from repro.optimizer.rules.base import RewriteRule
from repro.optimizer.util import context_parent, find_by_id, on_context_path

#: The axes a fused chain may contain (forward, structural, downward).
_FUSABLE_AXES = frozenset(
    {Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.SELF}
)


def _fusable_step(node) -> bool:
    return (
        isinstance(node, StepNode)
        and node.axis in _FUSABLE_AXES
        and not node.predicates
    )


class PathFusionRule(RewriteRule):
    name = "path-fusion"
    paper_ref = (
        "Section 5.2 (single-scan path evaluation): the whole-query "
        "compilation of SXSI (Arroyuelo et al., PAPERS.md) applied to "
        "VAMANA's algebra — execute a forward step chain as one tree "
        "automaton pass over the node index"
    )

    def matches(self, plan: QueryPlan, node: PlanBase) -> bool:
        # ``node`` is the *top* of a maximal fusable chain that ends at
        # the context-path leaf (the operator fed the document context) —
        # the fused scan replaces the whole chain with one leaf.
        if not _fusable_step(node) or not plan.root.distinct:
            return False
        if not on_context_path(plan, node):
            return False
        length = 1
        structural = node.axis is not Axis.SELF
        current = node.context_child
        while current is not None:
            if not _fusable_step(current):
                return False  # the chain must reach the leaf unbroken
            structural = structural or current.axis is not Axis.SELF
            length += 1
            current = current.context_child
        if length < 2 or not structural:
            return False  # nothing to fuse / pure self-filters
        parent = context_parent(plan, node)
        if _fusable_step(parent):
            return False  # not maximal: matching continues at the parent
        return True

    def apply(self, plan: QueryPlan, node: PlanBase) -> None:
        step = find_by_id(plan, node.op_id)
        assert isinstance(step, StepNode)
        chain = [step]
        current = step.context_child
        while current is not None:
            assert isinstance(current, StepNode)
            chain.append(current)
            current = current.context_child
        # steps in application order: the chain's leaf is applied first.
        fused = FusedPathScanNode([(s.axis, s.test) for s in reversed(chain)])
        parent = context_parent(plan, step)
        assert parent is not None
        parent.context_child = fused
        plan.renumber()
