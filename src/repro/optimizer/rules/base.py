"""The rewrite-rule contract."""

from __future__ import annotations

from repro.algebra.plan import PlanBase, QueryPlan


class RewriteRule:
    """One equivalence transformation over physical plans.

    ``matches`` inspects an operator *in place*; ``apply`` receives a
    *cloned* plan plus the clone's copy of that operator (located by id)
    and mutates the clone.  Rules never decide profitability — the
    optimizer re-estimates and compares costs.
    """

    #: Short identifier used in traces and ablation benchmarks.
    name: str = "rule"
    #: Where the paper introduces this rewrite.
    paper_ref: str = ""

    def matches(self, plan: QueryPlan, node: PlanBase) -> bool:
        raise NotImplementedError

    def apply(self, plan: QueryPlan, node: PlanBase) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
