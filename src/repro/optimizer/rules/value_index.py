"""The value-index rewrite (Figure 9).

Pattern: a context-path leaf step with a text-equality predicate::

    φ(descendant::B)[ β=( path(child::text()), L'value' ) ]

rewrites to a value-index probe followed by a parent step::

    φ(parent::B)  ←ctx—  φ(value::'value')

The value step reads exactly TC('value') index entries — one lookup — so
``//name[text()='Yung Flach']`` touches 1 tuple instead of evaluating a
predicate on all 4825 names.  This is the capability the paper contrasts
with eXist, which must fall back to memory-based tree traversal for value
comparisons.
"""

from __future__ import annotations

from repro.model import Axis, NodeTestKind
from repro.algebra.plan import (
    BinaryPredicateNode,
    LiteralNode,
    PathExprNode,
    PlanBase,
    QueryPlan,
    StepNode,
    ValueStepNode,
)
from repro.optimizer.rules.base import RewriteRule
from repro.optimizer.util import find_by_id, is_positional, on_context_path

_DOWN_LEAF_AXES = frozenset({Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF})


def _text_equality_literal(predicate) -> str | None:
    """The literal of a ``text() = 'v'`` predicate, else None."""
    if not isinstance(predicate, BinaryPredicateNode) or predicate.op != "=":
        return None
    sides = (predicate.left, predicate.right)
    literal = next((side for side in sides if isinstance(side, LiteralNode)), None)
    path = next((side for side in sides if isinstance(side, PathExprNode)), None)
    if literal is None or path is None:
        return None
    step = path.path
    if not isinstance(step, StepNode) or step.context_child is not None:
        return None
    if step.axis is not Axis.CHILD or step.test.kind is not NodeTestKind.TEXT:
        return None
    if step.predicates:
        return None
    return literal.value


class ValueIndexRule(RewriteRule):
    name = "value-index"
    paper_ref = "Figure 9 (optimization of Q2)"

    def matches(self, plan: QueryPlan, node: PlanBase) -> bool:
        if not isinstance(node, StepNode) or node.context_child is not None:
            return False
        if node.axis not in _DOWN_LEAF_AXES or node.test.kind is not NodeTestKind.NAME:
            return False
        if not on_context_path(plan, node):
            return False
        if any(is_positional(predicate) for predicate in node.predicates):
            return False
        return any(
            _text_equality_literal(predicate) is not None
            for predicate in node.predicates
        )

    def apply(self, plan: QueryPlan, node: PlanBase) -> None:
        step = find_by_id(plan, node.op_id)
        assert isinstance(step, StepNode)
        remaining = []
        value: str | None = None
        for predicate in step.predicates:
            if value is None:
                candidate = _text_equality_literal(predicate)
                if candidate is not None:
                    value = candidate
                    continue
            remaining.append(predicate)
        assert value is not None
        step.axis = Axis.PARENT
        step.context_child = ValueStepNode(value)
        step.predicates = remaining
        plan.renumber()
