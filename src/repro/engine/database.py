"""A database of named XML documents.

The paper's costing "can calculate the cost over the entire database that
may contain many XML documents or can be specific to a particular XML
document".  :class:`Database` provides that scope: each document is one
MASS store with its own engine; counts aggregate across documents and
queries run per document or over all of them.
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.errors import ReproError
from repro.mass.loader import load_xml
from repro.mass.records import NodeKind
from repro.mass.store import MassStore
from repro.model import NodeTest
from repro.engine.engine import VamanaEngine
from repro.engine.result import QueryResult


class Database:
    """Named collection of indexed documents.

    The registry is thread-safe: concurrent adds, drops and lookups are
    serialized by one re-entrant lock, so a serving front end can attach
    and detach documents while readers resolve names.  (Query execution
    itself is not under this lock — per-engine thread safety is the
    engine's plan-cache lock, and full isolation under mutation is the
    serving layer's :class:`~repro.serving.SnapshotManager`.)
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._stores: dict[str, MassStore] = {}
        self._engines: dict[str, VamanaEngine] = {}

    # -- document management -----------------------------------------------------

    def add_document(self, name: str, xml_text: str, **store_options) -> MassStore:
        """Parse, index and register one document under ``name``."""
        store = load_xml(xml_text, name=name, **store_options)
        with self._lock:
            if name in self._stores:
                raise ReproError(f"document {name!r} already loaded")
            self._stores[name] = store
            self._engines[name] = VamanaEngine(store)
        return store

    def add_store(self, name: str, store: MassStore) -> None:
        with self._lock:
            if name in self._stores:
                raise ReproError(f"document {name!r} already loaded")
            self._stores[name] = store
            self._engines[name] = VamanaEngine(store)

    def drop_document(self, name: str) -> None:
        with self._lock:
            if name not in self._stores:
                raise ReproError(f"no document named {name!r}")
            del self._stores[name]
            del self._engines[name]

    def documents(self) -> list[str]:
        with self._lock:
            return list(self._stores)

    def store(self, name: str) -> MassStore:
        with self._lock:
            try:
                return self._stores[name]
            except KeyError:
                raise ReproError(f"no document named {name!r}") from None

    def engine(self, name: str) -> VamanaEngine:
        with self._lock:
            try:
                return self._engines[name]
            except KeyError:
                raise ReproError(f"no document named {name!r}") from None

    def serve(self, name: str, **server_options):
        """Stand up a :class:`~repro.serving.QueryServer` on one document.

        The store is handed to the server's snapshot manager, which
        freezes it: direct mutation through this database raises from
        then on, and updates flow through
        :meth:`~repro.serving.QueryServer.apply_update` instead.  The
        registry keeps serving reads (counts, lookups) for the frozen
        base version.
        """
        from repro.serving import QueryServer

        return QueryServer(self.store(name), **server_options)

    def __len__(self) -> int:
        with self._lock:
            return len(self._stores)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._stores

    # -- queries -------------------------------------------------------------------

    def evaluate(
        self,
        expression: str,
        document: str | None = None,
        optimize: bool = True,
        timeout_ms: float | None = None,
        max_pages: int | None = None,
        max_results: int | None = None,
        on_error: str = "capture",
    ) -> "dict[str, QueryResult | ReproError]":
        """Run a query on one document or on every document.

        Returns per-document results keyed by document name.  A collection
        degrades gracefully: a document whose evaluation fails (resource
        budget, storage fault, …) contributes its :class:`ReproError` as
        the map value and the remaining documents still run.  Pass
        ``on_error="raise"`` to fail fast instead; querying one named
        document always raises.  The optional limits build a fresh
        :class:`~repro.resilience.QueryGuard` per document, so one slow
        document cannot consume the whole collection's budget.
        """
        if on_error not in ("capture", "raise"):
            raise ValueError(f"on_error must be 'capture' or 'raise', got {on_error!r}")
        names = [document] if document is not None else self.documents()
        results: dict[str, QueryResult | ReproError] = {}
        for name in names:
            try:
                results[name] = self.engine(name).evaluate(
                    expression,
                    optimize=optimize,
                    timeout_ms=timeout_ms,
                    max_pages=max_pages,
                    max_results=max_results,
                )
            except ReproError as error:
                if document is not None or on_error == "raise":
                    raise
                results[name] = error
        return results

    def count(
        self,
        test: NodeTest,
        document: str | None = None,
        principal: NodeKind = NodeKind.ELEMENT,
    ) -> int:
        """COUNT over one document or the whole database (paper VI-B)."""
        if document is not None:
            return self.store(document).count(test, principal)
        # Snapshot the registry under the lock; the (possibly slow) index
        # counts then run outside it so a long count never blocks adds.
        with self._lock:
            stores = list(self._stores.values())
        return sum(store.count(test, principal) for store in stores)

    def text_count(self, value: str, document: str | None = None) -> int:
        """TC over one document or the whole database."""
        if document is not None:
            return self.store(document).text_count(value)
        with self._lock:
            stores = list(self._stores.values())
        return sum(store.text_count(value) for store in stores)

    def iter_stores(self) -> Iterator[tuple[str, MassStore]]:
        with self._lock:
            return iter(list(self._stores.items()))

    # -- partitioned execution -----------------------------------------------------

    def to_sharded(self, directory: str, shards: int, scheme: str = "hash"):
        """Partition this collection into ``directory`` and open it.

        Writes one crash-safe ``.mass`` file per document under per-shard
        subdirectories plus a manifest (see
        :mod:`repro.sharding.partitioner`), then returns a live
        :class:`~repro.sharding.coordinator.ShardedDatabase` — one worker
        process per shard, ready to evaluate.  The caller owns the
        returned database's lifecycle (``close()`` stops the fleet); this
        registry keeps serving its in-process engines unchanged.
        """
        from repro.sharding import ShardedDatabase, build_shards

        build_shards(self.iter_stores(), directory, shards, scheme)
        return ShardedDatabase(directory)
