"""The VAMANA query engine facade.

:class:`~repro.engine.engine.VamanaEngine` wires the four components of
Figure 2 together — XPath compiler, optimizer, cost estimator, query
execution engine — over one MASS store.  :class:`~repro.engine.database.Database`
manages a collection of named documents (the paper's "database that may
contain many XML documents") and routes queries to their stores.
"""

from repro.engine.engine import VamanaEngine
from repro.engine.result import ExecutionMetrics, QueryResult
from repro.engine.database import Database

__all__ = ["VamanaEngine", "QueryResult", "ExecutionMetrics", "Database"]
