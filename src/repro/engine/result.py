"""Query results and execution metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.mass.flexkey import FlexKey
from repro.mass.records import NodeRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mass.store import MassStore
    from repro.optimizer.optimizer import OptimizationTrace


@dataclass
class ExecutionMetrics:
    """What one query execution cost, in machine-independent units.

    Wall times are reported too, but the counters are the reproducible
    part: a plan that fetches fewer records and reads fewer pages is
    cheaper on 2005's Celeron and on today's hardware alike.
    """

    wall_seconds: float = 0.0
    optimize_seconds: float = 0.0
    tuples_returned: int = 0
    record_fetches: int = 0
    pages_read: int = 0
    logical_reads: int = 0
    key_comparisons: int = 0
    entries_scanned: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    counters: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"{self.tuples_returned} tuples in {self.wall_seconds * 1000:.2f} ms "
            f"(+{self.optimize_seconds * 1000:.2f} ms optimize); "
            f"{self.record_fetches} record fetches, "
            f"{self.logical_reads} page touches, "
            f"{self.entries_scanned} index entries scanned"
        )


class QueryResult:
    """A finished query: result keys in document order, without duplicates.

    Records materialise lazily — iterating keys costs nothing beyond the
    execution that already happened.
    """

    def __init__(
        self,
        store: "MassStore",
        keys: list[FlexKey],
        metrics: ExecutionMetrics,
        trace: "OptimizationTrace | None" = None,
        expression: str = "",
    ):
        self.store = store
        self.keys = keys
        self.metrics = metrics
        self.trace = trace
        self.expression = expression

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator[FlexKey]:
        return iter(self.keys)

    def records(self) -> Iterator[NodeRecord]:
        for key in self.keys:
            yield self.store.require(key)

    def string_values(self) -> list[str]:
        """The XPath string-value of every result node."""
        return [self.store.string_value(key) for key in self.keys]

    def labels(self) -> list[str]:
        """Short human-readable node labels (for examples and debugging)."""
        return [record.label() for record in self.records()]

    def key_set(self) -> frozenset[FlexKey]:
        return frozenset(self.keys)

    def to_xml(self) -> list[str]:
        """Serialize each result node's subtree back to XML text."""
        return [self.store.serialize_subtree(key) for key in self.keys]

    def __repr__(self) -> str:
        return f"<QueryResult {self.expression!r}: {len(self.keys)} nodes>"
