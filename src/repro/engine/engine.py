"""``VamanaEngine`` — compile, optimize, execute (Figure 2).

The engine is the one object applications touch::

    store = load_xml(document_text)
    engine = VamanaEngine(store)
    result = engine.evaluate("//person/address")
    print(result.labels(), result.metrics.describe())

``evaluate`` runs the full pipeline (default plan → cost-driven
optimization → pipelined index execution) and returns a
:class:`~repro.engine.result.QueryResult` whose metrics separate
optimization overhead from execution cost — the split Figure 14 reports.
"""

from __future__ import annotations

import threading
import time

from repro.errors import (
    BudgetExceededError,
    PlanError,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.mass.flexkey import FlexKey
from repro.mass.store import MassStore
from repro.xmark import vocabulary
from repro.xpath import ast
from repro.xpath.parser import parse_xpath
from repro.algebra.builder import build_default_plan, build_expr
from repro.analysis.plan_verifier import PlanVerifier, describe_properties
from repro.analysis.satisfiability import (
    SatisfiabilityAnalyzer,
    SatReport,
    SchemaGraph,
    names_only_schema,
    xmark_schema,
)
from repro.algebra.execution import (
    BlockConfig,
    DEFAULT_BLOCK_SIZE,
    EvalContext,
    ExpressionEvaluator,
    NodeSetValue,
    TUPLE_AT_A_TIME,
    dedup_document_order,
    execute_plan,
    to_boolean,
    to_number,
    to_string,
)
from repro.algebra.plan import QueryPlan
from repro.cost.estimator import CostEstimator
from repro.engine.result import ExecutionMetrics, QueryResult
from repro.optimizer.optimizer import OptimizationTrace, Optimizer
from repro.optimizer.rules import DEFAULT_RULES, PathFusionRule, RewriteRule
from repro.resilience.guard import QueryGuard


class VamanaEngine:
    """A cost-driven XPath engine over one MASS store."""

    def __init__(
        self,
        store: MassStore,
        rules: tuple[RewriteRule, ...] = DEFAULT_RULES,
        plan_cache_size: int = 128,
        verify_rewrites: bool = True,
        static_check: bool = True,
        batched: bool = True,
        block_size: int | None = None,
        validate_rewrites: bool = False,
        fused: bool = True,
    ):
        self.store = store
        #: ``validate_rewrites`` turns on translation validation inside
        #: the optimizer: every proposed rewrite is executed (pre and
        #: post, tuple and batched) against this store and rejected on
        #: any result discrepancy.  Expensive — a debugging/validation
        #: mode, not a production default.
        validate = None
        if validate_rewrites:
            from repro.analysis.tv.oracle import DifferentialOracle

            validate = DifferentialOracle(store)
        self.optimizer = Optimizer(
            store, rules, verify=verify_rewrites, validate=validate
        )
        #: ``fused`` enables whole-query path fusion: chains of forward
        #: location steps may be compiled into one ``FusedPathScan``
        #: automaton pass.  Off, the fusion rule is simply withheld from
        #: the optimizer, so plans keep the per-step pipeline shape.
        self.fused = fused
        unfused_rules = tuple(r for r in rules if not isinstance(r, PathFusionRule))
        if len(unfused_rules) == len(rules):
            self._unfused_optimizer = self.optimizer
        else:
            self._unfused_optimizer = Optimizer(
                store, unfused_rules, verify=verify_rewrites, validate=validate
            )
        self.estimator = CostEstimator(store)
        #: ``batched`` selects the block-at-a-time pipeline (with shared
        #: skip-ahead cursors and context coalescing); off, every operator
        #: moves one tuple per call — the paper's original execution mode,
        #: kept as the benchmark baseline.  ``block_size`` pins the root
        #: block size; None lets the cost estimator size it per plan.
        self.batched = batched
        self.block_size = block_size
        #: ``static_check`` enables the satisfiability pre-pass: queries
        #: the schema analysis proves empty are answered without planning
        #: or touching the store.  Disable it for documents whose shape
        #: the analyzer should not reason about at all.
        self.static_check = static_check
        self._schema: SchemaGraph | None = None
        self._schema_epoch = -1
        self._sat_cache: dict[str, SatReport] = {}
        # LRU order: oldest entry first (dicts preserve insertion order; a
        # hit re-inserts its entry at the end).  Plans embed cost decisions
        # made against the store's statistics, so the whole cache is tied
        # to the store epoch it was built under.  Keys include the
        # batched/block-size/fused knobs: each cached plan memoizes its
        # block configuration (``_block_config_hint``) and its fusion
        # decision, so a plan cached under one knob setting must never be
        # served under another.
        self._plan_cache: dict[
            tuple[str, bool, bool, int | None, bool],
            tuple[QueryPlan, OptimizationTrace | None],
        ] = {}
        self._plan_cache_size = plan_cache_size
        self._plan_cache_epoch = store.epoch
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # One reentrant lock serializes every plan-cache and schema-cache
        # access: the serving layer evaluates through a shared engine from
        # many worker threads at once, and an unguarded LRU dict would
        # corrupt under concurrent re-insertions (and racing misses would
        # compile the same expression twice).  Cache hits only pay a
        # lock/unlock; misses additionally serialize optimization, which
        # is the behaviour we want — one compile per expression, everyone
        # else waits for the cached plan.
        self._plan_lock = threading.RLock()

    # -- compilation -----------------------------------------------------------

    def compile(self, expression: str) -> QueryPlan:
        """Parse and build the default (unoptimized) physical plan."""
        return build_default_plan(expression)

    def optimize(
        self, plan: QueryPlan, fused: bool | None = None
    ) -> tuple[QueryPlan, OptimizationTrace]:
        """Run the cost-driven optimizer; the input plan is untouched.

        ``fused`` overrides the engine's fusion knob for this call:
        ``False`` optimizes with the path-fusion rule withheld.
        """
        effective_fused = self.fused if fused is None else fused
        optimizer = self.optimizer if effective_fused else self._unfused_optimizer
        return optimizer.optimize(plan)

    def plan(
        self, expression: str, optimize: bool = True, fused: bool | None = None
    ) -> tuple[QueryPlan, OptimizationTrace | None]:
        """Cached compile(+optimize) — a genuine LRU keyed on the store epoch.

        Any store mutation bumps the epoch; cached plans were optimized
        against the old statistics, so the first plan request after a
        mutation drops the cache and re-optimizes.  The current
        ``batched``/``block_size``/``fused`` knobs are part of the key: a
        cached plan carries a memoized block configuration and its fusion
        decision, and toggling the knobs on a live engine must produce a
        fresh entry rather than serve the stale one.  ``fused`` overrides
        the engine-level knob for this one query.

        Thread-safe: the cache (and a miss's compile+optimize) runs under
        the engine's plan lock, so concurrent callers never corrupt the
        LRU order or compile the same expression twice.
        """
        plan, trace, _hit = self._plan_cached(expression, optimize, fused)
        return plan, trace

    def _plan_cached(
        self, expression: str, optimize: bool = True, fused: bool | None = None
    ) -> tuple[QueryPlan, OptimizationTrace | None, bool]:
        """:meth:`plan` plus whether the cache answered (for metrics)."""
        with self._plan_lock:
            if self._plan_cache_epoch != self.store.epoch:
                self._plan_cache.clear()
                self._plan_cache_epoch = self.store.epoch
            effective_fused = self.fused if fused is None else fused
            cache_key = (
                expression, optimize, self.batched, self.block_size, effective_fused
            )
            cached = self._plan_cache.get(cache_key)
            if cached is not None:
                # Re-insert to mark this entry most-recently-used.
                del self._plan_cache[cache_key]
                self._plan_cache[cache_key] = cached
                self.plan_cache_hits += 1
                return (*cached, True)
            self.plan_cache_misses += 1
            default = self.compile(expression)
            if optimize:
                # The optimizer must never kill a query: individual rule
                # failures are already sandboxed inside the loop, and if the
                # loop itself dies (estimator bug, pathological plan) we fall
                # back to the default plan with the failure on the trace.
                # Interrupts and query-guard violations must still abort the
                # query, so they pass through the sandbox untouched.
                try:
                    plan, trace = self.optimize(default, fused=effective_fused)
                except (
                    KeyboardInterrupt,
                    QueryTimeoutError,
                    BudgetExceededError,
                    QueryCancelledError,
                ):
                    raise
                except Exception as error:  # noqa: BLE001 - deliberate sandbox
                    trace = OptimizationTrace(expression=expression)
                    trace.failure = f"{type(error).__name__}: {error}"
                    plan = default
            else:
                plan, trace = default, None
            if self._plan_cache_size > 0:
                if len(self._plan_cache) >= self._plan_cache_size:
                    self._plan_cache.pop(next(iter(self._plan_cache)))
                self._plan_cache[cache_key] = (plan, trace)
            return plan, trace, False

    # -- static analysis --------------------------------------------------------

    def schema(self) -> SchemaGraph:
        """The schema graph satisfiability runs against (cached per epoch).

        When the store looks like an XMark document (document element
        ``site`` and every element/attribute name drawn from the generator
        vocabulary) the exhaustive XMark grammar is used; anything else
        falls back to a names-only schema mined from the name index, which
        still prunes unknown-name tests but assumes any structure.
        """
        with self._plan_lock:
            if self._schema is not None and self._schema_epoch == self.store.epoch:
                return self._schema
            elements: set[str] = set()
            attributes: set[str] = set()
            for name in self.store.name_index.distinct_names():
                if name.startswith("@"):
                    attributes.add(name[1:])
                elif not name.startswith(("#", "?")):
                    elements.add(name)
            root = self.store.root_element().name
            xmark_attributes = frozenset().union(
                *vocabulary.SCHEMA_ATTRIBUTES.values()
            )
            if (
                root == vocabulary.SCHEMA_ROOT
                and elements <= vocabulary.SCHEMA_ELEMENTS
                and attributes <= xmark_attributes
            ):
                schema = xmark_schema()
            else:
                schema = names_only_schema(elements, attributes, root=root)
            self._schema = schema
            self._schema_epoch = self.store.epoch
            self._sat_cache.clear()
            return schema

    def satisfiability(self, expression: str) -> SatReport:
        """Judge an expression against the store's schema (cached)."""
        with self._plan_lock:
            schema = self.schema()
            cached = self._sat_cache.get(expression)
            if cached is not None:
                return cached
            report = SatisfiabilityAnalyzer(schema).analyze(parse_xpath(expression))
            self._sat_cache[expression] = report
            return report

    def _statically_empty(self, expression: str) -> SatReport | None:
        """The unsat report for a provably-empty query, else None.

        The analysis is advisory: if it breaks (unparseable corner case,
        schema bug) the query simply runs normally.  Guard violations and
        interrupts still propagate.
        """
        if not self.static_check:
            return None
        try:
            report = self.satisfiability(expression)
        except (
            KeyboardInterrupt,
            QueryTimeoutError,
            BudgetExceededError,
            QueryCancelledError,
        ):
            raise
        except Exception:  # noqa: BLE001 - advisory analysis only
            return None
        return None if report.satisfiable else report

    # -- execution --------------------------------------------------------------

    def _block_config(self, plan: QueryPlan) -> BlockConfig:
        """The pipeline configuration for one plan execution.

        The estimator call is advisory: if it breaks on a pathological
        plan the default block size is used.  Guard violations and
        interrupts still propagate.
        """
        if not self.batched:
            return TUPLE_AT_A_TIME
        if self.block_size is not None:
            return BlockConfig(
                enabled=True, size=max(1, self.block_size), coalesce=True
            )
        # Plans are cached per expression, so memoizing the config on
        # the plan keeps repeat evaluations from re-walking it (visible
        # on microsecond-scale queries).
        config = getattr(plan, "_block_config_hint", None)
        if config is None:
            try:
                size = self.estimator.suggest_block_size(plan)
            except (
                KeyboardInterrupt,
                QueryTimeoutError,
                BudgetExceededError,
                QueryCancelledError,
            ):
                raise
            except Exception:  # noqa: BLE001 - advisory sizing only
                size = DEFAULT_BLOCK_SIZE
            config = BlockConfig(enabled=True, size=max(1, size), coalesce=True)
            plan._block_config_hint = config
        return config

    def execute(
        self,
        plan: QueryPlan,
        context: FlexKey | None = None,
        trace: OptimizationTrace | None = None,
        guard: QueryGuard | None = None,
    ) -> QueryResult:
        """Run a plan and collect the result node-set with metrics.

        A :class:`QueryGuard` violation propagates as the matching typed
        :class:`~repro.errors.ExecutionError` subclass; partial results
        are discarded.
        """
        before = self.store.io_snapshot()
        started = time.perf_counter()
        raw_keys = list(
            execute_plan(
                plan, self.store, context, guard=guard, block=self._block_config(plan)
            )
        )
        elapsed = time.perf_counter() - started
        keys = dedup_document_order(raw_keys) if plan.root.distinct else raw_keys
        after = self.store.io_snapshot()
        metrics = ExecutionMetrics(
            wall_seconds=elapsed,
            optimize_seconds=trace.elapsed_seconds if trace else 0.0,
            tuples_returned=len(keys),
            record_fetches=after["record_fetches"] - before["record_fetches"],
            pages_read=after["pages_read"] - before["pages_read"],
            logical_reads=after["logical_reads"] - before["logical_reads"],
            key_comparisons=after["key_comparisons"] - before["key_comparisons"],
            entries_scanned=after["entries_scanned"] - before["entries_scanned"],
        )
        metrics.counters["raw_tuples"] = len(raw_keys)
        return QueryResult(self.store, keys, metrics, trace, plan.expression)

    def evaluate(
        self,
        expression: str,
        optimize: bool = True,
        context: FlexKey | None = None,
        timeout_ms: float | None = None,
        max_pages: int | None = None,
        max_results: int | None = None,
        guard: QueryGuard | None = None,
        fused: bool | None = None,
    ) -> QueryResult:
        """The full pipeline: compile → optimize → execute.

        ``timeout_ms`` / ``max_pages`` / ``max_results`` build a
        :class:`QueryGuard` for this call; pass a prebuilt ``guard``
        instead to share one (e.g. to cancel from another thread).
        ``fused`` overrides the engine's path-fusion knob for this query.
        """
        if guard is None and (
            timeout_ms is not None or max_pages is not None or max_results is not None
        ):
            guard = QueryGuard(
                timeout_ms=timeout_ms, max_pages=max_pages, max_results=max_results
            )
        if context is None:
            # Satisfiability pre-pass: a query the schema analysis proves
            # empty is answered right here — no plan, no index I/O.  The
            # check only applies to document-context evaluation; an
            # explicit context node changes what a relative path means.
            report = self._statically_empty(expression)
            if report is not None:
                metrics = ExecutionMetrics(tuples_returned=0)
                metrics.counters["static_empty"] = 1
                return QueryResult(self.store, [], metrics, None, expression)
        plan, trace, cache_hit = self._plan_cached(expression, optimize, fused)
        result = self.execute(plan, context, trace, guard=guard)
        result.metrics.plan_cache_hits = 1 if cache_hit else 0
        result.metrics.plan_cache_misses = 0 if cache_hit else 1
        return result

    def evaluate_value(
        self,
        expression: str,
        context: FlexKey | None = None,
        guard: QueryGuard | None = None,
    ):
        """Evaluate a general (non-node-set) XPath expression.

        Returns a Python bool/float/str, or a list of keys if the
        expression turns out to be a node-set after all.  A ``guard``
        governs the embedded node-set evaluations exactly as in
        :meth:`evaluate` — ``count(//a)`` under a page budget trips the
        same :class:`~repro.errors.BudgetExceededError`.
        """
        tree = parse_xpath(expression)
        if isinstance(tree, (ast.LocationPath, ast.UnionExpr)):
            return list(self.evaluate(expression, context=context, guard=guard))
        if guard is not None:
            guard.bind(self.store)
        expr = build_expr(tree)
        evaluator = ExpressionEvaluator(self.store, guard=guard)
        eval_context = EvalContext(
            self.store,
            context if context is not None else FlexKey.document(),
            guard=guard,
        )
        value = evaluator.evaluate(expr, eval_context)
        if isinstance(value, NodeSetValue):
            return dedup_document_order(value.keys())
        return value

    # -- inspection ---------------------------------------------------------------

    def explain(
        self,
        expression: str,
        optimize: bool = True,
        verify: bool = False,
        fused: bool | None = None,
    ) -> str:
        """The annotated plan tree, plus the optimization trace if any.

        With ``verify=True`` the static analyses run too: the plan is
        checked against every structural invariant (raising
        :class:`~repro.errors.PlanInvariantError` if one is broken), the
        inferred per-operator properties are appended, and the
        satisfiability verdict is reported.  ``fused`` overrides the
        engine's path-fusion knob for this query.
        """
        plan, trace = self.plan(expression, optimize, fused=fused)
        self.estimator.estimate(plan)
        sections = [plan.explain()]
        if trace is not None:
            sections.append(trace.describe())
        if verify:
            PlanVerifier().verify(plan)
            sections.append(describe_properties(plan))
            report = self.satisfiability(expression)
            sections.append(f"invariants: ok\nsatisfiability: {report.describe()}")
        return "\n\n".join(sections)

    def __repr__(self) -> str:
        return f"<VamanaEngine over {self.store!r}>"
