"""Capability profiles for the baseline engines.

Each profile encodes the limitations Section VIII reports for the real
system: missing axes and maximum document sizes.  The limits are enforced
at load/evaluate time with the same observable behaviour the paper saw —
a query on an unsupported axis fails, an oversized document refuses to
load — which is why some series in Figures 12-16 simply have no points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import Axis

_ALL_AXES = frozenset(Axis)

_MB = 1024 * 1024


@dataclass(frozen=True)
class EngineProfile:
    """Name, axis support and size ceiling of one baseline engine."""

    name: str
    supported_axes: frozenset[Axis]
    max_document_bytes: int | None = None
    #: eXist's documented behaviour: value comparisons leave the index and
    #: traverse the in-memory tree.
    value_predicate_fallback: bool = False

    def supports_axis(self, axis: Axis) -> bool:
        return axis in self.supported_axes

    def accepts_size(self, size_bytes: int) -> bool:
        return self.max_document_bytes is None or size_bytes < self.max_document_bytes


#: Galax: DOM-based, no sibling axes ("Galax does not support certain axes
#: like following-sibling"), handles up to ~30 MB in reasonable time but
#: loads anything.
GALAX_PROFILE = EngineProfile(
    name="galax",
    supported_axes=_ALL_AXES
    - {Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING},
    max_document_bytes=None,
)

#: Jaxen: full axis support, but "does not support large XML documents of
#: sizes >= 10Mb".
JAXEN_PROFILE = EngineProfile(
    name="jaxen",
    supported_axes=_ALL_AXES,
    max_document_bytes=10 * _MB,
)

#: eXist: path-join evaluation over name indexes; no ordered axes
#: ("currently fails to execute all XPath axes like following-sibling,
#: previous-sibling"); "unable to store large complex documents having
#: sizes >= 20Mb"; value predicates fall back to tree traversal.
EXIST_PROFILE = EngineProfile(
    name="exist",
    supported_axes=_ALL_AXES
    - {
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
        Axis.FOLLOWING,
        Axis.PRECEDING,
    },
    max_document_bytes=20 * _MB,
    value_predicate_fallback=True,
)

#: Xindice: "user-defined pattern indexes for small to medium size
#: documents < 5Mb".
XINDICE_PROFILE = EngineProfile(
    name="xindice",
    supported_axes=_ALL_AXES
    - {
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
        Axis.FOLLOWING,
        Axis.PRECEDING,
    },
    max_document_bytes=5 * _MB,
    value_predicate_fallback=True,
)
