"""The structural path-join baseline (the eXist algorithmic class).

eXist indexes elements and attributes by name and evaluates XPath with
path joins over those lists; this stand-in does the same:

* at load time it builds an inverted index ``name → [nodes]`` (document
  order) and assigns every node a ``(start, end)`` interval — ``start``
  is the node's document-order number and ``end`` the largest number in
  its subtree, so ancestorship is interval containment;
* ``child``/``descendant``/``parent``/``ancestor`` steps run as sorted
  merge joins between the context list and the name list — no tree
  traversal;
* **value predicates leave the index**: any predicate that needs a node's
  content switches to conventional memory-based DOM traversal (delegated
  to the :class:`DomTraversalEngine` machinery), the exact behaviour the
  paper exploits with Q5;
* the ordered axes (following/preceding and the sibling axes) are
  unsupported, as in the 2005 eXist.

Work is counted in ``join_comparisons`` and ``fallback_nodes`` so the
benchmarks can show *why* the value-predicate query is ~2x slower here.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable

from repro.errors import (
    DocumentTooLargeError,
    ExecutionError,
    UnsupportedFeatureError,
)
from repro.mass.records import NodeKind
from repro.model import Axis, NodeTest, NodeTestKind
from repro.xpath import ast
from repro.xpath.parser import parse_xpath
from repro.xmlkit.dom import DomDocument, DomNode, build_dom
from repro.baselines.dom_engine import DomNodeSet, DomTraversalEngine
from repro.baselines.profiles import EXIST_PROFILE, EngineProfile

_JOIN_AXES = {Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
              Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF, Axis.SELF,
              Axis.ATTRIBUTE}


class PathJoinEngine:
    """eXist stand-in: name indexes + structural joins + DOM fallback."""

    def __init__(self, profile: EngineProfile | None = None):
        self.profile = profile or EXIST_PROFILE
        self.document: DomDocument | None = None
        self._by_name: dict[str, list[DomNode]] = {}
        self._by_attr_name: dict[str, list[DomNode]] = {}
        self._end: dict[int, int] = {}
        self._fallback: DomTraversalEngine | None = None
        self.join_comparisons = 0
        self.fallback_nodes = 0

    # -- loading --------------------------------------------------------------

    def load(self, xml_text: str) -> DomDocument:
        size = len(xml_text.encode("utf-8", errors="ignore"))
        if not self.profile.accepts_size(size):
            raise DocumentTooLargeError(
                self.profile.name, size, self.profile.max_document_bytes
            )
        self.load_dom(build_dom(xml_text))
        return self.document

    def load_dom(self, document: DomDocument, size_bytes: int = 0) -> None:
        if size_bytes and not self.profile.accepts_size(size_bytes):
            raise DocumentTooLargeError(
                self.profile.name, size_bytes, self.profile.max_document_bytes
            )
        self.document = document
        self._by_name.clear()
        self._by_attr_name.clear()
        self._end.clear()
        self._index(document.document_node)
        fallback_profile = EngineProfile(
            name=self.profile.name + "-fallback",
            supported_axes=self.profile.supported_axes,
            max_document_bytes=None,
        )
        self._fallback = DomTraversalEngine(fallback_profile)
        self._fallback.load_dom(document)

    def _index(self, node: DomNode) -> int:
        """Post-order pass computing subtree ends and the name lists."""
        end = node.order
        if node.kind is NodeKind.ELEMENT:
            self._by_name.setdefault(node.name, []).append(node)
            for attribute in node.attributes:
                self._by_attr_name.setdefault(attribute.name, []).append(attribute)
                end = max(end, attribute.order)
        for child in node.children:
            end = max(end, self._index(child))
        self._end[node.order] = end
        return end

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, expression: str) -> list[DomNode]:
        if self.document is None:
            raise ExecutionError("no document loaded")
        tree = parse_xpath(expression)
        if not isinstance(tree, ast.LocationPath):
            raise UnsupportedFeatureError(self.profile.name, "non-path expressions")
        # Treat '//x' as one descendant step (like eXist's path expressions)
        # instead of literally walking descendant-or-self::node() first.
        from repro.algebra.builder import _collapse_abbreviations

        current = [self.document.document_node]
        for step in _collapse_abbreviations(tree.steps):
            current = self._apply_step(current, step)
        return sorted({id(n): n for n in current}.values(), key=lambda n: n.order)

    def _apply_step(self, context: list[DomNode], step: ast.Step) -> list[DomNode]:
        if not self.profile.supports_axis(step.axis):
            raise UnsupportedFeatureError(self.profile.name, f"axis {step.axis.value}")
        if step.axis not in _JOIN_AXES:  # pragma: no cover - profiles exclude these
            raise UnsupportedFeatureError(self.profile.name, f"axis {step.axis.value}")
        unique = sorted({id(n): n for n in context}.values(), key=lambda n: n.order)
        if not step.predicates:
            return self._join_step(unique, step)
        # Predicates (positional ones in particular) apply per context
        # node, over that context's candidates in axis order.
        produced: list[DomNode] = []
        for node in unique:
            candidates = self._join_step([node], step)
            produced.extend(self._filter_predicates(candidates, step.predicates))
        return produced

    # -- structural joins ----------------------------------------------------------

    def _candidates(self, step: ast.Step) -> list[DomNode] | None:
        """The name-index list a step can join against, or None."""
        test = step.test
        if step.axis is Axis.ATTRIBUTE:
            if test.kind is NodeTestKind.NAME:
                return self._by_attr_name.get(test.name, [])
            if test.kind in (NodeTestKind.ANY, NodeTestKind.NODE):
                merged: list[DomNode] = []
                for nodes in self._by_attr_name.values():
                    merged.extend(nodes)
                merged.sort(key=lambda node: node.order)
                return merged
            return []
        if test.kind is NodeTestKind.NAME:
            return self._by_name.get(test.name, [])
        return None

    def _join_step(self, context: list[DomNode], step: ast.Step) -> list[DomNode]:
        candidates = self._candidates(step)
        if candidates is None:
            # '*', text(), node() … — no name list; traverse (indexes only
            # cover named elements/attributes, like eXist's).
            return self._traverse_step(context, step)
        context = sorted({id(n): n for n in context}.values(), key=lambda n: n.order)
        axis = step.axis
        if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.ATTRIBUTE):
            return self._down_join(context, candidates, axis)
        if axis in (Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF, Axis.SELF):
            return self._up_join(context, candidates, axis)
        raise UnsupportedFeatureError(self.profile.name, f"axis {axis.value}")

    def _down_join(
        self, context: list[DomNode], candidates: list[DomNode], axis: Axis
    ) -> list[DomNode]:
        """Interval-containment join: candidates inside a context subtree."""
        orders = [node.order for node in candidates]
        produced: list[DomNode] = []
        for ancestor in context:
            lo = bisect_left(orders, ancestor.order + (0 if axis is Axis.DESCENDANT_OR_SELF else 1))
            hi = bisect_right(orders, self._end[ancestor.order])
            for index in range(lo, hi):
                candidate = candidates[index]
                self.join_comparisons += 1
                if axis is Axis.CHILD and candidate.parent is not ancestor:
                    continue
                if axis is Axis.ATTRIBUTE and candidate.parent is not ancestor:
                    continue
                produced.append(candidate)
        return produced

    def _up_join(
        self, context: list[DomNode], candidates: list[DomNode], axis: Axis
    ) -> list[DomNode]:
        """Containment join in the other direction: candidate contains context."""
        produced: list[DomNode] = []
        candidate_set = {id(node) for node in candidates}
        for node in context:
            if axis is Axis.SELF:
                self.join_comparisons += 1
                if id(node) in candidate_set:
                    produced.append(node)
                continue
            if axis is Axis.ANCESTOR_OR_SELF and id(node) in candidate_set:
                produced.append(node)
            if axis is Axis.PARENT:
                self.join_comparisons += 1
                if node.parent is not None and id(node.parent) in candidate_set:
                    produced.append(node.parent)
                continue
            ancestor = node.parent
            while ancestor is not None:
                self.join_comparisons += 1
                if id(ancestor) in candidate_set:
                    produced.append(ancestor)
                ancestor = ancestor.parent
        return produced

    def _traverse_step(self, context: list[DomNode], step: ast.Step) -> list[DomNode]:
        """Non-indexable node test: fall back to tree traversal."""
        assert self._fallback is not None
        produced: list[DomNode] = []
        for node in context:
            for candidate in self._fallback._axis_nodes(node, step.axis):
                self.fallback_nodes += 1
                if self._fallback._match_test(candidate, step.axis, step.test):
                    produced.append(candidate)
        return produced

    # -- predicates (the documented fallback) ---------------------------------------

    def _filter_predicates(
        self, candidates: Iterable[DomNode], predicates: tuple[ast.XPathNode, ...]
    ) -> list[DomNode]:
        """Predicate evaluation switches back to memory-based traversal.

        This mirrors eXist: "to evaluate predicate expressions that
        contain value comparisons, eXist requires switching back to
        conventional memory-based tree traversal".
        """
        assert self._fallback is not None
        current = list(candidates)  # already in axis order for one context
        for predicate in predicates:
            survivors: list[DomNode] = []
            total = len(current)
            for position, node in enumerate(current, start=1):
                before = self._fallback.nodes_visited
                value = self._fallback._eval_expr(predicate, node, position, lambda: total)
                self.fallback_nodes += self._fallback.nodes_visited - before
                if isinstance(value, float):
                    keep = float(position) == value
                else:
                    keep = self._fallback._to_boolean(value)
                if keep:
                    survivors.append(node)
            current = survivors
        return current

    def reset_metrics(self) -> None:
        self.join_comparisons = 0
        self.fallback_nodes = 0
        if self._fallback is not None:
            self._fallback.nodes_visited = 0
