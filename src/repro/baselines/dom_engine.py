"""The DOM-traversal baseline (the Galax/Jaxen algorithmic class).

Evaluation is textbook node-set-at-a-time: the whole document is parsed
into a DOM up front, each location step maps the current node-set through
an axis walk, and intermediate node-sets are fully materialised and
sorted between steps.  Predicates are evaluated recursively with the same
machinery.  There is no index anywhere — exactly the cost profile the
paper contrasts with VAMANA's index-only plans.

The engine honours an :class:`~repro.baselines.profiles.EngineProfile`:
oversized documents raise :class:`DocumentTooLargeError` at load and
unsupported axes raise :class:`UnsupportedFeatureError` at evaluation,
mirroring how the original systems produced no data points for some
figure configurations.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator

from repro.errors import (
    DocumentTooLargeError,
    ExecutionError,
    UnsupportedFeatureError,
)
from repro.mass.records import NodeKind
from repro.model import Axis, NodeTest
from repro.xpath import ast
from repro.xpath.parser import parse_xpath
from repro.xmlkit.dom import DomDocument, DomNode, build_dom


class DomNodeSet:
    """A materialised node list (document order, distinct)."""

    def __init__(self, nodes: Iterable[DomNode]):
        seen: dict[int, DomNode] = {}
        for node in nodes:
            seen.setdefault(id(node), node)
        self.nodes = sorted(seen.values(), key=lambda node: node.order)

    def __iter__(self) -> Iterator[DomNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)


class DomTraversalEngine:
    """Galax/Jaxen stand-in: full-document DOM + top-down evaluation."""

    def __init__(self, profile=None):
        from repro.baselines.profiles import GALAX_PROFILE

        self.profile = profile or GALAX_PROFILE
        self.document: DomDocument | None = None
        #: Work counter: nodes touched by axis walks and value reads.
        self.nodes_visited = 0

    # -- loading -------------------------------------------------------------

    def load(self, xml_text: str) -> DomDocument:
        size = len(xml_text.encode("utf-8", errors="ignore"))
        if not self.profile.accepts_size(size):
            raise DocumentTooLargeError(
                self.profile.name, size, self.profile.max_document_bytes
            )
        self.document = build_dom(xml_text)
        return self.document

    def load_dom(self, document: DomDocument, size_bytes: int = 0) -> None:
        """Adopt an existing DOM (sharing parse cost across engines)."""
        if size_bytes and not self.profile.accepts_size(size_bytes):
            raise DocumentTooLargeError(
                self.profile.name, size_bytes, self.profile.max_document_bytes
            )
        self.document = document

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, expression: str) -> list[DomNode]:
        """Evaluate an XPath returning a node-set, in document order."""
        if self.document is None:
            raise ExecutionError("no document loaded")
        tree = parse_xpath(expression)
        value = self._eval_expr(tree, self.document.document_node, 1, lambda: 1)
        if not isinstance(value, DomNodeSet):
            raise ExecutionError(f"{expression!r} is not a node-set expression")
        return list(value)

    def evaluate_value(self, expression: str):
        """Evaluate any XPath expression to a Python value."""
        if self.document is None:
            raise ExecutionError("no document loaded")
        tree = parse_xpath(expression)
        value = self._eval_expr(tree, self.document.document_node, 1, lambda: 1)
        if isinstance(value, DomNodeSet):
            return list(value)
        return value

    # -- axis walks ---------------------------------------------------------------

    def _axis_nodes(self, node: DomNode, axis: Axis) -> Iterator[DomNode]:
        if not self.profile.supports_axis(axis):
            raise UnsupportedFeatureError(self.profile.name, f"axis {axis.value}")
        if axis is Axis.SELF:
            yield node
        elif axis is Axis.CHILD:
            yield from node.children
        elif axis is Axis.DESCENDANT:
            yield from node.descendants()
        elif axis is Axis.DESCENDANT_OR_SELF:
            yield node
            yield from node.descendants()
        elif axis is Axis.PARENT:
            if node.parent is not None:
                yield node.parent
        elif axis is Axis.ANCESTOR:
            yield from node.ancestors()
        elif axis is Axis.ANCESTOR_OR_SELF:
            yield node
            yield from node.ancestors()
        elif axis is Axis.FOLLOWING_SIBLING:
            yield from node.following_siblings()
        elif axis is Axis.PRECEDING_SIBLING:
            yield from node.preceding_siblings()
        elif axis is Axis.FOLLOWING:
            yield from self._following(node)
        elif axis is Axis.PRECEDING:
            yield from self._preceding(node)
        elif axis is Axis.ATTRIBUTE:
            yield from node.attributes
        elif axis is Axis.NAMESPACE:
            return
        else:  # pragma: no cover - exhaustive
            raise UnsupportedFeatureError(self.profile.name, f"axis {axis.value}")

    def _following(self, node: DomNode) -> Iterator[DomNode]:
        if node.kind in (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE):
            # document order places an attribute before its element's
            # content, and an attribute has no descendants, so everything
            # with a larger order number follows it.
            assert self.document is not None
            for candidate in self.document.all_nodes():
                if candidate.order > node.order:
                    yield candidate
            return
        anchor = node
        while anchor is not None:
            for sibling in anchor.following_siblings():
                yield sibling
                yield from sibling.descendants()
            anchor = anchor.parent

    def _preceding(self, node: DomNode) -> Iterator[DomNode]:
        if node.kind in (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE):
            assert self.document is not None
            ancestors = {id(ancestor) for ancestor in node.ancestors()}
            preceding = [
                candidate
                for candidate in self.document.all_nodes()
                if candidate.order < node.order
                and id(candidate) not in ancestors
                and candidate.kind is not NodeKind.DOCUMENT
            ]
            yield from sorted(preceding, key=lambda c: c.order, reverse=True)
            return
        results: list[DomNode] = []
        anchor = node
        while anchor is not None:
            for sibling in anchor.preceding_siblings():
                results.append(sibling)
                results.extend(sibling.descendants())
            anchor = anchor.parent
        results.sort(key=lambda candidate: candidate.order, reverse=True)
        yield from results

    def _match_test(
        self, node: DomNode, axis: Axis, test: NodeTest, context: DomNode | None = None
    ) -> bool:
        if node.kind in (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE) and axis not in (
            Axis.ATTRIBUTE,
            Axis.NAMESPACE,
        ):
            # a *-or-self axis does include the context attribute itself
            if node is not context or axis not in (
                Axis.SELF,
                Axis.ANCESTOR_OR_SELF,
                Axis.DESCENDANT_OR_SELF,
            ):
                return False
        return test.matches(node.kind, node.name, axis.principal_kind)

    # -- steps ---------------------------------------------------------------------

    def _eval_steps(
        self, start_nodes: Iterable[DomNode], steps: tuple[ast.Step, ...]
    ) -> DomNodeSet:
        current = DomNodeSet(start_nodes)
        for step in steps:
            produced: list[DomNode] = []
            for context in current:
                candidates: list[DomNode] = []
                for candidate in self._axis_nodes(context, step.axis):
                    self.nodes_visited += 1
                    if self._match_test(candidate, step.axis, step.test, context):
                        candidates.append(candidate)
                produced.extend(self._filter_predicates(candidates, step.predicates))
            current = DomNodeSet(produced)
        return current

    def _filter_predicates(
        self, candidates: list[DomNode], predicates: tuple[ast.XPathNode, ...]
    ) -> list[DomNode]:
        current = candidates
        for predicate in predicates:
            survivors: list[DomNode] = []
            total = len(current)
            for position, node in enumerate(current, start=1):
                value = self._eval_expr(predicate, node, position, lambda: total)
                if isinstance(value, float):
                    keep = float(position) == value
                else:
                    keep = self._to_boolean(value)
                if keep:
                    survivors.append(node)
            current = survivors
        return current

    # -- expressions ------------------------------------------------------------------

    def _eval_expr(
        self,
        tree: ast.XPathNode,
        context: DomNode,
        position: int,
        last: Callable[[], int],
    ):
        if isinstance(tree, ast.LocationPath):
            start = self._path_start(context, tree)
            return self._eval_steps([start], tree.steps)
        if isinstance(tree, ast.UnionExpr):
            nodes: list[DomNode] = []
            for branch in tree.branches:
                value = self._eval_expr(branch, context, position, last)
                if not isinstance(value, DomNodeSet):
                    raise ExecutionError("union branches must be node-sets")
                nodes.extend(value)
            return DomNodeSet(nodes)
        if isinstance(tree, ast.StringLiteral):
            return tree.value
        if isinstance(tree, ast.NumberLiteral):
            return tree.value
        if isinstance(tree, ast.Negate):
            return -self._to_number(self._eval_expr(tree.operand, context, position, last))
        if isinstance(tree, ast.AndExpr):
            return self._to_boolean(
                self._eval_expr(tree.left, context, position, last)
            ) and self._to_boolean(self._eval_expr(tree.right, context, position, last))
        if isinstance(tree, ast.OrExpr):
            return self._to_boolean(
                self._eval_expr(tree.left, context, position, last)
            ) or self._to_boolean(self._eval_expr(tree.right, context, position, last))
        if isinstance(tree, ast.Comparison):
            return self._compare(
                tree.op,
                self._eval_expr(tree.left, context, position, last),
                self._eval_expr(tree.right, context, position, last),
            )
        if isinstance(tree, ast.BinaryOp):
            return self._arithmetic(
                tree.op,
                self._eval_expr(tree.left, context, position, last),
                self._eval_expr(tree.right, context, position, last),
            )
        if isinstance(tree, ast.FunctionCall):
            return self._function(tree, context, position, last)
        raise ExecutionError(f"cannot evaluate {type(tree).__name__}")

    def _path_start(self, context: DomNode, path: ast.LocationPath) -> DomNode:
        if not path.absolute:
            return context
        assert self.document is not None
        return self.document.document_node

    # -- value semantics ------------------------------------------------------------------

    def _string_value(self, node: DomNode) -> str:
        self.nodes_visited += 1
        return node.string_value()

    def _to_boolean(self, value) -> bool:
        if isinstance(value, DomNodeSet):
            return len(value) > 0
        if isinstance(value, bool):
            return value
        if isinstance(value, float):
            return value != 0 and not math.isnan(value)
        if isinstance(value, str):
            return bool(value)
        raise ExecutionError(f"cannot convert {type(value).__name__} to boolean")

    def _to_number(self, value) -> float:
        if isinstance(value, DomNodeSet):
            return self._to_number(self._to_string(value))
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, float):
            return value
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                return math.nan
        raise ExecutionError(f"cannot convert {type(value).__name__} to number")

    def _to_string(self, value) -> str:
        if isinstance(value, DomNodeSet):
            if not len(value):
                return ""
            return self._string_value(value.nodes[0])
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, float):
            if math.isnan(value):
                return "NaN"
            if value == int(value) and abs(value) < 1e16:
                return str(int(value))
            return repr(value)
        if isinstance(value, str):
            return value
        raise ExecutionError(f"cannot convert {type(value).__name__} to string")

    def _compare(self, op: str, left, right) -> bool:
        left_set = isinstance(left, DomNodeSet)
        right_set = isinstance(right, DomNodeSet)
        if left_set and right_set:
            right_values = [self._string_value(node) for node in right]
            for node in left:
                left_value = self._string_value(node)
                for right_value in right_values:
                    if self._scalar_compare(op, left_value, right_value, strings=True):
                        return True
            return False
        if right_set:
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
            return self._compare(flipped, right, left)
        if left_set:
            if isinstance(right, bool):
                return self._scalar_compare(op, self._to_boolean(left), right)
            for node in left:
                value = self._string_value(node)
                if isinstance(right, float):
                    if self._scalar_compare(op, self._to_number(value), right):
                        return True
                elif self._scalar_compare(op, value, right, strings=op in ("=", "!=")):
                    return True
            return False
        if isinstance(left, bool) or isinstance(right, bool):
            return self._scalar_compare(op, self._to_boolean(left), self._to_boolean(right))
        if op in ("=", "!=") and isinstance(left, str) and isinstance(right, str):
            return (left == right) == (op == "=")
        return self._scalar_compare(op, self._to_number(left), self._to_number(right))

    def _scalar_compare(self, op: str, left, right, strings: bool = False) -> bool:
        if strings and op in ("=", "!="):
            return (left == right) == (op == "=")
        if not strings and isinstance(left, bool):
            left, right = self._to_number(left), self._to_number(right)
        if isinstance(left, str):
            left = self._to_number(left)
        if isinstance(right, str):
            right = self._to_number(right)
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise ExecutionError(f"unknown comparison {op!r}")

    def _arithmetic(self, op: str, left, right) -> float:
        a = self._to_number(left)
        b = self._to_number(right)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "div":
            if b == 0:
                return math.nan if a == 0 else math.copysign(math.inf, a)
            return a / b
        if op == "mod":
            return math.fmod(a, b) if b else math.nan
        raise ExecutionError(f"unknown operator {op!r}")

    def _function(
        self,
        call: ast.FunctionCall,
        context: DomNode,
        position: int,
        last: Callable[[], int],
    ):
        name = call.name
        evaluate = lambda index: self._eval_expr(call.args[index], context, position, last)
        if name == "position":
            return float(position)
        if name == "last":
            return float(last())
        if name == "count":
            value = evaluate(0)
            if not isinstance(value, DomNodeSet):
                raise ExecutionError("count() requires a node-set")
            return float(len(value))
        if name == "not":
            return not self._to_boolean(evaluate(0))
        if name == "true":
            return True
        if name == "false":
            return False
        if name == "contains":
            return self._to_string(evaluate(0)).find(self._to_string(evaluate(1))) >= 0
        if name == "starts-with":
            return self._to_string(evaluate(0)).startswith(self._to_string(evaluate(1)))
        if name == "string":
            return self._string_value(context) if not call.args else self._to_string(evaluate(0))
        if name == "number":
            if not call.args:
                return self._to_number(self._string_value(context))
            return self._to_number(evaluate(0))
        if name == "string-length":
            text = self._string_value(context) if not call.args else self._to_string(evaluate(0))
            return float(len(text))
        if name == "normalize-space":
            text = self._string_value(context) if not call.args else self._to_string(evaluate(0))
            return " ".join(text.split())
        if name in ("name", "local-name"):
            node = context
            if call.args:
                value = evaluate(0)
                if not isinstance(value, DomNodeSet):
                    raise ExecutionError(f"{name}() requires a node-set")
                if not len(value):
                    return ""
                node = value.nodes[0]
            if name == "local-name" and ":" in node.name:
                return node.name.split(":", 1)[1]
            return node.name
        if name == "concat":
            return "".join(self._to_string(evaluate(index)) for index in range(len(call.args)))
        if name == "sum":
            value = evaluate(0)
            if not isinstance(value, DomNodeSet):
                raise ExecutionError("sum() requires a node-set")
            return float(sum(self._to_number(self._string_value(node)) for node in value))
        if name == "boolean":
            return self._to_boolean(evaluate(0))
        if name == "substring":
            from repro.algebra.execution import _substring

            return _substring(
                self._to_string(evaluate(0)),
                self._to_number(evaluate(1)),
                self._to_number(evaluate(2)) if len(call.args) > 2 else None,
            )
        if name == "substring-before":
            haystack = self._to_string(evaluate(0))
            needle = self._to_string(evaluate(1))
            index = haystack.find(needle)
            return haystack[:index] if index >= 0 else ""
        if name == "substring-after":
            haystack = self._to_string(evaluate(0))
            needle = self._to_string(evaluate(1))
            index = haystack.find(needle)
            return haystack[index + len(needle):] if index >= 0 else ""
        if name == "translate":
            from repro.algebra.execution import _translate

            return _translate(
                self._to_string(evaluate(0)),
                self._to_string(evaluate(1)),
                self._to_string(evaluate(2)),
            )
        if name == "floor":
            return float(math.floor(self._to_number(evaluate(0))))
        if name == "ceiling":
            return float(math.ceil(self._to_number(evaluate(0))))
        if name == "round":
            number = self._to_number(evaluate(0))
            if math.isnan(number) or math.isinf(number):
                return number
            return float(math.floor(number + 0.5))
        raise UnsupportedFeatureError(self.profile.name, f"function {name}()")
