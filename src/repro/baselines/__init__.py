"""Baseline engines — the paper's comparison systems, rebuilt.

The evaluation (Section VIII) compares VAMANA against Galax, Jaxen and
eXist.  Those binaries are long gone; what matters for reproduction is
their *algorithmic class* and their documented limitations, so this
package implements both classes from scratch:

* :class:`DomTraversalEngine` — the Galax/Jaxen class: parse the whole
  document into a DOM, then evaluate location steps top-down with
  materialised node-sets.  No indexes; memory and time grow with the
  document, and the profiles encode the axis gaps and size ceilings the
  paper reports (Galax lacks the sibling axes; Jaxen rejects documents
  ≥ 10 MB).
* :class:`PathJoinEngine` — the eXist class: an element-name inverted
  index plus interval-based structural joins for child/descendant steps,
  **falling back to memory-based tree traversal for value predicates**
  (the weakness Q5 exposes) and lacking the ordered axes.

Every engine shares one contract — ``evaluate(xpath) -> list[DomNode]``
in document order — so correctness tests can cross-check all engines,
including VAMANA, node for node.
"""

from repro.baselines.profiles import (
    EngineProfile,
    EXIST_PROFILE,
    GALAX_PROFILE,
    JAXEN_PROFILE,
    XINDICE_PROFILE,
)
from repro.baselines.dom_engine import DomTraversalEngine
from repro.baselines.pathjoin import PathJoinEngine

__all__ = [
    "EngineProfile",
    "GALAX_PROFILE",
    "JAXEN_PROFILE",
    "EXIST_PROFILE",
    "XINDICE_PROFILE",
    "DomTraversalEngine",
    "PathJoinEngine",
]
