"""VAMANA's physical algebra (Section V of the paper).

The algebra separates the *plan* — a cheap-to-transform tree of
:mod:`repro.algebra.plan` nodes carrying cost annotations — from the
*executors* — the stateful pipelined operators of
:mod:`repro.algebra.execution` that implement the paper's
INITIAL / FETCHING / OUT_OF_TUPLES protocol (Algorithms 1 and 2).

:mod:`repro.algebra.builder` maps each parse-tree node onto exactly one
plan node, producing the *default query plan* the optimizer starts from.
"""

from repro.algebra.plan import (
    BinaryPredicateNode,
    ExistsNode,
    ExprNode,
    FunctionNode,
    LiteralNode,
    NumberNode,
    PlanNode,
    QueryPlan,
    RootNode,
    StepNode,
    UnionNode,
    ValueStepNode,
)
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import OperatorState, execute_plan

__all__ = [
    "QueryPlan",
    "PlanNode",
    "RootNode",
    "StepNode",
    "ValueStepNode",
    "UnionNode",
    "ExprNode",
    "ExistsNode",
    "BinaryPredicateNode",
    "LiteralNode",
    "NumberNode",
    "FunctionNode",
    "build_default_plan",
    "execute_plan",
    "OperatorState",
]
