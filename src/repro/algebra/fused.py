"""Whole-query compilation: a fused location-step chain as one scan.

A chain of forward steps (child / descendant[-or-self] / self axes, no
predicates) is compiled into a small NFA over ``(depth, kind, name)``
events and simulated in a *single* document-order pass over the node
index — the one-pass discipline of SXSI's whole-query optimization,
replacing one operator (and one index scan) per location step.

**States.**  For a chain of ``n`` steps, state ``i`` (a bit in an integer
mask) means "some prefix of ``i`` steps matched an ancestor-or-self of
this node"; bit ``n`` accepts.  Step ``i`` consumes transitions from
state ``i``:

* ``child`` steps fire on the children of a state-``i`` node,
* ``descendant[-or-self]`` steps fire on every proper descendant (the
  or-self variant also on the node itself),
* ``self`` steps fire on the node itself only.

Node tests become precomputed per-kind bitmasks, so simulating one node
costs a handful of integer operations and no per-step dispatch.

**Scan.**  The simulation walks the context's subtree range once,
maintaining a stack of ``(depth, states, descendant-feed)`` entries for
the current ancestor path — the classic document-order stack automaton.
When a subtree provably cannot contain another match (its root's feed
masks are empty), the scan skips it wholesale: small dead subtrees are
filtered inline with one byte comparison per entry, larger ones
reposition the shared :class:`~repro.mass.axes.ScanCursors` B+-tree
cursor straight to the subtree's upper bound, mirroring the ``past()``
span-skipping of the coalesced batch scans.
"""

from __future__ import annotations

from itertools import islice
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.guard import QueryGuard

from repro.errors import PlanError
from repro.mass.axes import ScanCursors, _subtree_range, _subtree_top
from repro.mass.flexkey import FlexKey
from repro.mass.records import NodeKind, NodeRecord
from repro.mass.store import MassStore
from repro.model import Axis, NodeTest, NodeTestKind
from repro.algebra.execution import BlockConfig, Operator, OperatorState
from repro.algebra.plan import FusedPathScanNode

#: Guard-checkpoint cadence of the fused scan, in processed index entries.
#: Mirrors the coalesced-scan cadence (:data:`repro.mass.axes._CHECKPOINT_EVERY`).
_CHECKPOINT_EVERY = 64

#: How many entries of a dead subtree the scan filters inline before it
#: repositions the cursor to the subtree's upper bound.  Tiny subtrees are
#: cheaper to compare away than to seek past.
_SKIP_SEEK_AFTER = 4

#: The axes a fused chain may contain.
FUSABLE_AXES = frozenset(
    {Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.SELF}
)


class PathAutomaton:
    """The compiled form of a fused step chain: transition/test bitmasks.

    ``steps`` are ``(axis, test)`` pairs in application order (the chain's
    former leaf first).  All masks index states by the step that consumes
    them, so ``child_mask & (1 << i)`` says "step ``i`` is a child step".
    """

    __slots__ = (
        "steps",
        "accept",
        "child_mask",
        "desc_mask",
        "closure_mask",
        "node_mask",
        "element_default",
        "element_masks",
        "text_mask",
        "comment_mask",
        "pi_default",
        "pi_masks",
    )

    def __init__(self, steps: list[tuple[Axis, NodeTest]]):
        if not steps:
            raise PlanError("cannot fuse an empty step chain")
        self.steps = list(steps)
        self.accept = 1 << len(steps)
        self.child_mask = 0
        self.desc_mask = 0
        self.closure_mask = 0
        self.node_mask = 0
        self.element_default = 0
        self.text_mask = 0
        self.comment_mask = 0
        self.pi_default = 0
        element_names: dict[str, int] = {}
        pi_names: dict[str, int] = {}
        for index, (axis, test) in enumerate(steps):
            bit = 1 << index
            if axis is Axis.CHILD:
                self.child_mask |= bit
            elif axis is Axis.DESCENDANT:
                self.desc_mask |= bit
            elif axis is Axis.DESCENDANT_OR_SELF:
                self.desc_mask |= bit
                self.closure_mask |= bit
            elif axis is Axis.SELF:
                self.closure_mask |= bit
            else:
                raise PlanError(f"axis {axis.value} cannot be fused")
            kind = test.kind
            if kind is NodeTestKind.NODE:
                self.node_mask |= bit
            elif kind is NodeTestKind.ANY:
                self.element_default |= bit
            elif kind is NodeTestKind.NAME:
                element_names[test.name] = element_names.get(test.name, 0) | bit
            elif kind is NodeTestKind.TEXT:
                self.text_mask |= bit
            elif kind is NodeTestKind.COMMENT:
                self.comment_mask |= bit
            elif kind is NodeTestKind.PROCESSING_INSTRUCTION:
                if test.name:
                    pi_names[test.name] = pi_names.get(test.name, 0) | bit
                else:
                    self.pi_default |= bit
            else:  # pragma: no cover - exhaustive over NodeTestKind
                raise PlanError(f"node test {test} cannot be fused")
        # node() matches every kind the scanned axes can deliver.
        self.element_default |= self.node_mask
        self.text_mask |= self.node_mask
        self.comment_mask |= self.node_mask
        self.pi_default |= self.node_mask
        self.element_masks = {
            name: bits | self.element_default for name, bits in element_names.items()
        }
        self.pi_masks = {
            name: bits | self.pi_default for name, bits in pi_names.items()
        }

    @property
    def state_count(self) -> int:
        return len(self.steps) + 1

    def match_mask(self, kind: NodeKind, name: str) -> int:
        """The step bits whose node test a scanned ``kind``/``name`` node
        satisfies.  Attribute/namespace entries never match: the fusable
        axes cannot deliver them (cf. ``_record_matches``)."""
        if kind is NodeKind.ELEMENT:
            return self.element_masks.get(name, self.element_default)
        if kind is NodeKind.TEXT:
            return self.text_mask
        if kind is NodeKind.COMMENT:
            return self.comment_mask
        if kind is NodeKind.PROCESSING_INSTRUCTION:
            return self.pi_masks.get(name, self.pi_default)
        if kind is NodeKind.DOCUMENT:
            # The document node is a node: node() steps match it.  Only
            # reachable as a *context* (via :meth:`start`) — subtree scans
            # never deliver the document record.
            return self.node_mask
        return 0

    def _closure(self, states: int, match: int) -> int:
        """Saturate self/descendant-or-self transitions on one node."""
        closure_fire = self.closure_mask & match
        while True:
            advanced = states | ((states & closure_fire) << 1)
            if advanced == states:
                return states
            states = advanced

    def start(self, record: NodeRecord | None) -> int:
        """The context node's state mask (state 0 plus its self-closure).

        ``record`` is the context's stored record (kind ``DOCUMENT`` for
        the document node), or None when no record exists.  The context
        node itself may consume self/descendant-or-self steps in place —
        the document node and attribute contexts through their ``node()``
        matches (``selfish`` matching) — so steps *after* a leading
        ``descendant-or-self::node()`` see the right descendant feed.
        """
        states = 1
        if not self.closure_mask:
            return states
        if record is None:
            match = self.node_mask  # the recordless document node
        elif record.kind in (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE):
            match = self.node_mask  # only node() matches a special context
        else:
            match = self.match_mask(record.kind, record.name)
        return self._closure(states, match)

    def advance(self, fire: int, kind: NodeKind, name: str) -> int:
        """One node's state mask given its incoming transition bits."""
        match = self.match_mask(kind, name)
        states = (fire & match) << 1
        if states and self.closure_mask:
            states = self._closure(states, match)
        return states


def compile_steps(steps: list[tuple[Axis, NodeTest]]) -> PathAutomaton:
    """Compile a fused step chain into its :class:`PathAutomaton`."""
    return PathAutomaton(steps)


class FusedPathScanOperator(Operator):
    """``FPS`` — a whole step chain evaluated in one node-index pass.

    A leaf operator like :class:`~repro.algebra.execution.ValueStepOperator`:
    the engine (or a predicate evaluation) arms it with a context via
    :meth:`reset`, and one scan of the context's subtree emits every chain
    result.  Each node is emitted at most once and the scan runs in
    document order, so the output is distinct and prefix-monotone by
    construction.
    """

    emits_prefix_monotone = True

    def __init__(
        self,
        store: MassStore,
        plan: FusedPathScanNode,
        predicates: list,
        guard: "QueryGuard | None" = None,
        block: BlockConfig | None = None,
    ):
        super().__init__(store, guard, block)
        self.plan = plan
        self.predicates = predicates
        self.automaton = compile_steps(plan.steps)
        self._cursors = ScanCursors(store) if store.byte_keys else None
        self._candidates: Iterator[FlexKey] | None = None
        self._context: FlexKey | None = None

    def reset(self, context: FlexKey | None) -> None:
        self.state = OperatorState.INITIAL
        self._candidates = None
        self._context = context

    def next_block(self, max_n: int) -> list[FlexKey]:
        if self.guard is not None:
            self.guard.checkpoint()
        if self.state is OperatorState.OUT_OF_TUPLES or self._context is None:
            return []
        if self._candidates is None:
            self.state = OperatorState.FETCHING
            candidates: Iterator[FlexKey] = self._fused_scan(self._context)
            for predicate in self.predicates:
                candidates = predicate.filter(self.store, candidates)
            self._candidates = candidates
        block = list(islice(self._candidates, max_n))
        if len(block) < max_n:
            self.state = OperatorState.OUT_OF_TUPLES
        return block

    # -- the one-pass simulation ---------------------------------------------

    def _node_records(self, lo, hi, inclusive_lo: bool) -> Iterator[NodeRecord]:
        if self._cursors is not None:
            return self.store.node_index.scan_cursor(
                self._cursors.node_cursor(), lo, hi, inclusive_lo=inclusive_lo
            )
        return self.store.node_index.scan(lo, hi, inclusive_lo=inclusive_lo)

    def _fused_scan(self, context: FlexKey) -> Iterator[FlexKey]:
        """Simulate the automaton over one document-order subtree scan.

        The body of the per-entry loop is :meth:`PathAutomaton.advance`
        inlined (match-mask dispatch, transition shift, closure fixpoint)
        with every mask hoisted into a local: the loop runs once per index
        entry of the context subtree, and at that trip count Python
        attribute lookups and method calls are the dominant cost.
        """
        store = self.store
        byte_keys = store.byte_keys
        guard = self.guard
        auto = self.automaton
        accept = auto.accept
        child_mask = auto.child_mask
        desc_mask = auto.desc_mask
        closure_mask = auto.closure_mask
        element_mask_get = auto.element_masks.get
        element_default = auto.element_default
        text_mask = auto.text_mask
        comment_mask = auto.comment_mask
        pi_mask_get = auto.pi_masks.get
        pi_default = auto.pi_default
        element_kind = NodeKind.ELEMENT
        text_kind = NodeKind.TEXT
        comment_kind = NodeKind.COMMENT
        pi_kind = NodeKind.PROCESSING_INSTRUCTION

        record = (
            self._cursors.fetch(context)
            if self._cursors is not None
            else store.fetch(context)
        )
        states = auto.start(record)
        if states & accept:
            yield context
        feed_desc = states & desc_mask
        if not ((states & child_mask) | feed_desc):
            return  # no transition can ever fire below this context
        stack: list[tuple[int, int, int]] = [(context.depth, states, feed_desc)]

        lo, hi = _subtree_range(store, context)
        inclusive = False
        dead_hi = None  # exclusive top of the dead subtree being skipped
        dead_run = 0
        since_checkpoint = 0
        while True:
            seek_to = None
            for record in self._node_records(lo, hi, inclusive):
                since_checkpoint += 1
                if guard is not None and since_checkpoint >= _CHECKPOINT_EVERY:
                    guard.checkpoint()
                    since_checkpoint = 0
                key = record.key
                if dead_hi is not None:
                    if (key.sort_bytes if byte_keys else key) < dead_hi:
                        dead_run += 1
                        if dead_run >= _SKIP_SEEK_AFTER:
                            seek_to = dead_hi
                            break
                        continue
                    dead_hi = None
                depth = key.depth
                while stack[-1][0] >= depth:
                    stack.pop()
                _parent_depth, parent_states, parent_feed = stack[-1]
                kind = record.kind
                # PathAutomaton.advance, inlined.
                if kind is element_kind:
                    match = element_mask_get(record.name, element_default)
                elif kind is text_kind:
                    match = text_mask
                elif kind is comment_kind:
                    match = comment_mask
                elif kind is pi_kind:
                    match = pi_mask_get(record.name, pi_default)
                else:
                    match = 0  # attribute/namespace: unreachable by these axes
                states = (
                    ((parent_states & child_mask) | parent_feed) & match
                ) << 1
                if states and closure_mask:
                    closure_fire = closure_mask & match
                    while closure_fire:
                        advanced = states | ((states & closure_fire) << 1)
                        if advanced == states:
                            break
                        states = advanced
                if states & accept:
                    yield key
                if kind is element_kind:
                    feed_desc = parent_feed | (states & desc_mask)
                    if (states & child_mask) | feed_desc:
                        stack.append((depth, states, feed_desc))
                    else:
                        dead_hi = _subtree_top(store, key)
                        dead_run = 0
            if seek_to is None:
                return
            # Reposition the scan just past the dead subtree; the pinned
            # cursor resumes from its current leaf instead of descending
            # from the root.
            lo, inclusive, dead_hi = seek_to, True, None
