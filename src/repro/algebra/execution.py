"""Pipelined, index-driven plan execution (Section VII, Algorithms 1 & 2).

Every tuple-producing plan node becomes a stateful operator with the
paper's three states:

* ``INITIAL`` — never asked for a tuple,
* ``FETCHING`` — iterating the index, or waiting on its context child /
  predicate evaluation,
* ``OUT_OF_TUPLES`` — both the index range and the context child are
  exhausted.

Operators exchange FLEX keys, not materialised nodes: a record is fetched
from the node index only when a predicate needs a string value or the
caller asks for records (the paper's "document nodes do not need to be
materialised … unless they are actually used").

The exchange protocol is **block-at-a-time**: :meth:`Operator.next_block`
moves up to ``max_n`` keys per call, amortizing interpreter dispatch,
guard checkpoints and (through the shared :class:`ScanCursors`) B+-tree
positioning across a whole block.  :meth:`Operator.next_tuple` survives as
a one-element shim — at ``max_n=1`` every operator follows the exact
tuple-at-a-time state sequence, which is what predicate evaluation and the
operator state machine rely on.  Eligible descendant/following steps
additionally *coalesce* a document-ordered context block into disjoint
byte-range spans before scanning (see :func:`repro.mass.axes.coalesced_spans`).

Predicate expressions are evaluated per candidate tuple by dynamically
setting the context of the predicate path's leaf operator (Section V-B)
and follow full XPath 1.0 value semantics: existential node-set
comparisons, numeric coercion for relational operators, the number-rule
for positional predicates (``[3]`` ≡ ``[position() = 3]``), and the core
function library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dataclass_replace
from enum import Enum
from itertools import islice
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.guard import QueryGuard

from repro.errors import ExecutionError, PlanError
from repro.mass.axes import (
    ScanCursors,
    axis_count_exact,
    coalesced_spans,
    scan_coalesced,
)
from repro.mass.flexkey import FlexKey
from repro.mass.indexes import index_name_for_test
from repro.mass.records import NodeKind
from repro.mass.store import MassStore
from repro.model import Axis
from repro.algebra.plan import (
    BinaryPredicateNode,
    ExistsNode,
    ExprNode,
    FunctionNode,
    FusedPathScanNode,
    JoinNode,
    LiteralNode,
    NegateNode,
    NumberNode,
    PathExprNode,
    PlanNode,
    QueryPlan,
    RootNode,
    StepNode,
    UnionNode,
    ValueStepNode,
)


class OperatorState(Enum):
    INITIAL = "INITIAL"
    FETCHING = "FETCHING"
    OUT_OF_TUPLES = "OUT_OF_TUPLES"


#: Fallback block size when the cost estimator has no cardinality to offer.
DEFAULT_BLOCK_SIZE = 256


@dataclass(frozen=True)
class BlockConfig:
    """Knobs of the block-at-a-time pipeline.

    ``size`` is the root driver's block size (the engine sizes it from the
    estimator's OUT cardinality).  ``coalesce`` permits context coalescing
    on eligible steps; it must only be on when the consumer deduplicates
    (coalescing collapses the duplicate hits nested contexts produce), so
    :func:`execute_plan` clears it for non-distinct plans.
    """

    enabled: bool = True
    size: int = DEFAULT_BLOCK_SIZE
    coalesce: bool = True


#: The legacy configuration: every call moves one tuple, no coalescing,
#: no shared cursors.  Operators built without an explicit config get this.
TUPLE_AT_A_TIME = BlockConfig(enabled=False, size=1, coalesce=False)

#: Axes whose context batches may be coalesced into disjoint spans.
_COALESCE_AXES = frozenset(
    {Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.FOLLOWING}
)

#: Axes a single-context (leaf) step emits in forward document order.
_REVERSE_AXES = frozenset(
    {Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF, Axis.PRECEDING, Axis.PRECEDING_SIBLING}
)


def dedup_document_order(keys: "Iterator[FlexKey] | list[FlexKey]") -> list[FlexKey]:
    """Distinct keys in document order.

    Keys dedup and sort on their cached :attr:`FlexKey.sort_bytes` image:
    flat ``bytes`` hash and compare at C speed, where hashing the nested
    component tuples re-walks every integer per probe.
    """
    unique = {key.sort_bytes: key for key in keys}
    return [unique[encoded] for encoded in sorted(unique)]


# -- value model ------------------------------------------------------------------


class NodeSetValue:
    """A lazily re-iterable node-set produced by a predicate path.

    ``count_fast`` is an optional index-only counting shortcut: a callable
    returning the exact cardinality via B+-tree range counts (or None when
    it cannot be sure), wired up when the path is a bare axis step with no
    predicates.  ``count()`` then never materialises a key — the paper's
    O(log n) counting contract.
    """

    def __init__(
        self,
        iterate: Callable[[], Iterator[FlexKey]],
        store: MassStore,
        count_fast: "Callable[[], int | None] | None" = None,
    ):
        self._iterate = iterate
        self._store = store
        self._count_fast = count_fast

    def keys(self) -> Iterator[FlexKey]:
        return self._iterate()

    def is_empty(self) -> bool:
        for _ in self._iterate():
            return False
        return True

    def count(self) -> int:
        if self._count_fast is not None:
            count = self._count_fast()
            if count is not None:
                return count
        return sum(1 for _ in self._iterate())

    def first_key(self) -> FlexKey | None:
        """First node in *document* order (XPath's string() rule)."""
        best: FlexKey | None = None
        best_bytes = b""
        for key in self._iterate():
            encoded = key.sort_bytes
            if best is None or encoded < best_bytes:
                best = key
                best_bytes = encoded
        return best

    def string_values(self) -> Iterator[str]:
        for key in self._iterate():
            yield self._store.string_value(key)


XPathValue = "bool | float | str | NodeSetValue"


def to_boolean(value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and not math.isnan(value)
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, NodeSetValue):
        return not value.is_empty()
    raise ExecutionError(f"cannot convert {type(value).__name__} to boolean")


def to_number(value) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return math.nan
    if isinstance(value, NodeSetValue):
        return to_number(to_string(value))
    raise ExecutionError(f"cannot convert {type(value).__name__} to number")


def to_string(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e16:
            return str(int(value))
        return repr(value)
    if isinstance(value, str):
        return value
    if isinstance(value, NodeSetValue):
        first = value.first_key()
        return "" if first is None else value._store.string_value(first)
    raise ExecutionError(f"cannot convert {type(value).__name__} to string")


# -- evaluation context --------------------------------------------------------------


class EvalContext:
    """Per-candidate evaluation state for predicate expressions.

    ``guard`` is the query's :class:`~repro.resilience.QueryGuard` (or
    None): predicate evaluation happening under this context checkpoints
    against it, so resource limits reach into nested sub-plans too.
    """

    __slots__ = ("store", "key", "position", "_last", "guard")

    def __init__(
        self,
        store: MassStore,
        key: FlexKey,
        position: int = 1,
        last: Callable[[], int] | int = 1,
        guard: "QueryGuard | None" = None,
    ):
        self.store = store
        self.key = key
        self.position = position
        self._last = last
        self.guard = guard

    def last(self) -> int:
        if callable(self._last):
            self._last = self._last()
        return self._last


# -- operators ----------------------------------------------------------------------


class Operator:
    """Base of the pipelined operators; subclasses fill ``next_block``.

    ``guard`` is the query's resource governor (or None).  Every
    ``next_block`` implementation checkpoints it first thing; because no
    operator does unbounded work between two checkpoints (batched scans
    checkpoint internally every few dozen entries), a violated limit
    (deadline, page budget, cancellation) surfaces within a bounded
    number of index operations.

    ``emits_prefix_monotone`` advertises an output-order guarantee: any
    emitted key below the running byte maximum is a descendant-or-self of
    an earlier emitted key.  Consumers use it to decide whether the
    high-water coverage rule of context coalescing is sound.
    """

    emits_prefix_monotone = False

    def __init__(
        self,
        store: MassStore,
        guard: "QueryGuard | None" = None,
        block: BlockConfig | None = None,
    ):
        self.store = store
        self.guard = guard
        self.block = block if block is not None else TUPLE_AT_A_TIME
        self.state = OperatorState.INITIAL

    def reset(self, context: FlexKey | None) -> None:
        """(Re-)arm the operator with a fresh leaf context."""
        raise NotImplementedError

    def next_block(self, max_n: int) -> list[FlexKey]:
        """Up to ``max_n`` result keys in pipeline order.

        A block shorter than ``max_n`` means the operator is out of
        tuples; every later call returns ``[]``.
        """
        raise NotImplementedError

    def next_tuple(self) -> FlexKey | None:
        """The next result key, or None once out of tuples.

        A one-element shim over :meth:`next_block`: at ``max_n=1`` every
        operator follows the exact tuple-at-a-time state sequence, so
        predicate evaluation and state-machine consumers are unchanged.
        """
        if self.guard is not None:
            self.guard.checkpoint()
        block = self.next_block(1)
        return block[0] if block else None

    def iterate(self) -> Iterator[FlexKey]:
        while True:
            key = self.next_tuple()
            if key is None:
                return
            yield key

    def _drain(self) -> Iterator[FlexKey]:
        """Drain via blocks when the pipeline is batched, else tuples.

        For operators that materialise an input wholesale (union build,
        join build/probe) — laziness is already forfeited there, so block
        pulls are pure dispatch savings.
        """
        if not self.block.enabled:
            return self.iterate()
        return _drain_blocks(self, max(self.block.size, 2))


def _drain_blocks(operator: Operator, size: int) -> Iterator[FlexKey]:
    while True:
        block = operator.next_block(size)
        yield from block
        if len(block) < size:
            return


class StepOperator(Operator):
    """``φ^{axis::nodetest}`` — Algorithm 1 (Execute) and 2 (GetNextContext).

    A *leaf* step (no context child) consumes the context the engine or
    the enclosing predicate evaluation set via :meth:`reset`; a non-leaf
    step pulls context tuples from its child on demand, so the whole chain
    is fully pipelined.
    """

    def __init__(
        self,
        store: MassStore,
        plan: StepNode,
        context_child: "Operator | None",
        predicates: list["CompiledPredicate"],
        guard: "QueryGuard | None" = None,
        block: BlockConfig | None = None,
    ):
        super().__init__(store, guard, block)
        self.plan = plan
        self.context_child = context_child
        self.predicates = predicates
        self._leaf_context: FlexKey | None = None
        self._leaf_consumed = False
        self._candidates: Iterator[FlexKey] | None = None
        #: Skip-ahead cursors shared by every scan this step issues.
        self._cursors = (
            ScanCursors(store) if self.block.enabled and store.byte_keys else None
        )
        #: High-water mark of the byte ranges already scanned by coalesced
        #: batches (see :func:`repro.mass.axes.coalesced_spans`).
        self._covered = None
        if context_child is None:
            self.emits_prefix_monotone = plan.axis not in _REVERSE_AXES
        else:
            # Descendant/following hits of prefix-monotone contexts only
            # ever regress into an earlier context's subtree, where every
            # hit is a duplicate; predicates break that (positions differ
            # per context, so a duplicate may surface as a fresh key).
            self.emits_prefix_monotone = (
                not predicates
                and plan.axis in _COALESCE_AXES
                and context_child.emits_prefix_monotone
            )

    def reset(self, context: FlexKey | None) -> None:
        self.state = OperatorState.INITIAL
        self._candidates = None
        self._covered = None
        if self.context_child is not None:
            self.context_child.reset(context)
            self._leaf_context = None
        else:
            self._leaf_context = context
        self._leaf_consumed = False

    def _get_next_context(self) -> FlexKey | None:
        """Algorithm 2: advance to the next context node."""
        if self.context_child is None:
            if self._leaf_consumed or self._leaf_context is None:
                return None
            self._leaf_consumed = True
            return self._leaf_context
        return self.context_child.next_tuple()

    def _axis_hits(self, context: FlexKey) -> Iterator[FlexKey]:
        for key, _record in self.store.axis(
            context, self.plan.axis, self.plan.test, self._cursors
        ):
            yield key

    def _filtered_candidates(self, context: FlexKey) -> Iterator[FlexKey]:
        """Axis hits for one context, run through the predicate stages."""
        candidates: Iterator[FlexKey] = self._axis_hits(context)
        for predicate in self.predicates:
            candidates = predicate.filter(self.store, candidates)
        return candidates

    # -- batched path --------------------------------------------------------

    def _batch_ok(self, max_n: int) -> bool:
        """May this call serve a whole context block from coalesced spans?

        Beyond the block-size/knob gates: no predicates (they are
        per-context, and coalescing drops contexts), a coalescible axis,
        and a prefix-monotone context stream (the coverage rule's
        soundness condition).  DESCENDANT_OR_SELF additionally needs an
        index-resolvable test: its self hits for attribute contexts come
        from a record fetch, which only the tuple path performs.
        """
        if (
            max_n <= 1
            or self._cursors is None
            or not self.block.coalesce
            or self.predicates
        ):
            return False
        if self.context_child is not None and not self.context_child.emits_prefix_monotone:
            return False
        axis = self.plan.axis
        if axis in (Axis.DESCENDANT, Axis.FOLLOWING):
            return True
        if axis is Axis.DESCENDANT_OR_SELF:
            return index_name_for_test(self.plan.test, axis.principal_kind) is not None
        return False

    def _next_context_block(self, max_n: int) -> list[FlexKey]:
        if self.context_child is None:
            if self._leaf_consumed or self._leaf_context is None:
                return []
            self._leaf_consumed = True
            return [self._leaf_context]
        if self.plan.axis is Axis.FOLLOWING:
            # Following ranges are suffixes of the document: block-wise
            # evaluation would rescan ever-larger overlaps, so drain the
            # context child and answer with one open span.
            contexts: list[FlexKey] = []
            while True:
                got = self.context_child.next_block(max(max_n, DEFAULT_BLOCK_SIZE))
                contexts.extend(got)
                if len(got) < max(max_n, DEFAULT_BLOCK_SIZE):
                    return contexts
        return self.context_child.next_block(max_n)

    def _batched_candidates(self, contexts: list[FlexKey]) -> Iterator[FlexKey]:
        contexts.sort(key=lambda key: key.sort_bytes)
        spans, self._covered = coalesced_spans(
            self.store, self.plan.axis, contexts, self._covered
        )
        return scan_coalesced(
            self.store, self.plan.axis, self.plan.test, spans, self._cursors, self.guard
        )

    def next_block(self, max_n: int) -> list[FlexKey]:
        guard = self.guard
        block: list[FlexKey] = []
        while self.state is not OperatorState.OUT_OF_TUPLES:
            if guard is not None:
                guard.checkpoint()
            if self._candidates is None:
                if self._batch_ok(max_n):
                    contexts = self._next_context_block(max_n)
                    if not contexts:
                        self.state = OperatorState.OUT_OF_TUPLES
                        break
                    self.state = OperatorState.FETCHING
                    self._candidates = self._batched_candidates(contexts)
                else:
                    context = self._get_next_context()
                    if context is None:
                        self.state = OperatorState.OUT_OF_TUPLES
                        break
                    self.state = OperatorState.FETCHING
                    self._candidates = self._filtered_candidates(context)
            block.extend(islice(self._candidates, max_n - len(block)))
            if len(block) >= max_n:
                return block
            self._candidates = None
        return block


class ValueStepOperator(Operator):
    """``φ^{value::'v'}`` — leaf step over the value index (Figure 9)."""

    # One fixed value's index entries arrive in ascending key order.
    emits_prefix_monotone = True

    def __init__(
        self,
        store: MassStore,
        value: str,
        predicates: list["CompiledPredicate"],
        text_only: bool = True,
        guard: "QueryGuard | None" = None,
        block: BlockConfig | None = None,
    ):
        super().__init__(store, guard, block)
        self.value = value
        self.text_only = text_only
        self.predicates = predicates
        self._candidates: Iterator[FlexKey] | None = None
        self._armed = False

    def reset(self, context: FlexKey | None) -> None:
        # The value index is document-global; the context only arms the
        # operator (one full pass per context, mirroring a leaf step).
        self.state = OperatorState.INITIAL
        self._candidates = None
        self._armed = context is not None

    def _value_hits(self) -> Iterator[FlexKey]:
        for key, kind in self.store.value_keys(self.value):
            if self.text_only and kind is not NodeKind.TEXT:
                continue
            yield key

    def next_block(self, max_n: int) -> list[FlexKey]:
        if self.guard is not None:
            self.guard.checkpoint()
        if self.state is OperatorState.OUT_OF_TUPLES or not self._armed:
            return []
        if self._candidates is None:
            self.state = OperatorState.FETCHING
            candidates: Iterator[FlexKey] = self._value_hits()
            for predicate in self.predicates:
                candidates = predicate.filter(self.store, candidates)
            self._candidates = candidates
        block = list(islice(self._candidates, max_n))
        if len(block) < max_n:
            self.state = OperatorState.OUT_OF_TUPLES
        return block


class UnionOperator(Operator):
    """Document-order, duplicate-free union of branch results."""

    # Output is materialised sorted-distinct before the first emit.
    emits_prefix_monotone = True

    def __init__(
        self,
        store: MassStore,
        branches: list[Operator],
        guard: "QueryGuard | None" = None,
        block: BlockConfig | None = None,
    ):
        super().__init__(store, guard, block)
        self.branches = branches
        self._result: Iterator[FlexKey] | None = None

    def reset(self, context: FlexKey | None) -> None:
        self.state = OperatorState.INITIAL
        self._result = None
        for branch in self.branches:
            branch.reset(context)

    def next_block(self, max_n: int) -> list[FlexKey]:
        if self.guard is not None:
            self.guard.checkpoint()
        if self.state is OperatorState.OUT_OF_TUPLES:
            return []
        if self._result is None:
            self.state = OperatorState.FETCHING
            merged: dict[bytes, FlexKey] = {}
            for branch in self.branches:
                for key in branch._drain():
                    merged.setdefault(key.sort_bytes, key)
            self._result = iter(
                [merged[encoded] for encoded in sorted(merged)]
            )
        block = list(islice(self._result, max_n))
        if len(block) < max_n:
            self.state = OperatorState.OUT_OF_TUPLES
        return block


class JoinOperator(Operator):
    """``J^cond`` — joins two context children, emitting matching right
    tuples (document order, distinct).

    The left side is materialised once into the form the condition needs
    (a value set or a key list); the right side then streams against it —
    the conventional build/probe split.
    """

    # Output is materialised sorted-distinct before the first emit.
    emits_prefix_monotone = True

    def __init__(
        self,
        store: MassStore,
        left: Operator,
        right: Operator,
        condition: str,
        guard: "QueryGuard | None" = None,
        block: BlockConfig | None = None,
    ):
        super().__init__(store, guard, block)
        self.left = left
        self.right = right
        self.condition = condition
        self._result: Iterator[FlexKey] | None = None

    def reset(self, context: FlexKey | None) -> None:
        self.state = OperatorState.INITIAL
        self._result = None
        self.left.reset(context)
        self.right.reset(context)

    def _matches(self) -> Iterator[FlexKey]:
        left_keys = list(self.left._drain())
        if self.condition == "value-eq":
            build = {self.store.string_value(key) for key in left_keys}
            for key in self.right._drain():
                if self.store.string_value(key) in build:
                    yield key
        elif self.condition == "ancestor":
            build = {key.sort_bytes for key in left_keys}
            for key in self.right._drain():
                if any(ancestor.sort_bytes in build for ancestor in key.ancestors()):
                    yield key
        else:  # precedes
            if not left_keys:
                return
            earliest = min(left_keys)
            for key in self.right._drain():
                if earliest < key and not earliest.is_ancestor_of(key):
                    yield key

    def next_block(self, max_n: int) -> list[FlexKey]:
        if self.guard is not None:
            self.guard.checkpoint()
        if self.state is OperatorState.OUT_OF_TUPLES:
            return []
        if self._result is None:
            self.state = OperatorState.FETCHING
            self._result = iter(dedup_document_order(self._matches()))
        block = list(islice(self._result, max_n))
        if len(block) < max_n:
            self.state = OperatorState.OUT_OF_TUPLES
        return block


class RootOperator(Operator):
    """``R1`` — passes its context child's tuples through."""

    def __init__(
        self,
        store: MassStore,
        child: Operator | None,
        guard: "QueryGuard | None" = None,
        block: BlockConfig | None = None,
    ):
        super().__init__(store, guard, block)
        self.child = child
        self.emits_prefix_monotone = (
            child is None or child.emits_prefix_monotone
        )

    def reset(self, context: FlexKey | None) -> None:
        self.state = OperatorState.INITIAL
        if self.child is not None:
            self.child.reset(context)

    def next_block(self, max_n: int) -> list[FlexKey]:
        if self.guard is not None:
            self.guard.checkpoint()
        if self.child is None or self.state is OperatorState.OUT_OF_TUPLES:
            self.state = OperatorState.OUT_OF_TUPLES
            return []
        self.state = OperatorState.FETCHING
        block = self.child.next_block(max_n)
        if len(block) < max_n:
            self.state = OperatorState.OUT_OF_TUPLES
        return block


# -- predicates -----------------------------------------------------------------------


def _expr_uses_last(expr: ExprNode) -> bool:
    if isinstance(expr, FunctionNode) and expr.name == "last":
        return True
    for child in expr.children():
        if isinstance(child, ExprNode) and _expr_uses_last(child):
            return True
    return False


def _position_stop_bound(expr: ExprNode) -> int | None:
    """The largest position a predicate can accept, if statically known.

    ``[3]`` accepts only position 3; ``[position() <= k]`` and
    ``[position() < k]`` accept nothing past k.  Knowing the bound lets
    the stage stop pulling candidates from the index — the "position
    predicates with use of clustered indexes" support the paper claims.
    """
    if isinstance(expr, NumberNode):
        if expr.value == int(expr.value) and expr.value >= 1:
            return int(expr.value)
        return 0  # a non-integral position matches nothing
    if isinstance(expr, BinaryPredicateNode):
        sides = (expr.left, expr.right)
        position = next(
            (side for side in sides
             if isinstance(side, FunctionNode) and side.name == "position"),
            None,
        )
        number = next((side for side in sides if isinstance(side, NumberNode)), None)
        if position is None or number is None:
            return None
        # normalise to position OP number
        op = expr.op
        if sides[0] is number:
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        value = number.value
        if op == "=":
            return int(value) if value == int(value) and value >= 1 else 0
        if op == "<=":
            return max(0, int(math.floor(value)))
        if op == "<":
            bound = math.ceil(value) - 1 if value == int(value) else math.floor(value)
            return max(0, int(bound))
    return None


class CompiledPredicate:
    """One predicate stage of a step operator.

    Implements the XPath filtering rule: evaluate the expression for every
    candidate with ``position()`` = its 1-based index in this stage (in
    axis order); a numeric result keeps only that position, anything else
    is taken as a boolean.  Stages that mention ``last()`` buffer the
    stage input (the only place pipelining must pause); stages with a
    statically-known position ceiling stop pulling candidates at it.
    """

    def __init__(self, expr: ExprNode, evaluator: "ExpressionEvaluator"):
        self.expr = expr
        self.evaluator = evaluator
        self.uses_last = _expr_uses_last(expr)
        self.stop_after = None if self.uses_last else _position_stop_bound(expr)

    def _keep(self, store: MassStore, key: FlexKey, position: int, last) -> bool:
        context = EvalContext(store, key, position, last, guard=self.evaluator.guard)
        value = self.evaluator.evaluate(self.expr, context)
        if isinstance(value, float):
            return float(position) == value
        return to_boolean(value)

    def filter(
        self, store: MassStore, candidates: Iterator[FlexKey]
    ) -> Iterator[FlexKey]:
        # Checkpoint per candidate, not per accepted tuple: a predicate
        # that rejects almost everything must still hit the governor.
        guard = self.evaluator.guard
        if self.uses_last:
            buffered = list(candidates)
            total = len(buffered)
            for position, key in enumerate(buffered, start=1):
                if guard is not None:
                    guard.checkpoint()
                if self._keep(store, key, position, total):
                    yield key
            return
        position = 0
        for key in candidates:
            position += 1
            if guard is not None:
                guard.checkpoint()
            if self._keep(store, key, position, _no_last):
                yield key
            if self.stop_after is not None and position >= self.stop_after:
                return  # no later candidate can satisfy the position bound


def _no_last() -> int:
    raise ExecutionError("last() used in a non-buffered predicate stage")


class ExpressionEvaluator:
    """Evaluates predicate-expression trees against an :class:`EvalContext`."""

    def __init__(
        self,
        store: MassStore,
        guard: "QueryGuard | None" = None,
        block: BlockConfig | None = None,
    ):
        self.store = store
        self.guard = guard
        self.block = block if block is not None else TUPLE_AT_A_TIME

    # -- dispatch -----------------------------------------------------------

    def evaluate(self, expr: ExprNode, context: EvalContext):
        if isinstance(expr, LiteralNode):
            return expr.value
        if isinstance(expr, NumberNode):
            return expr.value
        if isinstance(expr, ExistsNode):
            return not self._node_set(expr.path, context).is_empty()
        if isinstance(expr, PathExprNode):
            return self._node_set(expr.path, context)
        if isinstance(expr, NegateNode):
            return -to_number(self.evaluate(expr.operand, context))
        if isinstance(expr, BinaryPredicateNode):
            return self._binary(expr, context)
        if isinstance(expr, FunctionNode):
            return self._function(expr, context)
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    # -- node sets ------------------------------------------------------------

    def _node_set(self, path: PlanNode, context: EvalContext) -> NodeSetValue:
        operator = build_operators(self.store, path, self, guard=self.guard)
        key = context.key

        def iterate() -> Iterator[FlexKey]:
            operator.reset(key)
            return operator.iterate()

        count_fast = None
        if (
            isinstance(path, StepNode)
            and path.context_child is None
            and not path.predicates
        ):
            # A bare axis step: count() can try the index-only range count
            # (exact for descendant/following ranges) and skip iteration.
            store, axis, test = self.store, path.axis, path.test

            def count_fast() -> int | None:
                return axis_count_exact(store, key, axis, test)

        return NodeSetValue(iterate, self.store, count_fast)

    # -- binary operators --------------------------------------------------------

    def _binary(self, expr: BinaryPredicateNode, context: EvalContext):
        op = expr.op
        if op == "and":
            return to_boolean(self.evaluate(expr.left, context)) and to_boolean(
                self.evaluate(expr.right, context)
            )
        if op == "or":
            return to_boolean(self.evaluate(expr.left, context)) or to_boolean(
                self.evaluate(expr.right, context)
            )
        left = self.evaluate(expr.left, context)
        right = self.evaluate(expr.right, context)
        if op in ("=", "!="):
            return self._equality(op, left, right)
        if op in ("<", "<=", ">", ">="):
            return self._relational(op, left, right)
        return self._arithmetic(op, left, right)

    def _equality(self, op: str, left, right) -> bool:
        if isinstance(left, NodeSetValue) or isinstance(right, NodeSetValue):
            return self._node_set_compare(op, left, right)
        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, float) or isinstance(right, float):
            result = to_number(left) == to_number(right)
        else:
            result = to_string(left) == to_string(right)
        return result if op == "=" else not result

    def _relational(self, op: str, left, right) -> bool:
        if isinstance(left, NodeSetValue) or isinstance(right, NodeSetValue):
            return self._node_set_compare(op, left, right)
        return _numeric_compare(op, to_number(left), to_number(right))

    def _node_set_compare(self, op: str, left, right) -> bool:
        """Existential node-set comparison semantics of XPath 1.0."""
        if isinstance(left, NodeSetValue) and isinstance(right, NodeSetValue):
            right_values = list(right.string_values())
            for left_value in left.string_values():
                for right_value in right_values:
                    if _string_pair_compare(op, left_value, right_value):
                        return True
            return False
        if isinstance(right, NodeSetValue):
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
            return self._node_set_compare(flipped, right, left)
        assert isinstance(left, NodeSetValue)
        if isinstance(right, bool):
            return _boolean_pair_compare(op, to_boolean(left), right)
        for value in left.string_values():
            if isinstance(right, float):
                if _numeric_compare_eq(op, to_number(value), right):
                    return True
            elif op in ("=", "!="):
                if (value == right) == (op == "="):
                    return True
            else:
                if _numeric_compare(op, to_number(value), to_number(right)):
                    return True
        return False

    def _arithmetic(self, op: str, left, right) -> float:
        a = to_number(left)
        b = to_number(right)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "div":
            if b == 0:
                return math.nan if a == 0 else math.copysign(math.inf, a)
            return a / b
        if op == "mod":
            if b == 0:
                return math.nan
            return math.fmod(a, b)
        raise ExecutionError(f"unknown operator {op!r}")

    # -- functions ----------------------------------------------------------------

    def _function(self, expr: FunctionNode, context: EvalContext):
        name = expr.name
        args = expr.args
        if name == "position":
            return float(context.position)
        if name == "last":
            return float(context.last())
        if name == "count":
            value = self.evaluate(args[0], context)
            if not isinstance(value, NodeSetValue):
                raise ExecutionError("count() requires a node-set")
            return float(value.count())
        if name == "not":
            return not to_boolean(self.evaluate(args[0], context))
        if name == "true":
            return True
        if name == "false":
            return False
        if name == "contains":
            return to_string(self.evaluate(args[0], context)) .find(
                to_string(self.evaluate(args[1], context))
            ) >= 0
        if name == "starts-with":
            return to_string(self.evaluate(args[0], context)).startswith(
                to_string(self.evaluate(args[1], context))
            )
        if name == "string":
            if not args:
                return self.store.string_value(context.key)
            return to_string(self.evaluate(args[0], context))
        if name == "number":
            if not args:
                return to_number(self.store.string_value(context.key))
            return to_number(self.evaluate(args[0], context))
        if name == "string-length":
            if not args:
                return float(len(self.store.string_value(context.key)))
            return float(len(to_string(self.evaluate(args[0], context))))
        if name == "normalize-space":
            text = (
                self.store.string_value(context.key)
                if not args
                else to_string(self.evaluate(args[0], context))
            )
            return " ".join(text.split())
        if name in ("name", "local-name"):
            key = context.key
            if args:
                value = self.evaluate(args[0], context)
                if not isinstance(value, NodeSetValue):
                    raise ExecutionError(f"{name}() requires a node-set")
                key = value.first_key()
                if key is None:
                    return ""
            record = self.store.require(key)
            if name == "local-name" and ":" in record.name:
                return record.name.split(":", 1)[1]
            return record.name
        if name == "concat":
            return "".join(to_string(self.evaluate(arg, context)) for arg in args)
        if name == "sum":
            value = self.evaluate(args[0], context)
            if not isinstance(value, NodeSetValue):
                raise ExecutionError("sum() requires a node-set")
            return float(sum(to_number(text) for text in value.string_values()))
        if name == "boolean":
            return to_boolean(self.evaluate(args[0], context))
        if name == "substring":
            return _substring(
                to_string(self.evaluate(args[0], context)),
                to_number(self.evaluate(args[1], context)),
                to_number(self.evaluate(args[2], context)) if len(args) > 2 else None,
            )
        if name == "substring-before":
            haystack = to_string(self.evaluate(args[0], context))
            needle = to_string(self.evaluate(args[1], context))
            index = haystack.find(needle)
            return haystack[:index] if index >= 0 else ""
        if name == "substring-after":
            haystack = to_string(self.evaluate(args[0], context))
            needle = to_string(self.evaluate(args[1], context))
            index = haystack.find(needle)
            return haystack[index + len(needle):] if index >= 0 else ""
        if name == "translate":
            return _translate(
                to_string(self.evaluate(args[0], context)),
                to_string(self.evaluate(args[1], context)),
                to_string(self.evaluate(args[2], context)),
            )
        if name == "floor":
            return float(math.floor(to_number(self.evaluate(args[0], context))))
        if name == "ceiling":
            return float(math.ceil(to_number(self.evaluate(args[0], context))))
        if name == "round":
            number = to_number(self.evaluate(args[0], context))
            if math.isnan(number) or math.isinf(number):
                return number
            return float(math.floor(number + 0.5))
        raise ExecutionError(f"unimplemented function {name}()")


def _round_half_up(value: float) -> float:
    """XPath round(): floor(x + 0.5), passing infinities through."""
    if math.isinf(value) or math.isnan(value):
        return value
    return math.floor(value + 0.5)


def _substring(text: str, start: float, length: float | None) -> str:
    """XPath 1.0 substring(): 1-based, round() on both arguments, and the
    spec's infinity/NaN corner cases (§4.2)."""
    begin = _round_half_up(start)
    if math.isnan(begin):
        return ""
    if length is None:
        end = math.inf
    else:
        end = begin + _round_half_up(length)  # -inf + inf = NaN: matches nothing
    if math.isnan(end):
        return ""
    pieces = []
    for index, char in enumerate(text, start=1):
        if index >= begin and index < end:
            pieces.append(char)
    return "".join(pieces)


def _translate(text: str, source: str, target: str) -> str:
    """XPath 1.0 translate(): map/remove characters, first mapping wins."""
    mapping: dict[str, str | None] = {}
    for index, char in enumerate(source):
        if char not in mapping:
            mapping[char] = target[index] if index < len(target) else None
    pieces = []
    for char in text:
        if char in mapping:
            replacement = mapping[char]
            if replacement is not None:
                pieces.append(replacement)
        else:
            pieces.append(char)
    return "".join(pieces)


def _numeric_compare(op: str, a: float, b: float) -> bool:
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise ExecutionError(f"not a relational operator: {op!r}")


def _numeric_compare_eq(op: str, a: float, b: float) -> bool:
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    return _numeric_compare(op, a, b)


def _string_pair_compare(op: str, a: str, b: str) -> bool:
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    return _numeric_compare(op, to_number(a), to_number(b))


def _boolean_pair_compare(op: str, a: bool, b: bool) -> bool:
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    return _numeric_compare(op, to_number(a), to_number(b))


# -- plan → operators --------------------------------------------------------------------


def build_operators(
    store: MassStore,
    node: PlanNode,
    evaluator: "ExpressionEvaluator | None" = None,
    guard: "QueryGuard | None" = None,
    block: BlockConfig | None = None,
) -> Operator:
    """Instantiate the runtime operator tree for a plan subtree.

    The same ``guard`` threads into every operator and into the predicate
    evaluator, so nested predicate sub-plans are governed too; likewise
    the :class:`BlockConfig` (absent = tuple-at-a-time, the legacy mode).
    """
    if evaluator is None:
        evaluator = ExpressionEvaluator(store, guard, block)
    if block is None:
        block = evaluator.block
    predicates = [CompiledPredicate(expr, evaluator) for expr in node.predicates]
    if isinstance(node, RootNode):
        child = (
            build_operators(store, node.context_child, evaluator, guard, block)
            if node.context_child is not None
            else None
        )
        return RootOperator(store, child, guard, block)
    if isinstance(node, StepNode):
        child = (
            build_operators(store, node.context_child, evaluator, guard, block)
            if node.context_child is not None
            else None
        )
        return StepOperator(store, node, child, predicates, guard, block)
    if isinstance(node, ValueStepNode):
        return ValueStepOperator(
            store, node.value, predicates, node.text_only, guard, block
        )
    if isinstance(node, FusedPathScanNode):
        if node.context_child is not None:
            raise PlanError("a fused path scan must be a context-path leaf")
        # Imported here: repro.algebra.fused builds on this module's
        # Operator protocol, so a top-level import would be circular.
        from repro.algebra.fused import FusedPathScanOperator

        return FusedPathScanOperator(store, node, predicates, guard, block)
    if isinstance(node, UnionNode):
        branches = [
            build_operators(store, branch, evaluator, guard, block)
            for branch in node.branches
        ]
        return UnionOperator(store, branches, guard, block)
    if isinstance(node, JoinNode):
        left = build_operators(store, node.left, evaluator, guard, block)
        right = build_operators(store, node.right, evaluator, guard, block)
        return JoinOperator(store, left, right, node.condition, guard, block)
    raise PlanError(f"cannot execute plan node {type(node).__name__}")


def execute_plan(
    plan: QueryPlan,
    store: MassStore,
    context: FlexKey | None = None,
    guard: "QueryGuard | None" = None,
    block: BlockConfig | None = None,
) -> Iterator[FlexKey]:
    """Run a plan, yielding result keys in pipeline order.

    ``context`` defaults to the document root — the engine's "dynamic
    setting of context" for the leaf operator of the context path.  An
    XQuery host would pass other context keys here.  A ``guard`` binds to
    the store (page-budget baseline, deadline start) and tallies every
    emitted tuple against the result cap.  ``block`` selects the batched
    pipeline (None = tuple-at-a-time); context coalescing is withheld from
    plans that do not deduplicate their output, because coalescing
    collapses the duplicate hits nested contexts produce.
    """
    if block is not None and block.coalesce and not plan.root.distinct:
        block = dataclass_replace(block, coalesce=False)
    operator = build_operators(store, plan.root, guard=guard, block=block)
    if guard is not None:
        guard.bind(store)
    operator.reset(context if context is not None else FlexKey.document())
    if block is not None and block.enabled and block.size > 1:
        return _block_iterate(operator, block.size, guard)
    if guard is None:
        return operator.iterate()
    return _governed_iterate(operator, guard)


def _governed_iterate(operator: Operator, guard: "QueryGuard") -> Iterator[FlexKey]:
    for key in operator.iterate():
        guard.tally_result()
        yield key


def _block_iterate(
    operator: Operator, size: int, guard: "QueryGuard | None"
) -> Iterator[FlexKey]:
    """Drive the root operator block-at-a-time, tallying per result key."""
    while True:
        block = operator.next_block(size)
        for key in block:
            if guard is not None:
                guard.tally_result()
            yield key
        if len(block) < size:
            return
