"""Default-plan construction: parse tree → physical plan (Section V-A).

Each parse-tree node maps to exactly one VAMANA operator.  The parse tree
of ``descendant::name/parent::*/self::person/address`` becomes the chain

    R1 ← φ(child::address) ← φ(self::person) ← φ(parent::*) ← φ(descendant::name)

where arrows point at context children (compare Figure 4a), and every
XPath predicate becomes an expression tree attached to its step.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.xpath import ast
from repro.xpath.parser import parse_xpath
from repro.algebra.plan import (
    BinaryPredicateNode,
    ExistsNode,
    ExprNode,
    FunctionNode,
    LiteralNode,
    NegateNode,
    NumberNode,
    PathExprNode,
    PlanNode,
    QueryPlan,
    RootNode,
    StepNode,
    UnionNode,
)


def build_default_plan(expression: str | ast.XPathNode) -> QueryPlan:
    """Compile an XPath expression into the default (unoptimized) plan.

    Accepts either source text or an already-parsed tree.  Raises
    :class:`PlanError` if the expression is not a node-set query (use the
    engine's ``evaluate_value`` for general value expressions).
    """
    if isinstance(expression, str):
        source = expression
        tree = parse_xpath(expression)
    else:
        source = expression.unparse()
        tree = expression
    path = _build_path_node(tree)
    if path is None:
        raise PlanError(
            f"not a node-set expression: {source!r} "
            "(general expressions are evaluated by VamanaEngine.evaluate_value)"
        )
    plan = QueryPlan(RootNode(path), expression=source)
    plan.renumber()
    return plan


def _build_path_node(tree: ast.XPathNode) -> PlanNode | None:
    """Build the tuple-producing operator chain, or None for value exprs."""
    if isinstance(tree, ast.LocationPath):
        return _build_location_path(tree)
    if isinstance(tree, ast.UnionExpr):
        branches = []
        for branch in tree.branches:
            node = _build_path_node(branch)
            if node is None:
                raise PlanError("union branches must be location paths")
            branches.append(node)
        return UnionNode(branches)
    return None


def _build_location_path(path: ast.LocationPath) -> PlanNode:
    if not path.steps:
        # Bare '/': the document node itself.
        from repro.model import Axis, NodeTest

        return StepNode(Axis.SELF, NodeTest.node())
    node: PlanNode | None = None
    for step in _collapse_abbreviations(path.steps):
        step_node = StepNode(step.axis, step.test, context_child=node)
        for predicate in step.predicates:
            step_node.predicates.append(build_expr(predicate))
        node = step_node
    assert node is not None
    return node


def _collapse_abbreviations(steps: tuple[ast.Step, ...]) -> list[ast.Step]:
    """Fold ``descendant-or-self::node()/child::x`` into ``descendant::x``.

    The parser expands ``//`` into two steps; the paper's *default* plans
    already show the pair as the single operator ``φ^{//::x}`` (Figure 4),
    so the fold belongs to compilation, not optimization.  It is skipped
    when the child step carries positional predicates, whose meaning
    depends on per-context candidate numbering.
    """
    from repro.model import Axis, NodeTestKind

    collapsed: list[ast.Step] = []
    for step in steps:
        previous = collapsed[-1] if collapsed else None
        if (
            previous is not None
            and previous.axis is Axis.DESCENDANT_OR_SELF
            and previous.test.kind is NodeTestKind.NODE
            and not previous.predicates
            and step.axis is Axis.CHILD
            and not any(_positional_ast(predicate) for predicate in step.predicates)
        ):
            collapsed[-1] = ast.Step(Axis.DESCENDANT, step.test, step.predicates)
            continue
        collapsed.append(step)
    return collapsed


_NUMERIC_FUNCTIONS = frozenset(
    {"position", "last", "count", "string-length", "sum", "number",
     "floor", "ceiling", "round"}
)


def _positional_ast(tree: ast.XPathNode) -> bool:
    """Does a predicate's meaning depend on candidate order?

    True when the predicate mentions ``position()``/``last()`` anywhere,
    or when its top level can evaluate to a number (the ``[3]`` rule).
    """
    if _mentions_position(tree):
        return True
    if isinstance(tree, (ast.NumberLiteral, ast.Negate, ast.BinaryOp)):
        return True
    if isinstance(tree, ast.FunctionCall) and tree.name in _NUMERIC_FUNCTIONS:
        return True
    return False


def _mentions_position(tree: ast.XPathNode) -> bool:
    if isinstance(tree, ast.FunctionCall):
        if tree.name in ("position", "last"):
            return True
        return any(_mentions_position(arg) for arg in tree.args)
    for attribute in ("left", "right", "operand"):
        child = getattr(tree, attribute, None)
        if child is not None and _mentions_position(child):
            return True
    if isinstance(tree, ast.LocationPath):
        return any(
            _mentions_position(predicate)
            for step in tree.steps
            for predicate in step.predicates
        )
    return False


def build_expr(tree: ast.XPathNode) -> ExprNode:
    """Compile a predicate expression into its operator tree.

    A relative location path used as a boolean becomes an exist predicate
    ``ξ``; one used as a comparison operand stays a path expression whose
    tuples are compared by the enclosing binary predicate ``β`` — exactly
    the Figure 4b shape for ``text() = 'Yung Flach'``.
    """
    if isinstance(tree, (ast.LocationPath, ast.UnionExpr)):
        path = _build_path_node(tree)
        if path is None:
            raise PlanError(f"unsupported path expression {tree.unparse()!r}")
        return ExistsNode(path)
    return _build_value_expr(tree)


def _build_value_expr(tree: ast.XPathNode) -> ExprNode:
    if isinstance(tree, (ast.LocationPath, ast.UnionExpr)):
        path = _build_path_node(tree)
        if path is None:
            raise PlanError(f"unsupported path expression {tree.unparse()!r}")
        return PathExprNode(path)
    if isinstance(tree, ast.StringLiteral):
        return LiteralNode(tree.value)
    if isinstance(tree, ast.NumberLiteral):
        return NumberNode(tree.value)
    if isinstance(tree, ast.Comparison):
        return BinaryPredicateNode(
            tree.op, _build_value_expr(tree.left), _build_value_expr(tree.right)
        )
    if isinstance(tree, ast.AndExpr):
        return BinaryPredicateNode("and", build_expr(tree.left), build_expr(tree.right))
    if isinstance(tree, ast.OrExpr):
        return BinaryPredicateNode("or", build_expr(tree.left), build_expr(tree.right))
    if isinstance(tree, ast.BinaryOp):
        return BinaryPredicateNode(
            tree.op, _build_value_expr(tree.left), _build_value_expr(tree.right)
        )
    if isinstance(tree, ast.Negate):
        return NegateNode(_build_value_expr(tree.operand))
    if isinstance(tree, ast.FunctionCall):
        args = []
        for arg in tree.args:
            if isinstance(arg, (ast.LocationPath, ast.UnionExpr)):
                args.append(_build_value_expr(arg))
            else:
                args.append(_build_value_expr(arg))
        return FunctionNode(tree.name, args)
    if isinstance(tree, ast.PathExpr):
        raise PlanError(
            f"filter expressions are not supported: {tree.unparse()!r}"
        )
    raise PlanError(f"cannot compile expression node {type(tree).__name__}")
