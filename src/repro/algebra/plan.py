"""Physical plan nodes.

A VAMANA query plan is a tree of operators, each denoted in the paper as
``op^cond_id``.  Two node families exist:

* **tuple-producing operators** (:class:`PlanNode` subclasses): the root,
  step operators ``φ^{axis::nodetest}``, the value-index step
  ``φ^{value::'v'}`` introduced by the Figure 9 rewrite, and unions.
  Each has at most one *context child* providing its context tuples, and
  an optional predicate expression tree.
* **predicate expressions** (:class:`ExprNode` subclasses): the exist
  predicate ``ξ``, the binary predicate ``β^cond``, literals ``L^v``,
  numbers, functions, and boolean/arithmetic combinators.  A predicate
  path (a chain of steps whose innermost context child is None) has its
  leaf context set per candidate tuple — the "dynamic setting of context"
  of Section V-B.

Every node carries mutable cost annotations (``count``, ``tuples_in``,
``tuples_out``, ``selectivity``) written by the estimator and read by the
optimizer; ``clone()`` deep-copies a plan so rewrites never alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.model import Axis, NodeTest


@dataclass
class CostInfo:
    """The per-operator statistics of Section VI-B."""

    count: int | None = None  # COUNT(op): index matches for the node test
    text_count: int | None = None  # TC(op): literal occurrences
    tuples_in: int | None = None  # IN(op)
    tuples_out: int | None = None  # OUT(op), after predicate bounds
    raw_out: int | None = None  # OUT(op) before predicate bounds (Table I)
    selectivity: float | None = None  # scaled IN/OUT ratio

    def annotate(self) -> str:
        parts = []
        if self.count is not None:
            parts.append(f"COUNT={self.count}")
        if self.text_count is not None:
            parts.append(f"TC={self.text_count}")
        if self.tuples_in is not None:
            parts.append(f"IN={self.tuples_in}")
        if self.tuples_out is not None:
            parts.append(f"OUT={self.tuples_out}")
        if self.selectivity is not None:
            parts.append(f"sel={self.selectivity:.3f}")
        return " ".join(parts)


class PlanBase:
    """Shared identity/cost plumbing for plan and expression nodes."""

    def __init__(self) -> None:
        self.op_id: int = 0
        self.cost = CostInfo()

    def symbol(self) -> str:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.symbol()}_{self.op_id}"


class PlanNode(PlanBase):
    """A tuple-producing operator (context path member)."""

    def __init__(self, context_child: "PlanNode | None" = None):
        super().__init__()
        self.context_child = context_child
        self.predicates: list[ExprNode] = []

    # -- tree plumbing ------------------------------------------------------

    def children(self) -> Iterator["PlanBase"]:
        if self.context_child is not None:
            yield self.context_child
        yield from self.predicates

    def clone(self) -> "PlanNode":
        raise NotImplementedError

    def _clone_shared(self, copy: "PlanNode") -> "PlanNode":
        copy.op_id = self.op_id
        copy.cost = replace(self.cost)
        copy.context_child = (
            self.context_child.clone() if self.context_child is not None else None
        )
        copy.predicates = [predicate.clone() for predicate in self.predicates]
        return copy

    def leaf(self) -> "PlanNode":
        """The innermost operator of this context path."""
        node = self
        while node.context_child is not None:
            node = node.context_child
        return node


class RootNode(PlanNode):
    """``R1`` — marks the plan top; returns its context child's tuples.

    ``distinct`` requests document-order duplicate elimination on output
    (the XPath node-*set* semantics); the optimizer may exploit it.
    """

    def __init__(self, context_child: PlanNode | None = None, distinct: bool = True):
        super().__init__(context_child)
        self.distinct = distinct

    def symbol(self) -> str:
        return "R"

    def clone(self) -> "RootNode":
        copy = RootNode(distinct=self.distinct)
        self._clone_shared(copy)
        return copy


class StepNode(PlanNode):
    """``φ^{axis::nodetest}`` — one location step evaluated on the index."""

    def __init__(
        self,
        axis: Axis,
        test: NodeTest,
        context_child: PlanNode | None = None,
    ):
        super().__init__(context_child)
        self.axis = axis
        self.test = test

    def symbol(self) -> str:
        return "Phi"

    def describe(self) -> str:
        return f"Phi_{self.op_id}[{self.axis.value}::{self.test}]"

    def clone(self) -> "StepNode":
        copy = StepNode(self.axis, self.test)
        self._clone_shared(copy)
        return copy


class FusedPathScanNode(PlanNode):
    """``FPS`` — a whole chain of forward steps compiled to one automaton.

    ``steps`` lists the fused ``(axis, test)`` pairs in application order:
    ``steps[0]`` is the step the context feeds (the chain's former leaf),
    ``steps[-1]`` produces the output.  The operator evaluates the whole
    chain in a single document-order scan of the node index, so it always
    sits at the bottom of a context path (``context_child`` is ``None``)
    and emits distinct keys in document order.
    """

    def __init__(
        self,
        steps: list[tuple[Axis, NodeTest]],
        context_child: PlanNode | None = None,
    ):
        super().__init__(context_child)
        self.steps = list(steps)

    def symbol(self) -> str:
        return "FPS"

    def describe(self) -> str:
        path = "/".join(f"{axis.value}::{test}" for axis, test in self.steps)
        return (
            f"FPS_{self.op_id}[{path}; "
            f"steps={len(self.steps)} states={len(self.steps) + 1}]"
        )

    def clone(self) -> "FusedPathScanNode":
        copy = FusedPathScanNode(list(self.steps))
        self._clone_shared(copy)
        return copy


class ValueStepNode(PlanNode):
    """``φ^{value::'v'}`` — the value-index step of the Figure 9 rewrite.

    Yields the nodes whose stored value equals ``value``, straight from
    the value index: the one-lookup evaluation eXist lacks.  ``text_only``
    restricts hits to text nodes (the shape a ``text() = 'v'`` rewrite
    requires — an attribute holding the same string must not match).
    """

    def __init__(
        self,
        value: str,
        context_child: PlanNode | None = None,
        text_only: bool = True,
    ):
        super().__init__(context_child)
        self.value = value
        self.text_only = text_only

    def symbol(self) -> str:
        return "Phi"

    def describe(self) -> str:
        return f"Phi_{self.op_id}[value::{self.value!r}]"

    def clone(self) -> "ValueStepNode":
        copy = ValueStepNode(self.value, text_only=self.text_only)
        self._clone_shared(copy)
        return copy


class UnionNode(PlanNode):
    """Node-set union of several context paths (``|``)."""

    def __init__(self, branches: list[PlanNode]):
        super().__init__(None)
        self.branches = branches

    def symbol(self) -> str:
        return "U"

    def children(self) -> Iterator[PlanBase]:
        yield from self.branches
        yield from self.predicates

    def clone(self) -> "UnionNode":
        copy = UnionNode([branch.clone() for branch in self.branches])
        copy.op_id = self.op_id
        copy.cost = replace(self.cost)
        copy.predicates = [predicate.clone() for predicate in self.predicates]
        return copy


class JoinNode(PlanNode):
    """``J^cond`` — the paper's join operator: two context children.

    Tuples are fetched from both children and the join condition applied
    to each pair; the operator emits the *right* tuple of every satisfying
    pair (deduplicated, document order).  VAMANA itself only needs joins
    when hosting XQuery, so the conditions are the structural/value kinds
    an XQuery front-end would generate:

    * ``value-eq`` — string-values equal (id/idref style),
    * ``ancestor`` — left is an ancestor of right,
    * ``precedes`` — left precedes right in document order.
    """

    CONDITIONS = ("value-eq", "ancestor", "precedes")

    def __init__(self, left: PlanNode, right: PlanNode, condition: str = "value-eq"):
        super().__init__(None)
        if condition not in self.CONDITIONS:
            raise ValueError(f"unknown join condition {condition!r}")
        self.left = left
        self.right = right
        self.condition = condition

    def symbol(self) -> str:
        return "J"

    def describe(self) -> str:
        return f"J_{self.op_id}[{self.condition}]"

    def children(self) -> Iterator[PlanBase]:
        yield self.left
        yield self.right
        yield from self.predicates

    def clone(self) -> "JoinNode":
        copy = JoinNode(self.left.clone(), self.right.clone(), self.condition)
        copy.op_id = self.op_id
        copy.cost = replace(self.cost)
        copy.predicates = [predicate.clone() for predicate in self.predicates]
        return copy


# -- predicate expressions ----------------------------------------------------------


class ExprNode(PlanBase):
    """A predicate-expression operator."""

    def children(self) -> Iterator[PlanBase]:
        return iter(())

    def clone(self) -> "ExprNode":
        raise NotImplementedError

    def _finish_clone(self, copy: "ExprNode") -> "ExprNode":
        copy.op_id = self.op_id
        copy.cost = replace(self.cost)
        return copy


class ExistsNode(ExprNode):
    """``ξ`` — true iff the predicate path yields at least one tuple."""

    def __init__(self, path: PlanNode):
        super().__init__()
        self.path = path

    def symbol(self) -> str:
        return "Xi"

    def children(self) -> Iterator[PlanBase]:
        yield self.path

    def clone(self) -> "ExistsNode":
        return self._finish_clone(ExistsNode(self.path.clone()))  # type: ignore[return-value]


class BinaryPredicateNode(ExprNode):
    """``β^cond`` — comparison or boolean connector over two children.

    ``op`` is one of ``= != < <= > >= and or + - * div mod``.
    """

    def __init__(self, op: str, left: ExprNode, right: ExprNode):
        super().__init__()
        self.op = op
        self.left = left
        self.right = right

    def symbol(self) -> str:
        return "Beta"

    def describe(self) -> str:
        return f"Beta_{self.op_id}[{self.op}]"

    def children(self) -> Iterator[PlanBase]:
        yield self.left
        yield self.right

    def clone(self) -> "BinaryPredicateNode":
        return self._finish_clone(
            BinaryPredicateNode(self.op, self.left.clone(), self.right.clone())
        )  # type: ignore[return-value]


class PathExprNode(ExprNode):
    """A predicate path used as a value (string-value of its first node)."""

    def __init__(self, path: PlanNode):
        super().__init__()
        self.path = path

    def symbol(self) -> str:
        return "P"

    def children(self) -> Iterator[PlanBase]:
        yield self.path

    def clone(self) -> "PathExprNode":
        return self._finish_clone(PathExprNode(self.path.clone()))  # type: ignore[return-value]


class LiteralNode(ExprNode):
    """``L^v`` — a string literal."""

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def symbol(self) -> str:
        return "L"

    def describe(self) -> str:
        return f"L_{self.op_id}[{self.value!r}]"

    def clone(self) -> "LiteralNode":
        return self._finish_clone(LiteralNode(self.value))  # type: ignore[return-value]


class NumberNode(ExprNode):
    """A numeric literal; a bare ``[n]`` predicate is position() = n."""

    def __init__(self, value: float):
        super().__init__()
        self.value = value

    def symbol(self) -> str:
        return "N"

    def clone(self) -> "NumberNode":
        return self._finish_clone(NumberNode(self.value))  # type: ignore[return-value]


class FunctionNode(ExprNode):
    """A core-library function call (position, last, count, not, …)."""

    def __init__(self, name: str, args: list[ExprNode]):
        super().__init__()
        self.name = name
        self.args = args

    def symbol(self) -> str:
        return "F"

    def describe(self) -> str:
        return f"F_{self.op_id}[{self.name}]"

    def children(self) -> Iterator[PlanBase]:
        yield from self.args

    def clone(self) -> "FunctionNode":
        return self._finish_clone(
            FunctionNode(self.name, [arg.clone() for arg in self.args])
        )  # type: ignore[return-value]


class NegateNode(ExprNode):
    """Unary arithmetic negation."""

    def __init__(self, operand: ExprNode):
        super().__init__()
        self.operand = operand

    def symbol(self) -> str:
        return "Neg"

    def children(self) -> Iterator[PlanBase]:
        yield self.operand

    def clone(self) -> "NegateNode":
        return self._finish_clone(NegateNode(self.operand.clone()))  # type: ignore[return-value]


# -- the plan wrapper -----------------------------------------------------------------


@dataclass
class QueryPlan:
    """A complete physical plan: a root operator plus bookkeeping."""

    root: RootNode
    expression: str = ""

    def clone(self) -> "QueryPlan":
        return QueryPlan(self.root.clone(), self.expression)

    def renumber(self) -> None:
        """Assign operator ids in depth-first order (stable for traces)."""
        next_id = 1
        for node in self.walk():
            node.op_id = next_id
            next_id += 1

    def walk(self) -> Iterator[PlanBase]:
        """Every operator in the plan, root first, depth-first."""

        def visit(node: PlanBase) -> Iterator[PlanBase]:
            yield node
            for child in node.children():
                yield from visit(child)

        return visit(self.root)

    def operators(self) -> list[PlanBase]:
        return list(self.walk())

    def walk_edges(self) -> Iterator[tuple[PlanBase, PlanBase]]:
        """Every (parent, child) edge, cycle-safe.

        Unlike :meth:`walk`, this terminates even on malformed plans where
        a node is shared or a chain loops back on itself: every edge is
        yielded, but each node is *expanded* at most once.  The static
        plan verifier relies on this to diagnose aliasing introduced by a
        buggy rewrite instead of recursing forever.
        """
        expanded: set[int] = {id(self.root)}
        stack: list[PlanBase] = [self.root]
        while stack:
            node = stack.pop()
            for child in node.children():
                yield node, child
                if id(child) not in expanded:
                    expanded.add(id(child))
                    stack.append(child)

    def explain(self, costs: bool = True) -> str:
        """Pretty-print the plan tree with cost annotations."""
        lines: list[str] = []

        def visit(node: PlanBase, indent: int, label: str) -> None:
            annotation = node.cost.annotate() if costs else ""
            suffix = f"    ({annotation})" if annotation else ""
            lines.append("  " * indent + f"{label}{node.describe()}{suffix}")
            if isinstance(node, PlanNode):
                for predicate in node.predicates:
                    visit(predicate, indent + 1, "pred: ")
                if isinstance(node, UnionNode):
                    for branch in node.branches:
                        visit(branch, indent + 1, "ctx: ")
                elif node.context_child is not None:
                    visit(node.context_child, indent + 1, "ctx: ")
            elif isinstance(node, (ExistsNode, PathExprNode)):
                visit(node.path, indent + 1, "path: ")
            else:
                for child in node.children():
                    visit(child, indent + 1, "")

        visit(self.root, 0, "")
        return "\n".join(lines)
