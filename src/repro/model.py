"""Shared query-model vocabulary: the 13 XPath axes and node tests.

Both the storage layer (which turns axes into key ranges) and the XPath
compiler (which parses them) speak this vocabulary, so it lives above both.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.mass.records import NodeKind


class Axis(Enum):
    """All 13 axes of the XPath 1.0 specification."""

    ANCESTOR = "ancestor"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    ATTRIBUTE = "attribute"
    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    FOLLOWING = "following"
    FOLLOWING_SIBLING = "following-sibling"
    NAMESPACE = "namespace"
    PARENT = "parent"
    PRECEDING = "preceding"
    PRECEDING_SIBLING = "preceding-sibling"
    SELF = "self"

    @property
    def is_reverse(self) -> bool:
        """True for axes that deliver nodes in reverse document order."""
        return self in _REVERSE_AXES

    @property
    def principal_kind(self) -> NodeKind:
        """The principal node type a name test selects on this axis."""
        if self is Axis.ATTRIBUTE:
            return NodeKind.ATTRIBUTE
        if self is Axis.NAMESPACE:
            return NodeKind.NAMESPACE
        return NodeKind.ELEMENT

    @property
    def inverse(self) -> "Axis | None":
        """The axis navigating the same edge backwards (used by rewrites).

        ``child``/``parent``, ``descendant``/``ancestor`` and the sibling
        and document-order pairs invert exactly; ``self`` is its own
        inverse.  ``attribute`` inverts to ``parent`` (an attribute's
        parent is its owner element).  Axes without a clean inverse
        (``namespace``, the ``-or-self`` variants) return None.
        """
        return _INVERSES.get(self)


_REVERSE_AXES = frozenset(
    {Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF, Axis.PRECEDING, Axis.PRECEDING_SIBLING}
)

_INVERSES = {
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF: Axis.ANCESTOR_OR_SELF,
    Axis.ANCESTOR_OR_SELF: Axis.DESCENDANT_OR_SELF,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
    Axis.FOLLOWING_SIBLING: Axis.PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.FOLLOWING_SIBLING,
    Axis.SELF: Axis.SELF,
    Axis.ATTRIBUTE: Axis.PARENT,
}

#: Forward axes in document order (everything not reverse; ``self`` counts
#: as forward).
FORWARD_AXES = frozenset(axis for axis in Axis if not axis.is_reverse)


class NodeTestKind(Enum):
    """The node-test families of XPath 1.0."""

    NAME = "name"  # foo — principal-kind nodes named foo
    ANY = "any"  # *   — any principal-kind node
    TEXT = "text"  # text()
    NODE = "node"  # node()
    COMMENT = "comment"  # comment()
    PROCESSING_INSTRUCTION = "processing-instruction"  # processing-instruction(t?)


@dataclass(frozen=True, slots=True)
class NodeTest:
    """A node test: a name test or one of the kind tests."""

    kind: NodeTestKind
    name: str = ""

    @classmethod
    def name_test(cls, name: str) -> "NodeTest":
        if name == "*":
            return cls(NodeTestKind.ANY)
        return cls(NodeTestKind.NAME, name)

    @classmethod
    def text(cls) -> "NodeTest":
        return cls(NodeTestKind.TEXT)

    @classmethod
    def node(cls) -> "NodeTest":
        return cls(NodeTestKind.NODE)

    @classmethod
    def comment(cls) -> "NodeTest":
        return cls(NodeTestKind.COMMENT)

    @classmethod
    def processing_instruction(cls, target: str = "") -> "NodeTest":
        return cls(NodeTestKind.PROCESSING_INSTRUCTION, target)

    def matches(self, kind: NodeKind, name: str, principal: NodeKind) -> bool:
        """Does a node of ``kind``/``name`` satisfy this test on an axis
        whose principal node type is ``principal``?"""
        if self.kind is NodeTestKind.NODE:
            return True
        if self.kind is NodeTestKind.TEXT:
            return kind is NodeKind.TEXT
        if self.kind is NodeTestKind.COMMENT:
            return kind is NodeKind.COMMENT
        if self.kind is NodeTestKind.PROCESSING_INSTRUCTION:
            if kind is not NodeKind.PROCESSING_INSTRUCTION:
                return False
            return not self.name or name == self.name
        if kind is not principal:
            return False
        if self.kind is NodeTestKind.ANY:
            return True
        return name == self.name

    def __str__(self) -> str:
        if self.kind is NodeTestKind.NAME:
            return self.name
        if self.kind is NodeTestKind.ANY:
            return "*"
        if self.kind is NodeTestKind.PROCESSING_INSTRUCTION and self.name:
            return f"processing-instruction('{self.name}')"
        return f"{self.kind.value}()"
