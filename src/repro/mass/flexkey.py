"""FLEX keys — Fast Lexicographical Keys for structural XML encoding.

MASS assigns every node of an XML document a *FLEX key*.  The keys have
three properties that the whole engine relies on:

1. **Order**: lexicographic key order equals document order.
2. **Structure**: the parent's key is a proper prefix of the child's key, so
   parent / ancestor computation is pure key arithmetic and the subtree of a
   node is one contiguous key range.
3. **Insertability**: a fresh key can be generated strictly between any two
   existing sibling keys without touching any other key, so documents accept
   updates with no relabeling (this is what keeps MASS statistics always
   accurate under updates — a core claim of the VAMANA paper).

Representation
--------------

A key is a tuple of *components*, one per tree level; each component is
itself a non-empty tuple of positive integers.  A freshly bulk-loaded
document uses single-integer components ``(2,), (3,), (4,) …`` for the
first, second, third sibling.  Inserting between two siblings extends a
component, e.g. ``(2,) < (2, 2) < (3,)``.

Two reserved values keep the arithmetic sound:

* integer ``0`` appears only in the *subtree sentinel* produced by
  :meth:`FlexKey.subtree_upper_bound`; it is never stored, and it sorts
  after every descendant of a node but before every following node.
* real components never **end** with the integer ``1`` (interior ``1`` s are
  fine).  This guarantees :func:`component_between` always has room to
  produce a new component between two existing ones.

The paper renders keys as dotted letters (``a.d.y.c``); :meth:`FlexKey.pretty`
reproduces that rendering (bijective base-26, ``~`` separating the integers
of an extended component).

Byte encoding
-------------

:attr:`FlexKey.sort_bytes` is an order-preserving byte encoding of the key:
for any two keys ``a`` and ``b``, ``a < b`` iff ``a.sort_bytes <
b.sort_bytes``.  Every integer of a component is encoded as a length prefix
(``0x01``-``0xFE``) followed by its minimal big-endian payload, and each
component is closed with a ``0x00`` terminator.  Because the length prefix
of a real integer is always above ``0x00``, component-prefix keys (i.e.
ancestors) sort first exactly as the tuple order demands, and the parent's
encoding is a strict byte prefix of every descendant's encoding — which is
what lets the indexes turn subtree ranges into flat byte-prefix ranges and
search B+-tree nodes with C-speed ``bytes`` comparisons instead of Python
tuple comparisons.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator, Sequence

Component = tuple[int, ...]

#: First ordinal handed to a bulk-loaded sibling.  Starting at 2 keeps the
#: "never ends with 1" invariant without special cases.
FIRST_ORDINAL = 2


def _check_component(component: Component) -> None:
    if not component:
        raise ValueError("FLEX component must be non-empty")
    if any(part < 1 for part in component):
        raise ValueError(f"FLEX component parts must be >= 1: {component!r}")
    if component[-1] == 1:
        raise ValueError(f"FLEX component must not end with 1: {component!r}")


def component_between(low: Component, high: Component) -> Component:
    """Return a component strictly between ``low`` and ``high``.

    Both inputs must be valid stored components with ``low < high``.  The
    result is a valid stored component (positive integers, does not end in
    ``1``), so insertion capacity is never exhausted.
    """
    if not low < high:
        raise ValueError(f"need low < high, got {low!r} >= {high!r}")
    # Find the first position where the components diverge.
    limit = min(len(low), len(high))
    for index in range(limit):
        if low[index] == high[index]:
            continue
        if high[index] - low[index] >= 2:
            # Room for a fresh integer at the divergence point.
            return low[:index] + (low[index] + 1,)
        # Adjacent integers: extend the *whole* of low — the result is
        # strictly above low (proper extension) and stays below high
        # (it still carries low's smaller integer at the divergence).
        return low + (2,)
    # No divergence before one ran out: low is a proper prefix of high.
    rest = high[limit:]
    return low + _component_before(rest)


def _component_before(component: Component) -> Component:
    """Return a valid component tail strictly below ``component``.

    Helper for the prefix case of :func:`component_between` and for
    inserting before the first sibling.
    """
    head = component[0]
    if head >= 3:
        return (head - 1,)
    if head == 2:
        return (1, 2)
    # head == 1: a stored component cannot *be* just (1,), so there is a
    # remainder to recurse into.
    return (1,) + _component_before(component[1:])


def encode_components(components: Sequence[Component]) -> bytes:
    """Order-preserving byte encoding of a component sequence.

    Lexicographic order of the result equals tuple order of the input for
    every well-formed key, including the ``0`` sentinel produced by
    :meth:`FlexKey.subtree_upper_bound` and extended components from
    :func:`component_between`.
    """
    out = bytearray()
    for component in components:
        for value in component:
            if 0 <= value <= 0xFF:
                # Fast path: almost every FLEX integer is a small ordinal.
                out.append(1)
                out.append(value)
            else:
                payload = value.to_bytes((value.bit_length() + 7) // 8, "big")
                if len(payload) > 0xFE:
                    raise ValueError(f"FLEX integer too large to encode: {value}")
                out.append(len(payload))
                out += payload
        out.append(0)
    return bytes(out)


def decode_sort_bytes(data: bytes) -> "FlexKey":
    """Inverse of :attr:`FlexKey.sort_bytes` for *stored* keys.

    The coordinator of a sharded database receives result keys from
    worker processes as raw ``sort_bytes`` (the merge compares them
    without decoding); this reconstructs the key when the structure is
    needed (labels, record fetches).  Sentinel encodings (the reserved
    integer ``0`` of subtree upper bounds) are not valid input — they are
    never stored, so they never cross the wire.
    """
    components: list[Component] = []
    parts: list[int] = []
    offset = 0
    size = len(data)
    while offset < size:
        length = data[offset]
        offset += 1
        if length == 0:
            components.append(tuple(parts))
            parts = []
            continue
        if offset + length > size:
            raise ValueError(f"truncated FLEX byte encoding at offset {offset}")
        parts.append(int.from_bytes(data[offset : offset + length], "big"))
        offset += length
    if parts:
        raise ValueError("FLEX byte encoding missing component terminator")
    key = FlexKey(tuple(components))
    key._sort_bytes = bytes(data)
    return key


def component_after(component: Component) -> Component:
    """Return a single-integer component strictly above ``component``."""
    return (component[0] + 1,)


def component_before(component: Component) -> Component:
    """Return a valid component strictly below ``component``."""
    return _component_before(component)


@total_ordering
class FlexKey:
    """An immutable FLEX key: a tuple of components, one per tree level.

    The empty key ``FlexKey.document()`` denotes the document node itself
    (depth 0); the document element of the paper's examples gets key ``a``.
    """

    __slots__ = ("_components", "_sort_bytes")

    def __init__(self, components: Sequence[Component] = ()):
        components = tuple(tuple(part) for part in components)
        for component in components:
            _check_component(component)
        self._components = components
        self._sort_bytes: bytes | None = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def document(cls) -> "FlexKey":
        """The key of the (virtual) document node."""
        return _DOCUMENT_KEY

    @classmethod
    def from_ordinals(cls, ordinals: Sequence[int]) -> "FlexKey":
        """Build a key from plain sibling ordinals (0-based, bulk-load style).

        ``from_ordinals([0, 2])`` is the third child of the first child of
        the document node.
        """
        return cls(tuple((ordinal + FIRST_ORDINAL,) for ordinal in ordinals))

    # -- basic structure ---------------------------------------------------

    @property
    def components(self) -> tuple[Component, ...]:
        return self._components

    @property
    def depth(self) -> int:
        """Tree depth: 0 for the document node, 1 for the document element."""
        return len(self._components)

    @property
    def sort_bytes(self) -> bytes:
        """Order-preserving byte encoding (lazily computed and cached).

        ``a < b`` iff ``a.sort_bytes < b.sort_bytes``; an ancestor's
        encoding is a strict prefix of every descendant's encoding.
        """
        cached = self._sort_bytes
        if cached is None:
            cached = encode_components(self._components)
            self._sort_bytes = cached
        return cached

    def is_document(self) -> bool:
        return not self._components

    def parent(self) -> "FlexKey | None":
        """The parent key, or ``None`` for the document node."""
        if not self._components:
            return None
        return FlexKey(self._components[:-1])

    def ancestors(self) -> Iterator["FlexKey"]:
        """All proper ancestors, nearest first, ending at the document node."""
        for length in range(len(self._components) - 1, -1, -1):
            yield FlexKey(self._components[:length])

    def child(self, ordinal: int) -> "FlexKey":
        """The bulk-load key of the ``ordinal``-th (0-based) child."""
        return FlexKey(self._components + ((ordinal + FIRST_ORDINAL,),))

    def last_component(self) -> Component:
        if not self._components:
            raise ValueError("document key has no components")
        return self._components[-1]

    # -- relationships -----------------------------------------------------

    def is_ancestor_of(self, other: "FlexKey") -> bool:
        """True if self is a *proper* ancestor of other."""
        mine = self._components
        theirs = other._components
        return len(mine) < len(theirs) and theirs[: len(mine)] == mine

    def is_descendant_of(self, other: "FlexKey") -> bool:
        return other.is_ancestor_of(self)

    def is_parent_of(self, other: "FlexKey") -> bool:
        return (
            len(self._components) + 1 == len(other._components)
            and other._components[: len(self._components)] == self._components
        )

    def is_sibling_of(self, other: "FlexKey") -> bool:
        """True if both keys share a parent (a key is not its own sibling)."""
        if self == other:
            return False
        return (
            len(self._components) == len(other._components)
            and self._components[:-1] == other._components[:-1]
        )

    def common_ancestor(self, other: "FlexKey") -> "FlexKey":
        """The deepest key that is an ancestor-or-self of both keys."""
        shared: list[Component] = []
        for mine, theirs in zip(self._components, other._components):
            if mine != theirs:
                break
            shared.append(mine)
        return FlexKey(tuple(shared))

    # -- range bounds ------------------------------------------------------

    def subtree_upper_bound(self) -> "FlexKey":
        """Exclusive upper bound of this node's subtree key range.

        Every descendant key sorts strictly below the bound and every
        following node's key sorts at or above it.  The bound itself uses
        the reserved integer 0 and is never a stored key.
        """
        if not self._components:
            raise ValueError("the document subtree has no upper bound")
        sentinel = self._components[-1] + (0,)
        result = FlexKey.__new__(FlexKey)
        result._components = self._components[:-1] + (sentinel,)
        result._sort_bytes = None
        return result

    def subtree_upper_bound_bytes(self) -> bytes:
        """``subtree_upper_bound().sort_bytes`` without building the key.

        The bound's encoding is this key's encoding with the final
        component terminator replaced by the sentinel integer ``0``
        (``0x01 0x00``) and a fresh terminator — the exclusive upper end
        of the subtree's byte-prefix range.
        """
        if not self._components:
            raise ValueError("the document subtree has no upper bound")
        return self.sort_bytes[:-1] + b"\x01\x00\x00"

    # -- sibling key generation (update support) ----------------------------

    def sibling_between(self, right: "FlexKey") -> "FlexKey":
        """A fresh sibling key strictly between ``self`` and ``right``.

        Both keys must be siblings with ``self < right``.
        """
        if not self.is_sibling_of(right):
            raise ValueError(f"{self} and {right} are not siblings")
        if not self < right:
            raise ValueError(f"need self < right, got {self} >= {right}")
        component = component_between(self.last_component(), right.last_component())
        return FlexKey(self._components[:-1] + (component,))

    def sibling_after(self) -> "FlexKey":
        """A fresh sibling key strictly after ``self`` (append position)."""
        component = component_after(self.last_component())
        return FlexKey(self._components[:-1] + (component,))

    def sibling_before(self) -> "FlexKey":
        """A fresh sibling key strictly before ``self`` (prepend position)."""
        component = component_before(self.last_component())
        return FlexKey(self._components[:-1] + (component,))

    # -- rendering ----------------------------------------------------------

    def pretty(self) -> str:
        """Paper-style rendering: ``a.d.y.c`` (``~`` joins extended parts)."""
        if not self._components:
            return "<doc>"
        return ".".join(
            "~".join(_int_to_letters(part) for part in component)
            for component in self._components
        )

    @classmethod
    def parse(cls, text: str) -> "FlexKey":
        """Inverse of :meth:`pretty` (accepts ``<doc>`` for the document)."""
        if text == "<doc>":
            return cls.document()
        components = tuple(
            tuple(_letters_to_int(part) for part in chunk.split("~"))
            for chunk in text.split(".")
        )
        return cls(components)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlexKey):
            return NotImplemented
        return self._components == other._components

    def __lt__(self, other: "FlexKey") -> bool:
        if not isinstance(other, FlexKey):
            return NotImplemented
        return self._components < other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __repr__(self) -> str:
        return f"FlexKey({self.pretty()!r})"

    def __len__(self) -> int:
        return len(self._components)


def _int_to_letters(value: int) -> str:
    """Bijective base-26 rendering: 1 -> a, 2 -> b, …, 27 -> aa.

    The reserved sentinel integer 0 renders as ``*`` so bounds print
    legibly in traces.
    """
    if value == 0:
        return "*"
    letters: list[str] = []
    while value > 0:
        value, remainder = divmod(value - 1, 26)
        letters.append(chr(ord("a") + remainder))
    return "".join(reversed(letters))


def _letters_to_int(text: str) -> int:
    if text == "*":
        return 0
    value = 0
    for char in text:
        if not "a" <= char <= "z":
            raise ValueError(f"invalid FLEX letter {char!r} in {text!r}")
        value = value * 26 + (ord(char) - ord("a") + 1)
    return value


_DOCUMENT_KEY = FlexKey(())
