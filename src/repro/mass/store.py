"""The MASS store facade.

One :class:`MassStore` holds one indexed XML document (a database holding
many documents is a collection of stores managed at the engine layer).  It
owns the page manager, buffer pool and the three clustered indexes, and
exposes exactly the operations the paper attributes to MASS:

* index-based iteration of *all 13 axes* from any context node,
* value-based lookups in one index probe,
* exact counts for node tests and text values — globally, per document, or
  scoped to any subtree — computed on the index level without touching
  data, and
* node-level updates (insert/delete) that keep every index and therefore
  every statistic exact.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import StorageError
from repro.mass.axes import AxisHit, axis_count_upper, axis_iter
from repro.mass.flexkey import FlexKey
from repro.mass.indexes import NameIndex, NodeIndex, ValueIndex, index_name_for
from repro.mass.pages import BufferPool, PageManager
from repro.mass.records import NodeKind, NodeRecord
from repro.mass.stats import StoreMetrics, StoreStatistics
from repro.model import Axis, NodeTest, NodeTestKind


class MassStore:
    """An indexed XML document: three counted B+-trees over FLEX keys."""

    #: Set by :func:`repro.mass.persistence.open_store` when the store was
    #: opened with ``recover=True`` — the salvage scan's ``FsckReport``.
    recovery_report = None

    def __init__(
        self,
        name: str = "document",
        page_size: int = 4096,
        buffer_capacity: int | None = 4096,
        byte_keys: bool = True,
    ):
        self.name = name
        self.byte_keys = byte_keys
        self.pages = PageManager(page_size)
        self.buffer = BufferPool(self.pages, capacity=buffer_capacity)
        self.node_index = NodeIndex(self.pages, self.buffer, byte_keys=byte_keys)
        self.name_index = NameIndex(self.pages, self.buffer, byte_keys=byte_keys)
        self.value_index = ValueIndex(self.pages, self.buffer, byte_keys=byte_keys)
        self.metrics = StoreMetrics()
        #: Monotonic modification epoch: bumped by every load, insert and
        #: delete.  Caches keyed on ``(store content, ...)`` — the engine's
        #: plan cache, the cost estimator's count cache — compare epochs
        #: instead of guessing, so cached optimizer decisions can never go
        #: stale under live updates.
        self.epoch = 0
        #: Snapshot isolation: once frozen (by
        #: :class:`repro.serving.SnapshotManager` at publication) every
        #: mutation raises, so concurrent readers can never observe a
        #: half-applied update and the epoch is pinned forever.
        self._frozen = False

    # -- snapshot isolation ---------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> "MassStore":
        """Make the store (and all three indexes) immutable."""
        self._frozen = True
        self.node_index.freeze()
        self.name_index.freeze()
        self.value_index.freeze()
        return self

    def _ensure_mutable(self) -> None:
        if self._frozen:
            raise StorageError(
                f"store {self.name!r} is frozen (published snapshot at epoch "
                f"{self.epoch}); clone it to mutate"
            )

    def clone(self, name: str | None = None) -> "MassStore":
        """A mutable copy-on-write twin at the same epoch.

        Node records are immutable (frozen dataclasses), so the twin
        shares them and rebuilds only index structure — one bulk load per
        index.  This is the writer's half of epoch-snapshot isolation:
        mutate the clone, then publish it atomically while readers keep
        the frozen original.
        """
        records = list(self.node_index.scan(None, None))
        twin = MassStore(
            name=name or self.name,
            page_size=self.pages.page_size,
            buffer_capacity=self.buffer.capacity,
            byte_keys=self.byte_keys,
        )
        if records:
            twin.bulk_load(records)
        twin.epoch = self.epoch
        return twin

    # -- loading ------------------------------------------------------------

    def bulk_load(self, records: list[NodeRecord]) -> None:
        """Load a complete document from key-sorted node records."""
        self._ensure_mutable()
        self.epoch += 1
        for earlier, later in zip(records, records[1:]):
            if not earlier.key < later.key:
                raise StorageError("records not in document order")
        self.node_index.bulk_load(records)
        name_entries = []
        value_entries = []
        for record in records:
            index_name = index_name_for(record.kind, record.name)
            if index_name is not None:
                name_entries.append((index_name, record.key, record.kind))
            if record.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE) and record.value:
                value_entries.append((record.value, record.key, record.kind))
        name_entries.sort(key=lambda entry: (entry[0], entry[1]))
        value_entries.sort(key=lambda entry: (entry[0], entry[1]))
        self.name_index.bulk_load(name_entries)
        self.value_index.bulk_load(value_entries)

    # -- node access ----------------------------------------------------------

    def fetch(self, key: FlexKey) -> NodeRecord | None:
        """Materialise one node record (counted as a data fetch)."""
        self.metrics.record_fetches += 1
        return self.node_index.get(key)

    def require(self, key: FlexKey) -> NodeRecord:
        record = self.fetch(key)
        if record is None:
            raise StorageError(f"no node with key {key.pretty()}")
        return record

    def document_record(self) -> NodeRecord:
        return self.require(FlexKey.document())

    def root_element(self) -> NodeRecord:
        """The document element's record."""
        for _key, record in self.axis(FlexKey.document(), Axis.CHILD, NodeTest.name_test("*")):
            if record is not None and record.kind is NodeKind.ELEMENT:
                return record
        raise StorageError("store has no document element")

    # -- axes -------------------------------------------------------------------

    def axis(
        self, context: FlexKey, axis: Axis, test: NodeTest, cursors=None
    ) -> Iterator[AxisHit]:
        """Iterate ``axis::test`` from ``context`` (see :mod:`repro.mass.axes`).

        ``cursors`` (a :class:`~repro.mass.axes.ScanCursors`) lets runs of
        nearby scans resume from a pinned leaf instead of re-descending.
        """
        self.metrics.axis_requests += 1
        return axis_iter(self, context, axis, test, cursors)

    def axis_records(
        self, context: FlexKey, axis: Axis, test: NodeTest
    ) -> Iterator[NodeRecord]:
        """Axis iteration that always materialises records."""
        for key, record in self.axis(context, axis, test):
            yield record if record is not None else self.require(key)

    def axis_count(self, context: FlexKey, axis: Axis, test: NodeTest) -> int | None:
        """Index-only count (upper bound) for one axis step, if available."""
        self.metrics.count_calls += 1
        return axis_count_upper(self, context, axis, test)

    # -- statistics (the cost model's API) ----------------------------------------

    def count(self, test: NodeTest, principal: NodeKind = NodeKind.ELEMENT) -> int:
        """COUNT(nodetest): document-wide matches, index-only.

        This is the number Figure 6 annotates on every step operator
        (e.g. COUNT(name) = 4825 on the paper's 10 MB document).
        """
        self.metrics.count_calls += 1
        if test.kind is NodeTestKind.NAME:
            prefix = "@" + test.name if principal is NodeKind.ATTRIBUTE else test.name
            return self.name_index.count(prefix)
        if test.kind is NodeTestKind.TEXT:
            return self.name_index.count("#text")
        if test.kind is NodeTestKind.COMMENT:
            return self.name_index.count("#comment")
        if test.kind is NodeTestKind.PROCESSING_INSTRUCTION and test.name:
            return self.name_index.count("?" + test.name)
        if test.kind is NodeTestKind.NODE:
            return len(self.node_index)
        # '*' or targetless processing-instruction(): derive from the node
        # index via kind bookkeeping (scan-free: counts are maintained).
        return self._kind_count(
            NodeKind.ELEMENT if test.kind is NodeTestKind.ANY else
            NodeKind.PROCESSING_INSTRUCTION
        )

    def count_under(self, context: FlexKey, test: NodeTest) -> int:
        """COUNT scoped to one subtree — "specific to a point within one
        document" in the paper's terms."""
        self.metrics.count_calls += 1
        count = self.axis_count(context, Axis.DESCENDANT, test)
        if count is not None:
            return count
        lo = context
        hi = None if context.is_document() else context.subtree_upper_bound()
        total = 0
        for record in self.node_index.scan(lo, hi, inclusive_lo=False):
            if test.matches(record.kind, record.name, NodeKind.ELEMENT):
                total += 1
        return total

    def text_count(self, value: str) -> int:
        """TC(value): exact occurrences of a text value, one index probe."""
        self.metrics.count_calls += 1
        return self.value_index.text_count(value)

    def value_keys(
        self, value: str, reverse: bool = False
    ) -> Iterator[tuple[FlexKey, NodeKind]]:
        """Keys of text/attribute nodes carrying ``value`` (document order)."""
        self.metrics.value_lookups += 1
        return self.value_index.scan(value, reverse=reverse)

    def _kind_count(self, kind: NodeKind) -> int:
        if kind is NodeKind.ELEMENT:
            # Elements = all name-index entries minus the reserved
            # namespaces: '#text'/'#comment', '?target' (PIs) and '@name'
            # (attributes).  '?' and '@' sort just below 'A', so one range
            # count covers both prefixes (element names start with a letter
            # or underscore, which sort above 'A').
            reserved = (
                self.name_index.count("#text")
                + self.name_index.count("#comment")
            )
            prefixed = self.name_index.tree.range_count(("?",), ("A",))
            return len(self.name_index) - reserved - prefixed
        total = 0
        for record in self.node_index.scan(None, None):
            if record.kind is kind:
                total += 1
        return total

    # -- content helpers ------------------------------------------------------------

    def string_value(self, key: FlexKey) -> str:
        """The XPath string-value of the node at ``key``."""
        record = self.require(key)
        if record.kind in (
            NodeKind.TEXT,
            NodeKind.ATTRIBUTE,
            NodeKind.COMMENT,
            NodeKind.PROCESSING_INSTRUCTION,
        ):
            return record.value
        pieces = []
        for text_key, _kind in self.name_index.scan(
            "#text",
            lo=key,
            hi=None if key.is_document() else key.subtree_upper_bound(),
            inclusive_lo=False,
        ):
            pieces.append(self.require(text_key).value)
        return "".join(pieces)

    def serialize_subtree(self, key: FlexKey) -> str:
        """Re-emit the XML text of the subtree rooted at ``key``."""
        from repro.mass.serialize import serialize_subtree

        return serialize_subtree(self, key)

    # -- updates -----------------------------------------------------------------------

    def insert_record(self, record: NodeRecord) -> None:
        """Insert one node; all three indexes (and thus statistics) update."""
        self._ensure_mutable()
        if self.node_index.get(record.key) is not None:
            raise StorageError(f"key {record.key.pretty()} already stored")
        parent = record.key.parent()
        if parent is not None and self.node_index.get(parent) is None:
            raise StorageError(f"parent {parent.pretty()} not stored")
        self.epoch += 1
        self.node_index.insert(record)
        index_name = index_name_for(record.kind, record.name)
        if index_name is not None:
            self.name_index.insert(index_name, record.key, record.kind)
        if record.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE) and record.value:
            self.value_index.insert(record.value, record.key, record.kind)

    def insert_element(
        self,
        parent: FlexKey,
        name: str,
        text: str = "",
        after: FlexKey | None = None,
    ) -> FlexKey:
        """Insert ``<name>text</name>`` under ``parent``.

        Placed after sibling ``after`` if given, else appended as the last
        child.  Returns the new element's key.  Demonstrates the no-relabel
        update path: only the new keys are written.
        """
        if after is not None:
            if after.parent() != parent:
                raise StorageError("'after' is not a child of 'parent'")
            next_sibling = self._next_sibling_key(after)
            key = after.sibling_between(next_sibling) if next_sibling else after.sibling_after()
        else:
            last = self._last_child_key(parent)
            key = last.sibling_after() if last is not None else parent.child(0)
        self.insert_record(NodeRecord(key, NodeKind.ELEMENT, name=name))
        if text:
            self.insert_record(NodeRecord(key.child(0), NodeKind.TEXT, value=text))
        return key

    def delete_subtree(self, key: FlexKey) -> int:
        """Delete the node at ``key`` and everything below it."""
        self._ensure_mutable()
        doomed = [self.require(key)]
        lo, hi = key, key.subtree_upper_bound()
        doomed.extend(self.node_index.scan(lo, hi, inclusive_lo=False))
        self.epoch += 1
        for record in doomed:
            self.node_index.delete(record.key)
            index_name = index_name_for(record.kind, record.name)
            if index_name is not None:
                self.name_index.delete(index_name, record.key)
            if record.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE) and record.value:
                self.value_index.delete(record.value, record.key)
        return len(doomed)

    def _last_child_key(self, parent: FlexKey) -> FlexKey | None:
        last = None
        lo = parent
        hi = None if parent.is_document() else parent.subtree_upper_bound()
        for record in self.node_index.scan(lo, hi, inclusive_lo=False):
            if record.key.depth == parent.depth + 1:
                last = record.key
        return last

    def _next_sibling_key(self, key: FlexKey) -> FlexKey | None:
        parent = key.parent()
        if parent is None:
            return None
        lo = key.subtree_upper_bound()
        hi = None if parent.is_document() else parent.subtree_upper_bound()
        for record in self.node_index.scan(lo, hi):
            if record.key.depth == key.depth:
                return record.key
        return None

    # -- reporting ------------------------------------------------------------------------

    def statistics(self) -> StoreStatistics:
        by_kind: dict[NodeKind, int] = {}
        for record in self.node_index.scan(None, None):
            by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
        names = {name for (name, _key), _ in self.name_index.tree.items()}
        values = {value for (value, _key), _ in self.value_index.tree.items()}
        return StoreStatistics(
            total_nodes=len(self.node_index),
            nodes_by_kind=by_kind,
            distinct_names=len(names),
            distinct_values=len(values),
            pages=self.pages.live_pages,
            page_size=self.pages.page_size,
            node_index_height=self.node_index.tree.height(),
            name_index_height=self.name_index.tree.height(),
            value_index_height=self.value_index.tree.height(),
        )

    def reset_metrics(self) -> None:
        """Zero all per-query counters (store, pages, buffer, trees)."""
        self.metrics.reset()
        self.pages.stats.reset_io()
        self.buffer.stats.reset()
        for tree in (self.node_index.tree, self.name_index.tree, self.value_index.tree):
            tree.metrics.reset()

    def io_snapshot(self) -> dict[str, int]:
        """All work counters in one dict (for benchmark reporting)."""
        data = self.metrics.snapshot()
        data.update(
            {
                "pages_read": self.pages.stats.physical_reads,
                "logical_reads": self.pages.stats.logical_reads,
                "buffer_hits": self.buffer.stats.hits,
                "key_comparisons": (
                    self.node_index.tree.metrics.key_comparisons
                    + self.name_index.tree.metrics.key_comparisons
                    + self.value_index.tree.metrics.key_comparisons
                ),
                "entries_scanned": (
                    self.node_index.tree.metrics.entries_scanned
                    + self.name_index.tree.metrics.entries_scanned
                    + self.value_index.tree.metrics.entries_scanned
                ),
            }
        )
        data.update(self.counters)
        return data

    def io_totals(self) -> dict[str, int]:
        """Page I/O summed over every thread that read this store.

        ``io_snapshot`` reports the *calling thread's* page counters
        (which is what per-query metrics want); this is the cross-thread
        aggregate the serving metrics report.
        """
        return self.pages.stats.totals()

    @property
    def counters(self) -> dict[str, int]:
        """Cursor effectiveness counters, summed over the three trees.

        ``root_descents`` counts full root-to-leaf positionings;
        ``cursor_resumes`` counts scans that picked up from a pinned leaf
        instead.  A high resume share is the skip-ahead cursors working.
        """
        trees = (self.node_index.tree, self.name_index.tree, self.value_index.tree)
        return {
            "root_descents": sum(tree.metrics.root_descents for tree in trees),
            "cursor_resumes": sum(tree.metrics.cursor_resumes for tree in trees),
        }

    def __repr__(self) -> str:
        return f"<MassStore {self.name!r}: {len(self.node_index)} nodes>"
