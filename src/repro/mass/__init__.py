"""MASS — Multi-Axis Storage Structure (CIKM 2003), rebuilt in Python.

MASS is the storage and indexing substrate VAMANA runs on.  This package
provides:

* :mod:`repro.mass.flexkey` — FLEX structural keys: variable-length
  lexicographic keys where document order equals key order, the parent key is
  a prefix, and new keys can be inserted between any two siblings without
  relabeling existing nodes.
* :mod:`repro.mass.records` — the node record stored per XML node.
* :mod:`repro.mass.pages` / :mod:`repro.mass.buffer pool` — a paged storage
  model with an LRU buffer pool and I/O accounting, so index plans can be
  compared by pages touched as well as wall time.
* :mod:`repro.mass.btree` — a counted B+-tree: range scans in both
  directions plus O(log n) range *counts* that never touch leaf data beyond
  the two boundary paths ("count on the index level without going to data").
* :mod:`repro.mass.indexes` — the three clustered indexes MASS maintains per
  store: the document-order node index, the name index and the value index.
* :mod:`repro.mass.axes` — translation of all 13 XPath axes into key ranges
  and filters over those indexes.
* :mod:`repro.mass.store` — the :class:`MassStore` facade: load documents,
  look up nodes, iterate axes, count node tests and text values.
"""

from repro.mass.flexkey import FlexKey
from repro.mass.records import NodeKind, NodeRecord

__all__ = [
    "FlexKey",
    "NodeKind",
    "NodeRecord",
    "MassStore",
    "StoreStatistics",
    "load_document",
    "load_xml",
]


def __getattr__(name):  # lazy imports avoid cycles during module bring-up
    if name == "MassStore":
        from repro.mass.store import MassStore

        return MassStore
    if name == "StoreStatistics":
        from repro.mass.stats import StoreStatistics

        return StoreStatistics
    if name in ("load_document", "load_xml"):
        from repro.mass import loader

        return getattr(loader, name)
    if name in ("save_store", "open_store"):
        from repro.mass import persistence

        return getattr(persistence, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
