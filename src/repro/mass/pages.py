"""Paged storage model.

MASS is a disk-based structure; this reproduction keeps everything in
process memory but preserves the *accounting*: B+-tree nodes live on
fixed-size pages allocated by a :class:`PageManager`, every traversal goes
through the buffer pool, and benchmarks report pages read/written next to
wall time.  This keeps the paper's "index-only plans read a fraction of the
data" claim measurable rather than anecdotal.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import StorageError

DEFAULT_PAGE_SIZE = 4096

#: Sentinel distinguishing "absent" from a stored ``None`` value.
_MISSING = object()


class PageKind(Enum):
    LEAF = "leaf"
    INTERNAL = "internal"
    OVERFLOW = "overflow"


@dataclass(slots=True)
class Page:
    """A fixed-size page holding B+-tree node payload.

    ``payload`` is owned by the tree (a leaf or internal node object); the
    page itself only tracks identity, kind and byte usage so the manager
    can account for space.
    """

    page_id: int
    kind: PageKind
    payload: Any = None
    used_bytes: int = 0


class ReadCounters:
    """One thread's read/write tallies (see :class:`PageStats`)."""

    __slots__ = ("logical", "physical", "writes")

    def __init__(self) -> None:
        self.logical = 0
        self.physical = 0
        self.writes = 0


class PageStats:
    """Cumulative page-level counters for one store.

    Read/write counters are kept **per thread**: each thread that touches
    the store accumulates into its own :class:`ReadCounters`, and the
    ``logical_reads``/``physical_reads``/``writes`` attributes read (and
    write) the *calling thread's* tally.  Single-threaded use is exactly
    the old behaviour; under the concurrent query server every request
    runs on one worker thread, so a :class:`~repro.resilience.QueryGuard`
    page budget charges only the pages its own query touched, never a
    neighbour's.  Aggregates across all threads are available via
    :meth:`totals`.
    """

    def __init__(self) -> None:
        self.allocated = 0
        self.freed = 0
        self._lock = threading.Lock()
        self._counters: list[ReadCounters] = []
        self._local = threading.local()

    def local_counters(self) -> ReadCounters:
        """The calling thread's tally (created on first use)."""
        counters = getattr(self._local, "counters", None)
        if counters is None:
            counters = ReadCounters()
            self._local.counters = counters
            with self._lock:
                self._counters.append(counters)
        return counters

    @property
    def logical_reads(self) -> int:
        return self.local_counters().logical

    @logical_reads.setter
    def logical_reads(self, value: int) -> None:
        self.local_counters().logical = value

    @property
    def physical_reads(self) -> int:
        return self.local_counters().physical

    @physical_reads.setter
    def physical_reads(self, value: int) -> None:
        self.local_counters().physical = value

    @property
    def writes(self) -> int:
        return self.local_counters().writes

    @writes.setter
    def writes(self, value: int) -> None:
        self.local_counters().writes = value

    def totals(self) -> dict[str, int]:
        """Read/write counters summed over every thread that ever touched
        the store (dead threads' tallies included)."""
        with self._lock:
            counters = list(self._counters)
        return {
            "logical_reads": sum(c.logical for c in counters),
            "physical_reads": sum(c.physical for c in counters),
            "writes": sum(c.writes for c in counters),
        }

    @property
    def live_pages(self) -> int:
        return self.allocated - self.freed

    def reset_io(self) -> None:
        """Zero the read/write counters of every thread (pages are kept)."""
        with self._lock:
            for counters in self._counters:
                counters.logical = 0
                counters.physical = 0
                counters.writes = 0


class PageManager:
    """Allocates pages and enforces the page-size budget.

    The manager does not decide *what* lives on a page — the B+-tree sizes
    its nodes against :attr:`page_size` via per-entry size estimates and
    splits when a node would overflow.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 256:
            raise StorageError(f"page size too small: {page_size}")
        self.page_size = page_size
        self.stats = PageStats()
        self._pages: dict[int, Page] = {}
        self._next_id = 1
        #: Optional :class:`repro.resilience.FaultInjector` consulted on
        #: every ``get`` (site ``"pages.get"``) — may raise a transient
        #: error or add latency.  ``None`` costs one attribute check.
        self.fault_injector = None

    def allocate(self, kind: PageKind, payload: Any = None) -> Page:
        page = Page(page_id=self._next_id, kind=kind, payload=payload)
        self._next_id += 1
        self._pages[page.page_id] = page
        self.stats.allocated += 1
        return page

    def free(self, page: Page) -> None:
        if page.page_id not in self._pages:
            raise StorageError(f"double free of page {page.page_id}")
        del self._pages[page.page_id]
        self.stats.freed += 1

    def get(self, page_id: int) -> Page:
        if self.fault_injector is not None:
            self.fault_injector.on_access("pages.get")
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"unknown page {page_id}") from None

    def mark_write(self, page: Page) -> None:
        self.stats.writes += 1

    @property
    def live_pages(self) -> int:
        return self.stats.live_pages

    def __len__(self) -> int:
        return len(self._pages)


@dataclass(slots=True)
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferPool:
    """An LRU buffer pool over a :class:`PageManager`.

    ``touch`` is the only operation the tree needs: it registers an access,
    classifies it as hit or miss, and updates the page manager's logical /
    physical read counters.  Capacity is in pages; a capacity of zero means
    "everything misses" (cold-cache accounting), ``None`` means unbounded.
    """

    def __init__(self, manager: PageManager, capacity: int | None = 1024):
        self.manager = manager
        self.capacity = capacity
        self.stats = BufferStats()
        self._resident: dict[int, None] = {}  # insertion-ordered LRU
        #: Optional :class:`repro.resilience.FaultInjector` consulted on
        #: every ``touch`` (site ``"buffer.touch"``).
        self.fault_injector = None

    def touch(self, page: Page) -> None:
        # The fault fires *before* any counter moves, so an injected
        # transient failure leaves ``logical_reads == hits + misses``
        # intact — the governor's page-budget accounting stays exact.
        if self.fault_injector is not None:
            self.fault_injector.on_access("buffer.touch")
        counters = self.manager.stats.local_counters()
        counters.logical += 1
        if self.capacity == 0:
            self.stats.misses += 1
            counters.physical += 1
            return
        page_id = page.page_id
        # Concurrent readers share one pool (snapshot versions are read by
        # many worker threads at once).  Every dict operation below is
        # atomic under the GIL, but interleavings between them are not —
        # so membership races are *tolerated* (``pop`` with default, guarded
        # eviction) rather than locked out: the worst outcome is a slightly
        # off LRU order or a lost hit/miss count, never an exception.
        if page_id in self._resident:
            self.stats.hits += 1
            # Move to MRU position.
            self._resident.pop(page_id, None)
            self._resident[page_id] = None
            return
        self.stats.misses += 1
        counters.physical += 1
        self._resident[page_id] = None
        while self.capacity is not None and len(self._resident) > self.capacity:
            try:
                oldest = next(iter(self._resident))
            except (StopIteration, RuntimeError):
                break  # raced with a concurrent eviction/resize
            if self._resident.pop(oldest, _MISSING) is _MISSING:
                continue  # another thread evicted it first
            self.stats.evictions += 1

    def evict_all(self) -> None:
        """Empty the pool (used to measure cold-cache behaviour)."""
        self._resident.clear()

    def forget(self, page: Page) -> None:
        """Drop a freed page from the pool."""
        self._resident.pop(page.page_id, None)

    @property
    def resident_pages(self) -> int:
        return len(self._resident)
