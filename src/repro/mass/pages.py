"""Paged storage model.

MASS is a disk-based structure; this reproduction keeps everything in
process memory but preserves the *accounting*: B+-tree nodes live on
fixed-size pages allocated by a :class:`PageManager`, every traversal goes
through the buffer pool, and benchmarks report pages read/written next to
wall time.  This keeps the paper's "index-only plans read a fraction of the
data" claim measurable rather than anecdotal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import StorageError

DEFAULT_PAGE_SIZE = 4096


class PageKind(Enum):
    LEAF = "leaf"
    INTERNAL = "internal"
    OVERFLOW = "overflow"


@dataclass(slots=True)
class Page:
    """A fixed-size page holding B+-tree node payload.

    ``payload`` is owned by the tree (a leaf or internal node object); the
    page itself only tracks identity, kind and byte usage so the manager
    can account for space.
    """

    page_id: int
    kind: PageKind
    payload: Any = None
    used_bytes: int = 0


@dataclass(slots=True)
class PageStats:
    """Cumulative page-level counters for one store."""

    allocated: int = 0
    freed: int = 0
    logical_reads: int = 0
    physical_reads: int = 0
    writes: int = 0

    @property
    def live_pages(self) -> int:
        return self.allocated - self.freed

    def reset_io(self) -> None:
        """Zero the read/write counters (page population is kept)."""
        self.logical_reads = 0
        self.physical_reads = 0
        self.writes = 0


class PageManager:
    """Allocates pages and enforces the page-size budget.

    The manager does not decide *what* lives on a page — the B+-tree sizes
    its nodes against :attr:`page_size` via per-entry size estimates and
    splits when a node would overflow.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 256:
            raise StorageError(f"page size too small: {page_size}")
        self.page_size = page_size
        self.stats = PageStats()
        self._pages: dict[int, Page] = {}
        self._next_id = 1
        #: Optional :class:`repro.resilience.FaultInjector` consulted on
        #: every ``get`` (site ``"pages.get"``) — may raise a transient
        #: error or add latency.  ``None`` costs one attribute check.
        self.fault_injector = None

    def allocate(self, kind: PageKind, payload: Any = None) -> Page:
        page = Page(page_id=self._next_id, kind=kind, payload=payload)
        self._next_id += 1
        self._pages[page.page_id] = page
        self.stats.allocated += 1
        return page

    def free(self, page: Page) -> None:
        if page.page_id not in self._pages:
            raise StorageError(f"double free of page {page.page_id}")
        del self._pages[page.page_id]
        self.stats.freed += 1

    def get(self, page_id: int) -> Page:
        if self.fault_injector is not None:
            self.fault_injector.on_access("pages.get")
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"unknown page {page_id}") from None

    def mark_write(self, page: Page) -> None:
        self.stats.writes += 1

    @property
    def live_pages(self) -> int:
        return self.stats.live_pages

    def __len__(self) -> int:
        return len(self._pages)


@dataclass(slots=True)
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferPool:
    """An LRU buffer pool over a :class:`PageManager`.

    ``touch`` is the only operation the tree needs: it registers an access,
    classifies it as hit or miss, and updates the page manager's logical /
    physical read counters.  Capacity is in pages; a capacity of zero means
    "everything misses" (cold-cache accounting), ``None`` means unbounded.
    """

    def __init__(self, manager: PageManager, capacity: int | None = 1024):
        self.manager = manager
        self.capacity = capacity
        self.stats = BufferStats()
        self._resident: dict[int, None] = {}  # insertion-ordered LRU
        #: Optional :class:`repro.resilience.FaultInjector` consulted on
        #: every ``touch`` (site ``"buffer.touch"``).
        self.fault_injector = None

    def touch(self, page: Page) -> None:
        # The fault fires *before* any counter moves, so an injected
        # transient failure leaves ``logical_reads == hits + misses``
        # intact — the governor's page-budget accounting stays exact.
        if self.fault_injector is not None:
            self.fault_injector.on_access("buffer.touch")
        self.manager.stats.logical_reads += 1
        if self.capacity == 0:
            self.stats.misses += 1
            self.manager.stats.physical_reads += 1
            return
        page_id = page.page_id
        if page_id in self._resident:
            self.stats.hits += 1
            # Move to MRU position.
            del self._resident[page_id]
            self._resident[page_id] = None
            return
        self.stats.misses += 1
        self.manager.stats.physical_reads += 1
        self._resident[page_id] = None
        if self.capacity is not None and len(self._resident) > self.capacity:
            oldest = next(iter(self._resident))
            del self._resident[oldest]
            self.stats.evictions += 1

    def evict_all(self) -> None:
        """Empty the pool (used to measure cold-cache behaviour)."""
        self._resident.clear()

    def forget(self, page: Page) -> None:
        """Drop a freed page from the pool."""
        self._resident.pop(page.page_id, None)

    @property
    def resident_pages(self) -> int:
        return len(self._resident)
