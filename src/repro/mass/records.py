"""Node records — the unit of storage in MASS.

Every XML node (document, element, attribute, text, comment, processing
instruction, namespace declaration) is stored as one :class:`NodeRecord`
keyed by its FLEX key.  VAMANA operators pass FLEX keys between each other
and only materialise records when a node test, value comparison or final
result requires it — record fetches are therefore counted separately from
index seeks by the metrics layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.mass.flexkey import FlexKey


class NodeKind(Enum):
    """The seven node kinds of the XPath 1.0 data model."""

    DOCUMENT = "document"
    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "processing-instruction"
    NAMESPACE = "namespace"


#: Node kinds that take part in the *principal node type* of most axes.
PRINCIPAL_KINDS = frozenset({NodeKind.ELEMENT})


@dataclass(frozen=True, slots=True)
class NodeRecord:
    """One stored XML node.

    ``name`` is the element/attribute/PI name (empty for text, comment and
    document nodes).  ``value`` is the text content for text nodes, the
    attribute value for attributes, and the data for comments/PIs.
    """

    key: FlexKey
    kind: NodeKind
    name: str = ""
    value: str = ""

    @property
    def depth(self) -> int:
        return self.key.depth

    def matches_name(self, name_test: str) -> bool:
        """True if this record satisfies a name test (``*`` matches any)."""
        if name_test == "*":
            return self.kind in (NodeKind.ELEMENT, NodeKind.ATTRIBUTE)
        return self.name == name_test

    def storage_size(self) -> int:
        """Approximate on-page size in bytes, used by the page model.

        Key components cost four bytes per integer plus one per component;
        strings are stored UTF-8 with a two-byte length prefix; a fixed
        header covers kind and slot bookkeeping.
        """
        key_size = sum(1 + 4 * len(component) for component in self.key.components)
        name_size = 2 + len(self.name.encode("utf-8"))
        value_size = 2 + len(self.value.encode("utf-8"))
        return 4 + key_size + name_size + value_size

    def label(self) -> str:
        """Short human-readable form used by traces and explain output."""
        if self.kind is NodeKind.ELEMENT:
            return f"<{self.name}> [{self.key.pretty()}]"
        if self.kind is NodeKind.ATTRIBUTE:
            return f"@{self.name}={self.value!r} [{self.key.pretty()}]"
        if self.kind is NodeKind.TEXT:
            text = self.value if len(self.value) <= 24 else self.value[:21] + "..."
            return f"text({text!r}) [{self.key.pretty()}]"
        if self.kind is NodeKind.DOCUMENT:
            return "document()"
        return f"{self.kind.value}({self.name}) [{self.key.pretty()}]"


@dataclass(slots=True)
class StringEntry:
    """Aggregated per-string statistics kept by the value index."""

    value: str
    occurrences: int = 0
    keys: list[FlexKey] = field(default_factory=list)
