"""The three clustered MASS indexes.

MASS keeps every document in three counted B+-trees:

* **node index** — FLEX key → :class:`NodeRecord`; clustered in document
  order, so any axis whose result is a key range becomes one sequential
  leaf walk.
* **name index** — ``(index name, FLEX key) → node kind``; one namespaced
  entry per named node (elements under their name, attributes under
  ``@name``, text under ``#text``, comments under ``#comment``, processing
  instructions under ``?target``).  Per-name counts and per-name subtree
  counts are O(log n) range counts.
* **value index** — ``(string value, FLEX key) → node kind``; one entry per
  text node and attribute value.  This is the index that lets VAMANA answer
  ``text() = 'Yung Flach'`` with a single lookup (where eXist falls back to
  tree traversal) and gives the cost model exact text counts (TC).

The composite keys compare as plain Python tuples — the string first, the
FLEX key second — so all entries for one name/value form one contiguous
run.  In the default byte-key mode each tree additionally carries an
order-preserving byte encoding of its keys (:func:`composite_sort_bytes`
for the composite indexes, :attr:`FlexKey.sort_bytes` for the node index)
and every search, scan bound and range count operates on flat ``bytes``
at C speed.  Index-level range methods accept either FLEX keys or
pre-encoded byte bounds, so axis evaluation can hand over subtree prefix
ranges without re-deriving them.
"""

from __future__ import annotations

from typing import Iterator

from repro.mass.btree import BPlusTree, BTreeCursor
from repro.mass.flexkey import FlexKey
from repro.mass.pages import BufferPool, PageManager
from repro.mass.records import NodeKind, NodeRecord
from repro.model import NodeTest, NodeTestKind

#: FLEX-key bounds accepted by the index range methods: a key, its
#: pre-encoded ``sort_bytes`` image, or None for an open end.
KeyBound = "FlexKey | bytes | None"


def index_name_for(kind: NodeKind, name: str) -> str | None:
    """The name-index namespace key for a node, or None if unindexed."""
    if kind is NodeKind.ELEMENT:
        return name
    if kind is NodeKind.ATTRIBUTE:
        return "@" + name
    if kind is NodeKind.TEXT:
        return "#text"
    if kind is NodeKind.COMMENT:
        return "#comment"
    if kind is NodeKind.PROCESSING_INSTRUCTION:
        return "?" + name
    return None


def index_name_for_test(test: NodeTest, principal: NodeKind) -> str | None:
    """The name-index key a node test maps to, or None if it needs a scan.

    ``*`` and ``node()`` cannot be served by a single name run; they return
    None and the axis machinery falls back to a node-index range scan.
    A targetless ``processing-instruction()`` likewise needs a scan.
    """
    if test.kind is NodeTestKind.NAME:
        if principal is NodeKind.ATTRIBUTE:
            return "@" + test.name
        if principal is NodeKind.ELEMENT:
            return test.name
        return None
    if test.kind is NodeTestKind.TEXT:
        return "#text"
    if test.kind is NodeTestKind.COMMENT:
        return "#comment"
    if test.kind is NodeTestKind.PROCESSING_INSTRUCTION and test.name:
        return "?" + test.name
    return None


def _upper_bound(text: str) -> tuple[str]:
    """Exclusive composite-key bound covering every entry for ``text``."""
    return (text + "\x00",)


# -- byte encodings ------------------------------------------------------------


def escape_text(text: str) -> bytes:
    """Order-preserving, self-terminating byte encoding of a string.

    UTF-8 is code-point order preserving; NUL content bytes are escaped as
    ``0x00 0xFF`` so the ``0x00`` terminator still sorts a prefix string
    below every extension.  The result can be concatenated with a FLEX
    key's ``sort_bytes`` (whose first byte is never ``0xFF``) to form a
    composite search key whose byte order equals tuple order.
    """
    raw = text.encode("utf-8")
    if b"\x00" in raw:
        raw = raw.replace(b"\x00", b"\x00\xff")
    return raw + b"\x00"


def text_prefix_upper(text: str) -> bytes:
    """Exclusive byte bound covering every composite entry for ``text``."""
    return escape_text(text + "\x00")


def composite_sort_bytes(key: tuple) -> bytes:
    """Byte search key for ``(text,)`` bounds and ``(text, FlexKey)`` entries."""
    if len(key) == 1:
        return escape_text(key[0])
    text, flex = key
    return escape_text(text) + flex.sort_bytes


def flex_sort_bytes(key: FlexKey) -> bytes:
    """Byte search key of a node-index key."""
    return key.sort_bytes


class NodeIndex:
    """FLEX key → node record, clustered in document order."""

    def __init__(
        self, manager: PageManager, buffer_pool: BufferPool, byte_keys: bool = True
    ):
        self.byte_keys = byte_keys
        self.tree = BPlusTree(
            manager,
            buffer_pool,
            entry_bytes=96,
            encode=flex_sort_bytes if byte_keys else None,
        )

    def _bound(self, key: "FlexKey | bytes | None"):
        if key is None:
            return None
        if self.byte_keys:
            return key if isinstance(key, bytes) else key.sort_bytes
        return key

    def freeze(self) -> None:
        """Reject further mutation (snapshot publication, see serving)."""
        self.tree.freeze()

    def bulk_load(self, records: list[NodeRecord]) -> None:
        self.tree.bulk_load([(record.key, record) for record in records])

    def insert(self, record: NodeRecord) -> None:
        self.tree.insert(record.key, record)

    def delete(self, key: FlexKey) -> bool:
        return self.tree.delete(key)

    def get(self, key: FlexKey) -> NodeRecord | None:
        return self.tree.get(key)

    def scan(
        self,
        lo: "FlexKey | bytes | None",
        hi: "FlexKey | bytes | None",
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
        reverse: bool = False,
    ) -> Iterator[NodeRecord]:
        scan = self.tree.scan_reverse_encoded if reverse else self.tree.scan_encoded
        for _key, record in scan(
            self._bound(lo), self._bound(hi), inclusive_lo, inclusive_hi
        ):
            yield record

    def count_range(
        self, lo: "FlexKey | bytes | None", hi: "FlexKey | bytes | None"
    ) -> int:
        return self.tree.range_count_encoded(self._bound(lo), self._bound(hi))

    def cursor(self) -> BTreeCursor:
        """A skip-ahead cursor over the node tree (see :class:`BTreeCursor`)."""
        return BTreeCursor(self.tree)

    def get_cursor(self, cursor: BTreeCursor, key: FlexKey) -> NodeRecord | None:
        """:meth:`get` positioned through ``cursor`` (resume-friendly)."""
        return cursor.get(self._bound(key))

    def scan_cursor(
        self,
        cursor: BTreeCursor,
        lo: "FlexKey | bytes | None",
        hi: "FlexKey | bytes | None",
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
        reverse: bool = False,
    ) -> Iterator[NodeRecord]:
        """:meth:`scan`, but positioned through ``cursor`` so runs of nearby
        ranges resume from the pinned leaf instead of re-descending."""
        scan = cursor.scan_reverse if reverse else cursor.scan
        for _key, record in scan(
            self._bound(lo), self._bound(hi), inclusive_lo, inclusive_hi
        ):
            yield record

    def __len__(self) -> int:
        return len(self.tree)


class NameIndex:
    """(namespaced name, FLEX key) → node kind."""

    def __init__(
        self, manager: PageManager, buffer_pool: BufferPool, byte_keys: bool = True
    ):
        self.byte_keys = byte_keys
        self.tree = BPlusTree(
            manager,
            buffer_pool,
            entry_bytes=56,
            encode=composite_sort_bytes if byte_keys else None,
        )

    def _bounds(
        self,
        name: str,
        lo: "FlexKey | bytes | None",
        hi: "FlexKey | bytes | None",
    ) -> tuple:
        """Search-space [lo, hi) bounds for ``name`` entries in a key range."""
        if self.byte_keys:
            prefix = escape_text(name)
            low = prefix if lo is None else prefix + _flex_bytes(lo)
            high = text_prefix_upper(name) if hi is None else prefix + _flex_bytes(hi)
            return low, high
        low = (name,) if lo is None else (name, lo)
        high = _upper_bound(name) if hi is None else (name, hi)
        return low, high

    def freeze(self) -> None:
        """Reject further mutation (snapshot publication, see serving)."""
        self.tree.freeze()

    def bulk_load(self, entries: list[tuple[str, FlexKey, NodeKind]]) -> None:
        self.tree.bulk_load([((name, key), kind) for name, key, kind in entries])

    def insert(self, name: str, key: FlexKey, kind: NodeKind) -> None:
        self.tree.insert((name, key), kind)

    def delete(self, name: str, key: FlexKey) -> bool:
        return self.tree.delete((name, key))

    def count(self, name: str) -> int:
        """How many nodes carry this index name — O(log n), no data touched."""
        low, high = self._bounds(name, None, None)
        return self.tree.range_count_encoded(low, high)

    def count_between(
        self,
        name: str,
        lo: "FlexKey | bytes | None",
        hi: "FlexKey | bytes | None",
        inclusive_lo: bool = True,
    ) -> int:
        """Count entries for ``name`` with FLEX keys in [lo, hi)."""
        low, high = self._bounds(name, lo, hi)
        return self.tree.range_count_encoded(
            low, high, inclusive_lo=lo is None or inclusive_lo
        )

    def scan(
        self,
        name: str,
        lo: "FlexKey | bytes | None" = None,
        hi: "FlexKey | bytes | None" = None,
        inclusive_lo: bool = True,
        reverse: bool = False,
    ) -> Iterator[tuple[FlexKey, NodeKind]]:
        """All keys for ``name`` within [lo, hi), forward or reverse."""
        low, high = self._bounds(name, lo, hi)
        scan = self.tree.scan_reverse_encoded if reverse else self.tree.scan_encoded
        for (_name, key), kind in scan(low, high, inclusive_lo, False):
            yield key, kind

    def cursor(self) -> BTreeCursor:
        """A skip-ahead cursor over the name tree (see :class:`BTreeCursor`)."""
        return BTreeCursor(self.tree)

    def search_bounds(
        self,
        name: str,
        lo: "FlexKey | bytes | None" = None,
        hi: "FlexKey | bytes | None" = None,
    ) -> tuple:
        """Public search-space bounds for ``name`` entries in a key range —
        what cursor-driven callers feed to :meth:`scan_cursor` /
        :meth:`BTreeCursor.past`."""
        return self._bounds(name, lo, hi)

    def scan_cursor(
        self,
        cursor: BTreeCursor,
        name: str,
        lo: "FlexKey | bytes | None" = None,
        hi: "FlexKey | bytes | None" = None,
        inclusive_lo: bool = True,
        reverse: bool = False,
    ) -> Iterator[tuple[FlexKey, NodeKind]]:
        """:meth:`scan`, but positioned through ``cursor`` (leaf resume)."""
        low, high = self._bounds(name, lo, hi)
        scan = cursor.scan_reverse if reverse else cursor.scan
        for (_name, key), kind in scan(low, high, inclusive_lo, False):
            yield key, kind

    def first(self, name: str, at_or_after: FlexKey | None = None) -> FlexKey | None:
        """Seek the first key for ``name`` at/after a FLEX key (or None)."""
        for key, _kind in self.scan(name, lo=at_or_after):
            return key
        return None

    def distinct_names(self) -> Iterator[str]:
        """Every distinct index name, in order, via a skip-scan.

        Each name costs one O(log n) seek past its last entry, so the
        total work is proportional to the *vocabulary* size, never the
        entry count — the schema resolver depends on that bound.
        """
        entry = self.tree.first()
        while entry is not None:
            name = entry[0][0]
            yield name
            _low, high = self._bounds(name, None, None)
            entry = next(iter(self.tree.scan_encoded(high, None, True, False)), None)

    def __len__(self) -> int:
        return len(self.tree)


class ValueIndex:
    """(text value, FLEX key) → node kind, for text and attribute nodes."""

    def __init__(
        self, manager: PageManager, buffer_pool: BufferPool, byte_keys: bool = True
    ):
        self.byte_keys = byte_keys
        self.tree = BPlusTree(
            manager,
            buffer_pool,
            entry_bytes=72,
            encode=composite_sort_bytes if byte_keys else None,
        )

    def freeze(self) -> None:
        """Reject further mutation (snapshot publication, see serving)."""
        self.tree.freeze()

    def bulk_load(self, entries: list[tuple[str, FlexKey, NodeKind]]) -> None:
        self.tree.bulk_load([((value, key), kind) for value, key, kind in entries])

    def insert(self, value: str, key: FlexKey, kind: NodeKind) -> None:
        self.tree.insert((value, key), kind)

    def delete(self, value: str, key: FlexKey) -> bool:
        return self.tree.delete((value, key))

    def text_count(self, value: str) -> int:
        """TC(value): exact occurrence count — O(log n), index-only."""
        if self.byte_keys:
            return self.tree.range_count_encoded(
                escape_text(value), text_prefix_upper(value)
            )
        return self.tree.range_count((value,), _upper_bound(value))

    def scan(
        self,
        value: str,
        lo: "FlexKey | bytes | None" = None,
        hi: "FlexKey | bytes | None" = None,
        reverse: bool = False,
    ) -> Iterator[tuple[FlexKey, NodeKind]]:
        if self.byte_keys:
            prefix = escape_text(value)
            low = prefix if lo is None else prefix + _flex_bytes(lo)
            high = text_prefix_upper(value) if hi is None else prefix + _flex_bytes(hi)
            scan = self.tree.scan_reverse_encoded if reverse else self.tree.scan_encoded
        else:
            low = (value,) if lo is None else (value, lo)
            high = _upper_bound(value) if hi is None else (value, hi)
            scan = self.tree.scan_reverse if reverse else self.tree.scan
        for (_value, key), kind in scan(low, high, True, False):
            yield key, kind

    def scan_value_range(
        self, low_value: str | None, high_value: str | None, inclusive: bool = True
    ) -> Iterator[tuple[str, FlexKey, NodeKind]]:
        """Entries for values in a string range (supports range predicates)."""
        if self.byte_keys:
            lo = None if low_value is None else escape_text(low_value)
            hi = (
                None
                if high_value is None
                else text_prefix_upper(high_value)
                if inclusive
                else escape_text(high_value)
            )
            entries = self.tree.scan_encoded(lo, hi)
        else:
            lo = None if low_value is None else (low_value,)
            hi = (
                None
                if high_value is None
                else _upper_bound(high_value)
                if inclusive
                else (high_value,)
            )
            entries = self.tree.scan(lo, hi)
        for (value, key), kind in entries:
            yield value, key, kind

    def count_value_range(
        self, low_value: str | None, high_value: str | None, inclusive: bool = True
    ) -> int:
        if self.byte_keys:
            lo = None if low_value is None else escape_text(low_value)
            hi = (
                None
                if high_value is None
                else text_prefix_upper(high_value)
                if inclusive
                else escape_text(high_value)
            )
            return self.tree.range_count_encoded(lo, hi)
        lo = None if low_value is None else (low_value,)
        hi = (
            None
            if high_value is None
            else _upper_bound(high_value)
            if inclusive
            else (high_value,)
        )
        return self.tree.range_count(lo, hi)

    def __len__(self) -> int:
        return len(self.tree)


def _flex_bytes(bound: "FlexKey | bytes") -> bytes:
    return bound if isinstance(bound, bytes) else bound.sort_bytes
