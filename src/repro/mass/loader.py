"""Streaming document loader: XML events → a bulk-loaded MASS store.

The loader walks the event stream once with O(depth) transient state,
assigning FLEX keys as it goes (attributes first, then content children,
matching document order), and bulk-loads the three indexes at the end.
This mirrors the MASS loader of Figure 2 and is how multi-gigabyte
documents would be ingested without ever holding a tree in memory — only
the flat record list, which is what the indexes store anyway.
"""

from __future__ import annotations

from typing import Iterable

from repro.mass.flexkey import FlexKey
from repro.mass.records import NodeKind, NodeRecord
from repro.mass.store import MassStore
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlEvent,
)
from repro.xmlkit.parser import parse_events


def load_events(events: Iterable[XmlEvent], name: str = "document", **store_options) -> MassStore:
    """Index an event stream into a fresh :class:`MassStore`."""
    records: list[NodeRecord] = [NodeRecord(FlexKey.document(), NodeKind.DOCUMENT)]
    # Stack of (element key, next child ordinal).
    stack: list[tuple[FlexKey, int]] = [(FlexKey.document(), 0)]
    pending_text: list[str] = []

    def flush_text() -> None:
        if not pending_text:
            return
        text = "".join(pending_text)
        pending_text.clear()
        parent_key, ordinal = stack[-1]
        records.append(NodeRecord(parent_key.child(ordinal), NodeKind.TEXT, value=text))
        stack[-1] = (parent_key, ordinal + 1)

    for event in events:
        if isinstance(event, Characters):
            # Adjacent character events merge into one text node.
            pending_text.append(event.text)
            continue
        flush_text()
        parent_key, ordinal = stack[-1]
        if isinstance(event, StartElement):
            key = parent_key.child(ordinal)
            stack[-1] = (parent_key, ordinal + 1)
            records.append(NodeRecord(key, NodeKind.ELEMENT, name=event.name))
            attr_ordinal = 0
            for attr_name, attr_value in event.attributes:
                if attr_name == "xmlns" or attr_name.startswith("xmlns:"):
                    prefix = "" if attr_name == "xmlns" else attr_name.split(":", 1)[1]
                    records.append(
                        NodeRecord(
                            key.child(attr_ordinal),
                            NodeKind.NAMESPACE,
                            name=prefix,
                            value=attr_value,
                        )
                    )
                else:
                    records.append(
                        NodeRecord(
                            key.child(attr_ordinal),
                            NodeKind.ATTRIBUTE,
                            name=attr_name,
                            value=attr_value,
                        )
                    )
                attr_ordinal += 1
            stack.append((key, attr_ordinal))
        elif isinstance(event, EndElement):
            stack.pop()
        elif isinstance(event, Comment):
            records.append(
                NodeRecord(parent_key.child(ordinal), NodeKind.COMMENT, value=event.text)
            )
            stack[-1] = (parent_key, ordinal + 1)
        elif isinstance(event, ProcessingInstruction):
            records.append(
                NodeRecord(
                    parent_key.child(ordinal),
                    NodeKind.PROCESSING_INSTRUCTION,
                    name=event.target,
                    value=event.data,
                )
            )
            stack[-1] = (parent_key, ordinal + 1)
    flush_text()

    store = MassStore(name=name, **store_options)
    store.bulk_load(records)
    return store


def load_xml(text: str, name: str = "document", **store_options) -> MassStore:
    """Parse and index an XML document string."""
    return load_events(parse_events(text), name=name, **store_options)


def load_document(path: str, **store_options) -> MassStore:
    """Parse and index an XML file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return load_xml(text, name=path, **store_options)
