"""Reconstructing XML text from the store.

MASS stores a document as flat keyed records; this module walks a subtree
key range once (one sequential leaf scan) and re-emits markup.  Used by
``QueryResult.to_xml()`` and by the round-trip tests that prove the store
preserves full document fidelity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mass.flexkey import FlexKey
from repro.mass.records import NodeKind, NodeRecord
from repro.model import Axis, NodeTest
from repro.xmlkit.serializer import escape_attribute, escape_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mass.store import MassStore


def serialize_subtree(store: "MassStore", key: FlexKey) -> str:
    """Serialize the node at ``key`` (and its subtree) back to XML text.

    Attribute order, text content, comments and processing instructions
    are preserved; the output re-parses to an identical store.
    """
    root = store.require(key)
    if root.kind is NodeKind.DOCUMENT:
        pieces: list[str] = []
        for child_key, _record in store.axis(key, Axis.CHILD, NodeTest.node()):
            pieces.append(serialize_subtree(store, child_key))
        return "".join(pieces)
    if root.kind in (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE):
        # an attribute has no XML-fragment form of its own; follow the
        # XQuery serialization convention and emit its string value
        return root.value
    records = [root]
    if root.kind is NodeKind.ELEMENT:
        lo, hi = key, key.subtree_upper_bound()
        records.extend(store.node_index.scan(lo, hi, inclusive_lo=False))
    return _render(records)


def _render(records: list[NodeRecord]) -> str:
    pieces: list[str] = []
    open_stack: list[tuple[NodeRecord, bool]] = []  # (element, tag closed?)

    def close_deeper_than(depth: int) -> None:
        while open_stack and open_stack[-1][0].depth >= depth:
            element, closed = open_stack.pop()
            if not closed:
                pieces.append("/>")
            else:
                pieces.append(f"</{element.name}>")

    def ensure_tag_closed() -> None:
        if open_stack and not open_stack[-1][1]:
            element, _ = open_stack[-1]
            open_stack[-1] = (element, True)
            pieces.append(">")

    for record in records:
        if record.kind is NodeKind.ATTRIBUTE:
            # attributes belong to the still-open start tag
            pieces.append(f' {record.name}="{escape_attribute(record.value)}"')
            continue
        if record.kind is NodeKind.NAMESPACE:
            name = "xmlns" if not record.name else f"xmlns:{record.name}"
            pieces.append(f' {name}="{escape_attribute(record.value)}"')
            continue
        close_deeper_than(record.depth)
        ensure_tag_closed()
        if record.kind is NodeKind.ELEMENT:
            pieces.append(f"<{record.name}")
            open_stack.append((record, False))
        elif record.kind is NodeKind.TEXT:
            pieces.append(escape_text(record.value))
        elif record.kind is NodeKind.COMMENT:
            pieces.append(f"<!--{record.value}-->")
        elif record.kind is NodeKind.PROCESSING_INSTRUCTION:
            data = f" {record.value}" if record.value else ""
            pieces.append(f"<?{record.name}{data}?>")
    close_deeper_than(0)
    return "".join(pieces)
