"""A counted B+-tree with paged nodes and bidirectional range scans.

This is the index structure behind all three MASS indexes.  Two features
beyond a textbook B+-tree matter for VAMANA:

* **Subtree counts.**  Every node knows how many entries live beneath it, so
  :meth:`BPlusTree.range_count` answers "how many keys in [lo, hi)?" in
  O(log n) by walking only the two boundary paths — never touching the leaf
  data in between.  This is MASS's "compute count on the index level without
  going to data", and it is what makes VAMANA's cost estimation cheap enough
  to run before every query.
* **Reverse scans.**  Leaves are doubly linked, so reverse axes (preceding,
  preceding-sibling, ancestor verification scans) cost the same as forward
  ones.

Every node lives on a page; traversals route through the owning store's
buffer pool so that benchmarks can report pages touched per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import StorageError
from repro.mass.pages import BufferPool, Page, PageKind, PageManager

#: Simulated bytes per entry used to derive node fan-out from the page size.
DEFAULT_ENTRY_BYTES = 48


@dataclass(slots=True)
class TreeMetrics:
    """Counters a single tree accumulates across operations."""

    key_comparisons: int = 0
    node_visits: int = 0
    entries_scanned: int = 0

    def reset(self) -> None:
        self.key_comparisons = 0
        self.node_visits = 0
        self.entries_scanned = 0


class _Leaf:
    __slots__ = ("keys", "values", "next", "prev", "page")

    def __init__(self, page: Page):
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.next: _Leaf | None = None
        self.prev: _Leaf | None = None
        self.page = page

    @property
    def count(self) -> int:
        return len(self.keys)


class _Internal:
    __slots__ = ("separators", "children", "counts", "page")

    def __init__(self, page: Page):
        # children[i] holds keys < separators[i]; children[-1] the rest.
        self.separators: list[Any] = []
        self.children: list[Any] = []
        self.counts: list[int] = []
        self.page = page

    @property
    def count(self) -> int:
        return sum(self.counts)


class BPlusTree:
    """Counted B+-tree mapping comparable keys to values.

    Keys must be unique; composite indexes append the FLEX key to the index
    key to guarantee this.  ``order`` (maximum entries per node) is derived
    from the page size unless given explicitly.
    """

    def __init__(
        self,
        manager: PageManager,
        buffer_pool: BufferPool,
        order: int | None = None,
        entry_bytes: int = DEFAULT_ENTRY_BYTES,
    ):
        self._manager = manager
        self._buffer = buffer_pool
        if order is None:
            order = max(4, manager.page_size // entry_bytes)
        if order < 4:
            raise StorageError(f"B+-tree order must be >= 4, got {order}")
        self._order = order
        self.metrics = TreeMetrics()
        self._root: _Leaf | _Internal = self._new_leaf()
        self._size = 0

    # -- node/page plumbing -------------------------------------------------

    def _new_leaf(self) -> _Leaf:
        page = self._manager.allocate(PageKind.LEAF)
        leaf = _Leaf(page)
        page.payload = leaf
        return leaf

    def _new_internal(self) -> _Internal:
        page = self._manager.allocate(PageKind.INTERNAL)
        node = _Internal(page)
        page.payload = node
        return node

    def _visit(self, node: _Leaf | _Internal) -> None:
        self.metrics.node_visits += 1
        self._buffer.touch(node.page)

    def _update_page_usage(self, node: _Leaf | _Internal) -> None:
        entries = len(node.keys) if isinstance(node, _Leaf) else len(node.children)
        node.page.used_bytes = entries * DEFAULT_ENTRY_BYTES
        self._manager.mark_write(node.page)

    # -- comparison helpers (instrumented binary search) ---------------------

    def _bisect_left(self, keys: list[Any], key: Any) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.metrics.key_comparisons += 1
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _bisect_right(self, keys: list[Any], key: Any) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.metrics.key_comparisons += 1
            if key < keys[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # -- public: size -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def order(self) -> int:
        return self._order

    def height(self) -> int:
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    # -- public: point operations --------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        leaf, index = self._find_leaf(key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            self.metrics.entries_scanned += 1
            return leaf.values[index]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert a new entry; replaces the value if the key exists."""
        split = self._insert_into(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = self._new_internal()
            new_root.separators = [separator]
            new_root.children = [self._root, right]
            new_root.counts = [_node_count(self._root), _node_count(right)]
            self._update_page_usage(new_root)
            self._root = new_root

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns True if it was present.

        Underflowed nodes are left slightly under-full rather than eagerly
        rebalanced — deletes are rare in this workload and counts stay
        exact either way.
        """
        removed = self._delete_from(self._root, key)
        if removed:
            if isinstance(self._root, _Internal) and len(self._root.children) == 1:
                old = self._root
                self._root = old.children[0]
                self._buffer.forget(old.page)
                self._manager.free(old.page)
        return removed

    # -- public: ordered access ----------------------------------------------

    def first(self) -> tuple[Any, Any] | None:
        if not self._size:
            return None
        node = self._root
        while isinstance(node, _Internal):
            self._visit(node)
            node = node.children[0]
        self._visit(node)
        return node.keys[0], node.values[0]

    def last(self) -> tuple[Any, Any] | None:
        if not self._size:
            return None
        node = self._root
        while isinstance(node, _Internal):
            self._visit(node)
            node = node.children[-1]
        self._visit(node)
        return node.keys[-1], node.values[-1]

    def seek(self, key: Any) -> Iterator[tuple[Any, Any]]:
        """Iterate entries with keys >= ``key`` in ascending order."""
        return self.scan(lo=key, inclusive_lo=True)

    def scan(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Forward range scan over [lo, hi) by default.

        ``None`` bounds are open.  The iterator touches each visited leaf
        page once and charges one entry-scan per yielded entry.
        """
        if not self._size:
            return
        if lo is None:
            leaf, index = self._leftmost_leaf(), 0
        else:
            leaf, index = self._find_leaf(
                lo, bisect=self._bisect_left if inclusive_lo else self._bisect_right
            )
        while leaf is not None:
            if index >= len(leaf.keys):
                leaf = leaf.next
                index = 0
                if leaf is not None:
                    self._visit(leaf)
                continue
            key = leaf.keys[index]
            if hi is not None:
                self.metrics.key_comparisons += 1
                past = key > hi if inclusive_hi else key >= hi
                if past:
                    return
            self.metrics.entries_scanned += 1
            yield key, leaf.values[index]
            index += 1

    def scan_reverse(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Descending scan of the same range as :meth:`scan`."""
        if not self._size:
            return
        if hi is None:
            leaf = self._rightmost_leaf()
            index = len(leaf.keys) - 1
        else:
            bisect = self._bisect_right if inclusive_hi else self._bisect_left
            leaf, index = self._find_leaf(hi, bisect=bisect)
            index -= 1
            if index < 0:
                leaf = leaf.prev
                if leaf is None:
                    return
                self._visit(leaf)
                index = len(leaf.keys) - 1
        while leaf is not None:
            if index < 0:
                leaf = leaf.prev
                if leaf is None:
                    return
                self._visit(leaf)
                index = len(leaf.keys) - 1
                continue
            key = leaf.keys[index]
            if lo is not None:
                self.metrics.key_comparisons += 1
                past = key < lo if inclusive_lo else key <= lo
                if past:
                    return
            self.metrics.entries_scanned += 1
            yield key, leaf.values[index]
            index -= 1

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self.scan()

    # -- public: counting ------------------------------------------------------

    def rank(self, key: Any, inclusive: bool = False) -> int:
        """Number of stored keys < ``key`` (<= if ``inclusive``).

        O(log n): one root-to-leaf descent adding up the counts of skipped
        siblings.  No leaf data outside the boundary path is touched.
        """
        bisect = self._bisect_right if inclusive else self._bisect_left
        node = self._root
        rank = 0
        while isinstance(node, _Internal):
            self._visit(node)
            child_index = bisect(node.separators, key)
            rank += sum(node.counts[:child_index])
            node = node.children[child_index]
        self._visit(node)
        rank += bisect(node.keys, key)
        return rank

    def range_count(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> int:
        """Count keys in the range without fetching them."""
        high_rank = self._size if hi is None else self.rank(hi, inclusive=inclusive_hi)
        low_rank = 0 if lo is None else self.rank(lo, inclusive=not inclusive_lo)
        return max(0, high_rank - low_rank)

    # -- public: bulk load -------------------------------------------------------

    def bulk_load(self, items: Iterator[tuple[Any, Any]] | list[tuple[Any, Any]]) -> None:
        """Build the tree bottom-up from key-sorted unique items.

        Replaces current content.  Loading a document this way produces
        ~69%-full leaves like a real clustered bulk load would.
        """
        pairs = list(items)
        for earlier, later in zip(pairs, pairs[1:]):
            if not earlier[0] < later[0]:
                raise StorageError(
                    f"bulk_load input not strictly sorted: {earlier[0]!r} !< {later[0]!r}"
                )
        self._dispose(self._root)
        self._size = 0
        if not pairs:
            self._root = self._new_leaf()
            return
        per_leaf = max(2, (self._order * 2) // 3)
        leaves: list[_Leaf] = []
        previous: _Leaf | None = None
        for start in range(0, len(pairs), per_leaf):
            chunk = pairs[start : start + per_leaf]
            leaf = self._new_leaf()
            leaf.keys = [key for key, _ in chunk]
            leaf.values = [value for _, value in chunk]
            leaf.prev = previous
            if previous is not None:
                previous.next = leaf
            self._update_page_usage(leaf)
            leaves.append(leaf)
            previous = leaf
        self._size = len(pairs)
        level: list[_Leaf | _Internal] = leaves
        per_node = max(2, (self._order * 2) // 3)
        while len(level) > 1:
            parents: list[_Internal] = []
            for start in range(0, len(level), per_node):
                group = level[start : start + per_node]
                parent = self._new_internal()
                parent.children = list(group)
                parent.separators = [_subtree_min(child) for child in group[1:]]
                parent.counts = [_node_count(child) for child in group]
                self._update_page_usage(parent)
                parents.append(parent)
            level = parents
        self._root = level[0]

    # -- internal: descent ---------------------------------------------------------

    def _find_leaf(
        self, key: Any, bisect: Callable[[list[Any], Any], int] | None = None
    ) -> tuple[_Leaf, int]:
        """Descend to the leaf for ``key``; returns (leaf, slot index)."""
        if bisect is None:
            bisect = self._bisect_left
        node = self._root
        while isinstance(node, _Internal):
            self._visit(node)
            child_index = self._bisect_right(node.separators, key)
            node = node.children[child_index]
        self._visit(node)
        return node, bisect(node.keys, key)

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            self._visit(node)
            node = node.children[0]
        self._visit(node)
        return node

    def _rightmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            self._visit(node)
            node = node.children[-1]
        self._visit(node)
        return node

    # -- internal: insert ------------------------------------------------------------

    def _insert_into(
        self, node: _Leaf | _Internal, key: Any, value: Any
    ) -> tuple[Any, _Leaf | _Internal] | None:
        """Recursive insert; returns (separator, new right sibling) on split."""
        self._visit(node)
        if isinstance(node, _Leaf):
            index = self._bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                self._manager.mark_write(node.page)
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._size += 1
            self._update_page_usage(node)
            if len(node.keys) <= self._order:
                return None
            return self._split_leaf(node)
        child_index = self._bisect_right(node.separators, key)
        had = _node_count(node.children[child_index])
        split = self._insert_into(node.children[child_index], key, value)
        node.counts[child_index] += _node_count(node.children[child_index]) - had
        if split is not None:
            separator, right = split
            node.separators.insert(child_index, separator)
            node.children.insert(child_index + 1, right)
            node.counts[child_index] = _node_count(node.children[child_index])
            node.counts.insert(child_index + 1, _node_count(right))
        self._update_page_usage(node)
        if len(node.children) <= self._order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        middle = len(leaf.keys) // 2
        right = self._new_leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        self._update_page_usage(leaf)
        self._update_page_usage(right)
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Internal]:
        middle = len(node.children) // 2
        right = self._new_internal()
        separator = node.separators[middle - 1]
        right.separators = node.separators[middle:]
        right.children = node.children[middle:]
        right.counts = node.counts[middle:]
        node.separators = node.separators[: middle - 1]
        node.children = node.children[:middle]
        node.counts = node.counts[:middle]
        self._update_page_usage(node)
        self._update_page_usage(right)
        return separator, right

    # -- internal: delete ----------------------------------------------------------------

    def _delete_from(self, node: _Leaf | _Internal, key: Any) -> bool:
        self._visit(node)
        if isinstance(node, _Leaf):
            index = self._bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            del node.keys[index]
            del node.values[index]
            self._size -= 1
            self._update_page_usage(node)
            return True
        child_index = self._bisect_right(node.separators, key)
        child = node.children[child_index]
        removed = self._delete_from(child, key)
        if removed:
            node.counts[child_index] -= 1
            if _node_count(child) == 0 and len(node.children) > 1:
                self._unlink_empty_child(node, child_index)
            self._update_page_usage(node)
        return removed

    def _unlink_empty_child(self, node: _Internal, child_index: int) -> None:
        child = node.children[child_index]
        if isinstance(child, _Leaf):
            if child.prev is not None:
                child.prev.next = child.next
            if child.next is not None:
                child.next.prev = child.prev
        node.children.pop(child_index)
        node.counts.pop(child_index)
        if child_index < len(node.separators):
            node.separators.pop(child_index)
        else:
            node.separators.pop()
        self._buffer.forget(child.page)
        self._manager.free(child.page)

    # -- internal: teardown -----------------------------------------------------------------

    def _dispose(self, node: _Leaf | _Internal) -> None:
        if isinstance(node, _Internal):
            for child in node.children:
                self._dispose(child)
        self._buffer.forget(node.page)
        self._manager.free(node.page)

    # -- diagnostics ---------------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate ordering, linkage and counts; raises StorageError if broken.

        Used by property tests after randomized insert/delete sequences.
        """
        total, _first, _last = self._check_node(self._root, None, None)
        if total != self._size:
            raise StorageError(f"size mismatch: counted {total}, recorded {self._size}")
        # Leaf chain must enumerate exactly the sorted key set.
        chained = [key for key, _ in self.scan()]
        if chained != sorted(chained):
            raise StorageError("leaf chain out of order")
        if len(chained) != self._size:
            raise StorageError("leaf chain length mismatch")

    def _check_node(self, node: _Leaf | _Internal, lo: Any, hi: Any) -> tuple[int, Any, Any]:
        if isinstance(node, _Leaf):
            for earlier, later in zip(node.keys, node.keys[1:]):
                if not earlier < later:
                    raise StorageError("leaf keys not strictly sorted")
            for key in node.keys:
                if lo is not None and key < lo:
                    raise StorageError("leaf key below subtree bound")
                if hi is not None and not key < hi:
                    raise StorageError("leaf key above subtree bound")
            if not node.keys:
                return 0, None, None
            return len(node.keys), node.keys[0], node.keys[-1]
        total = 0
        for index, child in enumerate(node.children):
            child_lo = node.separators[index - 1] if index > 0 else lo
            child_hi = node.separators[index] if index < len(node.separators) else hi
            count, _cf, _cl = self._check_node(child, child_lo, child_hi)
            if count != node.counts[index]:
                raise StorageError(
                    f"count mismatch: child has {count}, parent records {node.counts[index]}"
                )
            total += count
        return total, None, None


def _node_count(node: _Leaf | _Internal) -> int:
    return node.count


def _subtree_min(node: _Leaf | _Internal) -> Any:
    while isinstance(node, _Internal):
        node = node.children[0]
    return node.keys[0]
