"""A counted B+-tree with paged nodes and bidirectional range scans.

This is the index structure behind all three MASS indexes.  Two features
beyond a textbook B+-tree matter for VAMANA:

* **Subtree counts.**  Every node knows how many entries live beneath it, so
  :meth:`BPlusTree.range_count` answers "how many keys in [lo, hi)?" in
  O(log n) by walking only the two boundary paths — never touching the leaf
  data in between.  This is MASS's "compute count on the index level without
  going to data", and it is what makes VAMANA's cost estimation cheap enough
  to run before every query.
* **Reverse scans.**  Leaves are doubly linked, so reverse axes (preceding,
  preceding-sibling, ancestor verification scans) cost the same as forward
  ones.

Every node lives on a page; traversals route through the owning store's
buffer pool so that benchmarks can report pages touched per query.

Search keys
-----------

The tree separates *logical* keys (what callers insert and scans yield)
from *search* keys (what descents and node searches compare).  With no
``encode`` function the two coincide and every comparison runs through the
instrumented Python binary search.  When the tree is built with an
order-preserving ``encode`` (FLEX keys encode to :attr:`FlexKey.sort_bytes`,
composite index keys to escaped byte strings), each node keeps a parallel
array of byte search keys and searches it with the stdlib ``bisect`` C
implementation — the ``key_comparisons`` counter is then advanced by the
calibrated comparison count of a binary search (``len(keys).bit_length()``)
so I/O accounting stays comparable across both modes.  Range bounds are
encoded once per operation, never per comparison, and callers that already
hold byte bounds (subtree prefix ranges) can pass them straight to the
``*_encoded`` entry points.
"""

from __future__ import annotations

from bisect import bisect_left as _c_bisect_left, bisect_right as _c_bisect_right
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import StorageError
from repro.mass.pages import BufferPool, Page, PageKind, PageManager

#: Simulated bytes per entry used to derive node fan-out from the page size.
DEFAULT_ENTRY_BYTES = 48


@dataclass(slots=True)
class TreeMetrics:
    """Counters a single tree accumulates across operations.

    ``root_descents`` counts full root-to-leaf positioning walks (point
    lookups, scan starts); ``cursor_resumes`` counts the positionings a
    :class:`BTreeCursor` answered from its pinned leaf instead.  Their
    ratio is the skip-ahead machinery's effectiveness measure.
    """

    key_comparisons: int = 0
    node_visits: int = 0
    entries_scanned: int = 0
    root_descents: int = 0
    cursor_resumes: int = 0

    def reset(self) -> None:
        self.key_comparisons = 0
        self.node_visits = 0
        self.entries_scanned = 0
        self.root_descents = 0
        self.cursor_resumes = 0


class _Leaf:
    __slots__ = ("keys", "skeys", "values", "next", "prev", "page")

    def __init__(self, page: Page):
        self.keys: list[Any] = []
        self.skeys: list[Any] = []  # parallel search keys (byte mode only)
        self.values: list[Any] = []
        self.next: _Leaf | None = None
        self.prev: _Leaf | None = None
        self.page = page

    @property
    def count(self) -> int:
        return len(self.keys)


class _Internal:
    __slots__ = ("separators", "children", "counts", "page")

    def __init__(self, page: Page):
        # children[i] holds search keys < separators[i]; children[-1] the rest.
        self.separators: list[Any] = []
        self.children: list[Any] = []
        self.counts: list[int] = []
        self.page = page

    @property
    def count(self) -> int:
        return sum(self.counts)


class BPlusTree:
    """Counted B+-tree mapping comparable keys to values.

    Keys must be unique; composite indexes append the FLEX key to the index
    key to guarantee this.  ``order`` (maximum entries per node) is derived
    from the page size unless given explicitly.  ``encode``, if given, maps
    a logical key to a byte search key whose lexicographic order equals the
    logical order; node searches then run on flat byte arrays at C speed.
    """

    def __init__(
        self,
        manager: PageManager,
        buffer_pool: BufferPool,
        order: int | None = None,
        entry_bytes: int = DEFAULT_ENTRY_BYTES,
        encode: Callable[[Any], bytes] | None = None,
    ):
        self._manager = manager
        self._buffer = buffer_pool
        if order is None:
            order = max(4, manager.page_size // entry_bytes)
        if order < 4:
            raise StorageError(f"B+-tree order must be >= 4, got {order}")
        self._order = order
        self._encode = encode
        self.metrics = TreeMetrics()
        self._root: _Leaf | _Internal = self._new_leaf()
        self._size = 0
        #: Structural modification counter: bumped by insert/delete/bulk_load.
        #: Cursors snapshot it and refuse to resume from a stale pin.
        self._mods = 0
        #: Snapshot isolation: a frozen tree rejects every structural
        #: mutation, so ``_mods`` can never move again and pinned-leaf
        #: cursors stay valid for as long as the snapshot is held — the
        #: property concurrent readers rely on (:mod:`repro.serving`).
        self._frozen = False

    # -- snapshot freezing ----------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        """Make the tree immutable: insert/delete/bulk_load now raise."""
        self._frozen = True

    def _ensure_mutable(self) -> None:
        if self._frozen:
            raise StorageError(
                "tree is frozen: it belongs to a published store snapshot"
            )

    # -- node/page plumbing -------------------------------------------------

    def _new_leaf(self) -> _Leaf:
        page = self._manager.allocate(PageKind.LEAF)
        leaf = _Leaf(page)
        page.payload = leaf
        return leaf

    def _new_internal(self) -> _Internal:
        page = self._manager.allocate(PageKind.INTERNAL)
        node = _Internal(page)
        page.payload = node
        return node

    def _visit(self, node: _Leaf | _Internal) -> None:
        self.metrics.node_visits += 1
        self._buffer.touch(node.page)

    def _update_page_usage(self, node: _Leaf | _Internal) -> None:
        entries = len(node.keys) if isinstance(node, _Leaf) else len(node.children)
        node.page.used_bytes = entries * DEFAULT_ENTRY_BYTES
        self._manager.mark_write(node.page)

    # -- search keys ---------------------------------------------------------

    def search_key(self, key: Any) -> Any:
        """The search-space image of a logical key (identity w/o encoder)."""
        return key if self._encode is None else self._encode(key)

    def _search_opt(self, key: Any) -> Any:
        return None if key is None else self.search_key(key)

    def _leaf_skeys(self, leaf: _Leaf) -> list[Any]:
        return leaf.keys if self._encode is None else leaf.skeys

    # -- comparison helpers (instrumented binary search) ---------------------

    def _bisect_left(self, skeys: list[Any], skey: Any) -> int:
        if self._encode is not None:
            # C-speed byte search; charge the calibrated comparison count
            # a binary search over n keys performs.
            self.metrics.key_comparisons += len(skeys).bit_length()
            return _c_bisect_left(skeys, skey)
        lo, hi = 0, len(skeys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.metrics.key_comparisons += 1
            if skeys[mid] < skey:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _bisect_right(self, skeys: list[Any], skey: Any) -> int:
        if self._encode is not None:
            self.metrics.key_comparisons += len(skeys).bit_length()
            return _c_bisect_right(skeys, skey)
        lo, hi = 0, len(skeys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.metrics.key_comparisons += 1
            if skey < skeys[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # -- public: size -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def order(self) -> int:
        return self._order

    def height(self) -> int:
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    # -- public: point operations --------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        skey = self.search_key(key)
        leaf, index = self._find_leaf(skey)
        skeys = self._leaf_skeys(leaf)
        if index < len(skeys) and skeys[index] == skey:
            self.metrics.entries_scanned += 1
            return leaf.values[index]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert a new entry; replaces the value if the key exists."""
        self._ensure_mutable()
        self._mods += 1
        split = self._insert_into(self._root, key, self.search_key(key), value)
        if split is not None:
            separator, right = split
            new_root = self._new_internal()
            new_root.separators = [separator]
            new_root.children = [self._root, right]
            new_root.counts = [_node_count(self._root), _node_count(right)]
            self._update_page_usage(new_root)
            self._root = new_root

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns True if it was present.

        Underflowed nodes are left slightly under-full rather than eagerly
        rebalanced — deletes are rare in this workload and counts stay
        exact either way.
        """
        self._ensure_mutable()
        self._mods += 1
        removed = self._delete_from(self._root, self.search_key(key))
        if removed:
            if isinstance(self._root, _Internal) and len(self._root.children) == 1:
                old = self._root
                self._root = old.children[0]
                self._buffer.forget(old.page)
                self._manager.free(old.page)
        return removed

    # -- public: ordered access ----------------------------------------------

    def first(self) -> tuple[Any, Any] | None:
        if not self._size:
            return None
        node = self._root
        while isinstance(node, _Internal):
            self._visit(node)
            node = node.children[0]
        self._visit(node)
        return node.keys[0], node.values[0]

    def last(self) -> tuple[Any, Any] | None:
        if not self._size:
            return None
        node = self._root
        while isinstance(node, _Internal):
            self._visit(node)
            node = node.children[-1]
        self._visit(node)
        return node.keys[-1], node.values[-1]

    def seek(self, key: Any) -> Iterator[tuple[Any, Any]]:
        """Iterate entries with keys >= ``key`` in ascending order."""
        return self.scan(lo=key, inclusive_lo=True)

    def scan(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Forward range scan over [lo, hi) by default.

        ``None`` bounds are open.  The iterator touches each visited leaf
        page once and charges one entry-scan per yielded entry.
        """
        return self.scan_encoded(
            self._search_opt(lo), self._search_opt(hi), inclusive_lo, inclusive_hi
        )

    def scan_encoded(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """:meth:`scan` with bounds already in search-key space."""
        if not self._size:
            return
        if lo is None:
            leaf, index = self._leftmost_leaf(), 0
        else:
            leaf, index = self._find_leaf(lo, right=not inclusive_lo)
        while leaf is not None:
            skeys = self._leaf_skeys(leaf)
            if index >= len(skeys):
                leaf = leaf.next
                index = 0
                if leaf is not None:
                    self._visit(leaf)
                continue
            if hi is not None:
                skey = skeys[index]
                self.metrics.key_comparisons += 1
                past = skey > hi if inclusive_hi else skey >= hi
                if past:
                    return
            self.metrics.entries_scanned += 1
            yield leaf.keys[index], leaf.values[index]
            index += 1

    def scan_reverse(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Descending scan of the same range as :meth:`scan`."""
        return self.scan_reverse_encoded(
            self._search_opt(lo), self._search_opt(hi), inclusive_lo, inclusive_hi
        )

    def scan_reverse_encoded(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """:meth:`scan_reverse` with bounds already in search-key space."""
        if not self._size:
            return
        if hi is None:
            leaf = self._rightmost_leaf()
            index = len(leaf.keys) - 1
        else:
            leaf, index = self._find_leaf(hi, right=inclusive_hi)
            index -= 1
            if index < 0:
                leaf = leaf.prev
                if leaf is None:
                    return
                self._visit(leaf)
                index = len(leaf.keys) - 1
        while leaf is not None:
            if index < 0:
                leaf = leaf.prev
                if leaf is None:
                    return
                self._visit(leaf)
                index = len(leaf.keys) - 1
                continue
            if lo is not None:
                skey = self._leaf_skeys(leaf)[index]
                self.metrics.key_comparisons += 1
                past = skey < lo if inclusive_lo else skey <= lo
                if past:
                    return
            self.metrics.entries_scanned += 1
            yield leaf.keys[index], leaf.values[index]
            index -= 1

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self.scan()

    # -- public: counting ------------------------------------------------------

    def rank(self, key: Any, inclusive: bool = False) -> int:
        """Number of stored keys < ``key`` (<= if ``inclusive``).

        O(log n): one root-to-leaf descent adding up the counts of skipped
        siblings.  No leaf data outside the boundary path is touched.
        """
        return self.rank_encoded(self.search_key(key), inclusive)

    def rank_encoded(self, skey: Any, inclusive: bool = False) -> int:
        """:meth:`rank` with the key already in search-key space."""
        if self._encode is not None:
            # Byte-mode fast path: C bisect over flat byte arrays with
            # hoisted locals and one batched metrics update per descent.
            # The accounting is identical to the generic path below.
            bis = _c_bisect_right if inclusive else _c_bisect_left
            touch = self._buffer.touch
            node = self._root
            rank = 0
            visits = 0
            comparisons = 0
            while isinstance(node, _Internal):
                visits += 1
                touch(node.page)
                separators = node.separators
                comparisons += len(separators).bit_length()
                child_index = bis(separators, skey)
                if child_index:
                    rank += sum(node.counts[:child_index])
                node = node.children[child_index]
            touch(node.page)
            skeys = node.skeys
            metrics = self.metrics
            metrics.node_visits += visits + 1
            metrics.key_comparisons += comparisons + len(skeys).bit_length()
            return rank + bis(skeys, skey)
        bisect = self._bisect_right if inclusive else self._bisect_left
        node = self._root
        rank = 0
        while isinstance(node, _Internal):
            self._visit(node)
            child_index = bisect(node.separators, skey)
            rank += sum(node.counts[:child_index])
            node = node.children[child_index]
        self._visit(node)
        rank += bisect(self._leaf_skeys(node), skey)
        return rank

    def range_count(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> int:
        """Count keys in the range without fetching them."""
        return self.range_count_encoded(
            self._search_opt(lo), self._search_opt(hi), inclusive_lo, inclusive_hi
        )

    def range_count_encoded(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> int:
        """:meth:`range_count` with bounds already in search-key space.

        In byte mode a two-sided range is answered with one joint descent:
        while both boundary paths pass through the same child, their
        skipped-sibling counts cancel in ``rank(hi) - rank(lo)``, so the
        shared prefix of the two descents is walked (and its pages
        touched) once instead of twice.
        """
        if self._encode is not None and lo is not None and hi is not None:
            return self._range_count_joint(lo, hi, inclusive_lo, inclusive_hi)
        high_rank = (
            self._size if hi is None else self.rank_encoded(hi, inclusive=inclusive_hi)
        )
        low_rank = (
            0 if lo is None else self.rank_encoded(lo, inclusive=not inclusive_lo)
        )
        return max(0, high_rank - low_rank)

    def _range_count_joint(
        self, lo: Any, hi: Any, inclusive_lo: bool, inclusive_hi: bool
    ) -> int:
        """Single-descent counted-tree range count (byte mode only)."""
        bis_lo = _c_bisect_right if not inclusive_lo else _c_bisect_left
        bis_hi = _c_bisect_right if inclusive_hi else _c_bisect_left
        touch = self._buffer.touch
        metrics = self.metrics
        node = self._root
        visits = 0
        comparisons = 0
        while isinstance(node, _Internal):
            visits += 1
            touch(node.page)
            separators = node.separators
            comparisons += 2 * len(separators).bit_length()
            lo_index = bis_lo(separators, lo)
            hi_index = bis_hi(separators, hi)
            if lo_index != hi_index:
                # Paths diverge here: everything strictly between the two
                # boundary children is in-range; finish each side alone.
                between = sum(node.counts[lo_index:hi_index])
                metrics.node_visits += visits
                metrics.key_comparisons += comparisons
                low_rank = self._boundary_rank(node.children[lo_index], lo, bis_lo)
                high_rank = self._boundary_rank(node.children[hi_index], hi, bis_hi)
                return max(0, between + high_rank - low_rank)
            node = node.children[lo_index]
        visits += 1
        touch(node.page)
        skeys = node.skeys
        comparisons += 2 * len(skeys).bit_length()
        metrics.node_visits += visits
        metrics.key_comparisons += comparisons
        return max(0, bis_hi(skeys, hi) - bis_lo(skeys, lo))

    def _boundary_rank(
        self, node: "_Leaf | _Internal", skey: Any, bis: Callable
    ) -> int:
        """Rank of ``skey`` within one boundary subtree (byte mode only)."""
        touch = self._buffer.touch
        rank = 0
        visits = 0
        comparisons = 0
        while isinstance(node, _Internal):
            visits += 1
            touch(node.page)
            separators = node.separators
            comparisons += len(separators).bit_length()
            child_index = bis(separators, skey)
            if child_index:
                rank += sum(node.counts[:child_index])
            node = node.children[child_index]
        touch(node.page)
        skeys = node.skeys
        metrics = self.metrics
        metrics.node_visits += visits + 1
        metrics.key_comparisons += comparisons + len(skeys).bit_length()
        return rank + bis(skeys, skey)

    # -- public: bulk load -------------------------------------------------------

    def bulk_load(self, items: Iterator[tuple[Any, Any]] | list[tuple[Any, Any]]) -> None:
        """Build the tree bottom-up from key-sorted unique items.

        Replaces current content.  Loading a document this way produces
        ~69%-full leaves like a real clustered bulk load would.
        """
        self._ensure_mutable()
        self._mods += 1
        pairs = list(items)
        if self._encode is None:
            skeys = [key for key, _ in pairs]
        else:
            encode = self._encode
            skeys = [encode(key) for key, _ in pairs]
        for index in range(1, len(skeys)):
            if not skeys[index - 1] < skeys[index]:
                raise StorageError(
                    "bulk_load input not strictly sorted: "
                    f"{pairs[index - 1][0]!r} !< {pairs[index][0]!r}"
                )
        self._dispose(self._root)
        self._size = 0
        if not pairs:
            self._root = self._new_leaf()
            return
        per_leaf = max(2, (self._order * 2) // 3)
        leaves: list[_Leaf] = []
        previous: _Leaf | None = None
        for start in range(0, len(pairs), per_leaf):
            chunk = pairs[start : start + per_leaf]
            leaf = self._new_leaf()
            leaf.keys = [key for key, _ in chunk]
            leaf.values = [value for _, value in chunk]
            if self._encode is not None:
                leaf.skeys = skeys[start : start + per_leaf]
            leaf.prev = previous
            if previous is not None:
                previous.next = leaf
            self._update_page_usage(leaf)
            leaves.append(leaf)
            previous = leaf
        self._size = len(pairs)
        level: list[_Leaf | _Internal] = leaves
        per_node = max(2, (self._order * 2) // 3)
        while len(level) > 1:
            parents: list[_Internal] = []
            for start in range(0, len(level), per_node):
                group = level[start : start + per_node]
                parent = self._new_internal()
                parent.children = list(group)
                parent.separators = [self._subtree_min(child) for child in group[1:]]
                parent.counts = [_node_count(child) for child in group]
                self._update_page_usage(parent)
                parents.append(parent)
            level = parents
        self._root = level[0]

    # -- internal: descent ---------------------------------------------------------

    def _find_leaf(self, skey: Any, right: bool = False) -> tuple[_Leaf, int]:
        """Descend to the leaf for ``skey``; returns (leaf, slot index).

        The leaf slot is the bisect-left position, or bisect-right when
        ``right`` is set (used by exclusive/inclusive scan bounds).
        """
        self.metrics.root_descents += 1
        if self._encode is not None:
            # Byte-mode fast path — see rank_encoded.
            touch = self._buffer.touch
            node = self._root
            visits = 1
            comparisons = 0
            while isinstance(node, _Internal):
                touch(node.page)
                separators = node.separators
                comparisons += len(separators).bit_length()
                node = node.children[_c_bisect_right(separators, skey)]
                visits += 1
            touch(node.page)
            skeys = node.skeys
            metrics = self.metrics
            metrics.node_visits += visits
            metrics.key_comparisons += comparisons + len(skeys).bit_length()
            slot = (_c_bisect_right if right else _c_bisect_left)(skeys, skey)
            return node, slot
        bisect = self._bisect_right if right else self._bisect_left
        node = self._root
        while isinstance(node, _Internal):
            self._visit(node)
            child_index = self._bisect_right(node.separators, skey)
            node = node.children[child_index]
        self._visit(node)
        return node, bisect(self._leaf_skeys(node), skey)

    def _leftmost_leaf(self) -> _Leaf:
        self.metrics.root_descents += 1
        node = self._root
        while isinstance(node, _Internal):
            self._visit(node)
            node = node.children[0]
        self._visit(node)
        return node

    def _rightmost_leaf(self) -> _Leaf:
        self.metrics.root_descents += 1
        node = self._root
        while isinstance(node, _Internal):
            self._visit(node)
            node = node.children[-1]
        self._visit(node)
        return node

    def _subtree_min(self, node: _Leaf | _Internal) -> Any:
        while isinstance(node, _Internal):
            node = node.children[0]
        return self._leaf_skeys(node)[0]

    # -- internal: insert ------------------------------------------------------------

    def _insert_into(
        self, node: _Leaf | _Internal, key: Any, skey: Any, value: Any
    ) -> tuple[Any, _Leaf | _Internal] | None:
        """Recursive insert; returns (separator, new right sibling) on split."""
        self._visit(node)
        if isinstance(node, _Leaf):
            skeys = self._leaf_skeys(node)
            index = self._bisect_left(skeys, skey)
            if index < len(skeys) and skeys[index] == skey:
                node.values[index] = value
                self._manager.mark_write(node.page)
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            if self._encode is not None:
                node.skeys.insert(index, skey)
            self._size += 1
            self._update_page_usage(node)
            if len(node.keys) <= self._order:
                return None
            return self._split_leaf(node)
        child_index = self._bisect_right(node.separators, skey)
        had = _node_count(node.children[child_index])
        split = self._insert_into(node.children[child_index], key, skey, value)
        node.counts[child_index] += _node_count(node.children[child_index]) - had
        if split is not None:
            separator, right = split
            node.separators.insert(child_index, separator)
            node.children.insert(child_index + 1, right)
            node.counts[child_index] = _node_count(node.children[child_index])
            node.counts.insert(child_index + 1, _node_count(right))
        self._update_page_usage(node)
        if len(node.children) <= self._order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        middle = len(leaf.keys) // 2
        right = self._new_leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        if self._encode is not None:
            right.skeys = leaf.skeys[middle:]
            leaf.skeys = leaf.skeys[:middle]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        self._update_page_usage(leaf)
        self._update_page_usage(right)
        return self._leaf_skeys(right)[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Internal]:
        middle = len(node.children) // 2
        right = self._new_internal()
        separator = node.separators[middle - 1]
        right.separators = node.separators[middle:]
        right.children = node.children[middle:]
        right.counts = node.counts[middle:]
        node.separators = node.separators[: middle - 1]
        node.children = node.children[:middle]
        node.counts = node.counts[:middle]
        self._update_page_usage(node)
        self._update_page_usage(right)
        return separator, right

    # -- internal: delete ----------------------------------------------------------------

    def _delete_from(self, node: _Leaf | _Internal, skey: Any) -> bool:
        self._visit(node)
        if isinstance(node, _Leaf):
            skeys = self._leaf_skeys(node)
            index = self._bisect_left(skeys, skey)
            if index >= len(skeys) or skeys[index] != skey:
                return False
            del node.keys[index]
            del node.values[index]
            if self._encode is not None:
                del node.skeys[index]
            self._size -= 1
            self._update_page_usage(node)
            return True
        child_index = self._bisect_right(node.separators, skey)
        child = node.children[child_index]
        removed = self._delete_from(child, skey)
        if removed:
            node.counts[child_index] -= 1
            if _node_count(child) == 0 and len(node.children) > 1:
                self._unlink_empty_child(node, child_index)
            self._update_page_usage(node)
        return removed

    def _unlink_empty_child(self, node: _Internal, child_index: int) -> None:
        child = node.children[child_index]
        if isinstance(child, _Leaf):
            if child.prev is not None:
                child.prev.next = child.next
            if child.next is not None:
                child.next.prev = child.prev
        node.children.pop(child_index)
        node.counts.pop(child_index)
        if child_index < len(node.separators):
            node.separators.pop(child_index)
        else:
            node.separators.pop()
        self._buffer.forget(child.page)
        self._manager.free(child.page)

    # -- internal: teardown -----------------------------------------------------------------

    def _dispose(self, node: _Leaf | _Internal) -> None:
        if isinstance(node, _Internal):
            for child in node.children:
                self._dispose(child)
        self._buffer.forget(node.page)
        self._manager.free(node.page)

    # -- diagnostics ---------------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate ordering, linkage and counts; raises StorageError if broken.

        Used by property tests after randomized insert/delete sequences.
        Checks run in search-key space, which must mirror logical order.
        """
        total, _first, _last = self._check_node(self._root, None, None)
        if total != self._size:
            raise StorageError(f"size mismatch: counted {total}, recorded {self._size}")
        # Leaf chain must enumerate exactly the sorted key set.
        chained = [key for key, _ in self.scan()]
        if self._encode is None:
            if chained != sorted(chained):
                raise StorageError("leaf chain out of order")
        else:
            encode = self._encode
            encoded = [encode(key) for key in chained]
            if encoded != sorted(encoded):
                raise StorageError("leaf chain out of order")
        if len(chained) != self._size:
            raise StorageError("leaf chain length mismatch")

    def _check_node(self, node: _Leaf | _Internal, lo: Any, hi: Any) -> tuple[int, Any, Any]:
        if isinstance(node, _Leaf):
            skeys = self._leaf_skeys(node)
            if self._encode is not None and [
                self._encode(key) for key in node.keys
            ] != skeys:
                raise StorageError("leaf search keys out of sync with keys")
            for earlier, later in zip(skeys, skeys[1:]):
                if not earlier < later:
                    raise StorageError("leaf keys not strictly sorted")
            for skey in skeys:
                if lo is not None and skey < lo:
                    raise StorageError("leaf key below subtree bound")
                if hi is not None and not skey < hi:
                    raise StorageError("leaf key above subtree bound")
            if not skeys:
                return 0, None, None
            return len(skeys), skeys[0], skeys[-1]
        total = 0
        for index, child in enumerate(node.children):
            child_lo = node.separators[index - 1] if index > 0 else lo
            child_hi = node.separators[index] if index < len(node.separators) else hi
            count, _cf, _cl = self._check_node(child, child_lo, child_hi)
            if count != node.counts[index]:
                raise StorageError(
                    f"count mismatch: child has {count}, parent records {node.counts[index]}"
                )
            total += count
        return total, None, None


class BTreeCursor:
    """A pinned-leaf range scanner that resumes instead of re-descending.

    A plain :meth:`BPlusTree.scan_encoded` starts every range with a full
    root-to-leaf descent.  Axis evaluation, however, issues long runs of
    *nearby* ranges — one per context node, in document order — so the
    next range's start almost always lives in the leaf where the previous
    scan stopped (or where it *started*: sibling axes re-scan overlapping
    tails, which is what the seek anchor catches).  The cursor pins
    ``(leaf, slot)`` after every operation and answers the next ``seek``
    by bisecting the pinned, anchor, or directly adjacent leaves; only
    when the target is further away does it fall back to a descent.

    Resumes and descents are tallied in :class:`TreeMetrics`
    (``cursor_resumes`` / ``root_descents``).  A structural modification
    (insert, delete, bulk load) bumps the tree's ``_mods`` stamp and
    silently invalidates the pin — the next positioning simply descends,
    so a cursor can never observe unlinked leaves.  At the store level
    this is the same event that bumps ``MassStore.epoch``.

    Cursors serve *forward and reverse* scans and are single-consumer: a
    scan generator writes its stopping position back into the cursor, so
    interleaving two live scans from one cursor would corrupt the pin
    (each scan stamps a token and only the newest writes back).
    """

    __slots__ = ("_tree", "_leaf", "_index", "_anchor", "_mods", "_token")

    def __init__(self, tree: BPlusTree):
        self._tree = tree
        self._leaf: _Leaf | None = None
        self._index = 0
        self._anchor: _Leaf | None = None  # leaf where the last seek landed
        self._mods = -1
        self._token = 0

    # -- positioning ---------------------------------------------------------

    def _pin(self, leaf: _Leaf | None, index: int) -> None:
        self._leaf = leaf
        self._index = index
        self._mods = self._tree._mods

    def _resume(self, skey: Any, right: bool) -> tuple[_Leaf, int] | None:
        """Position for ``skey`` from the pinned neighbourhood, or None."""
        tree = self._tree
        if self._mods != tree._mods:
            return None
        seen: list[_Leaf] = []
        for base in (self._leaf, self._anchor):
            if base is None:
                continue
            for leaf in (base, base.next, base.prev):
                if leaf is None or not leaf.keys or leaf in seen:
                    continue
                seen.append(leaf)
                skeys = tree._leaf_skeys(leaf)
                if skeys[0] <= skey <= skeys[-1]:
                    tree._visit(leaf)
                    bis = tree._bisect_right if right else tree._bisect_left
                    return leaf, bis(skeys, skey)
        return None

    def seek(self, skey: Any, right: bool = False) -> tuple[_Leaf, int]:
        """Pin the position of the first entry >= ``skey`` (> if ``right``).

        Bounds are in search-key space (pre-encoded in byte mode).
        """
        self._token += 1
        position = self._resume(skey, right)
        if position is None:
            position = self._tree._find_leaf(skey, right=right)
        else:
            self._tree.metrics.cursor_resumes += 1
        leaf, index = position
        self._anchor = leaf
        self._pin(leaf, index)
        return position

    def get(self, skey: Any, default: Any = None) -> Any:
        """Point lookup through the cursor — :meth:`BPlusTree.get` that
        resumes from the pinned neighbourhood instead of descending."""
        if not self._tree._size:
            return default
        leaf, index = self.seek(skey)
        skeys = self._tree._leaf_skeys(leaf)
        if index < len(skeys) and skeys[index] == skey:
            return leaf.values[index]
        return default

    def past(self, skey: Any) -> bool:
        """True when the pinned entry already sits at/past ``skey``.

        Lets callers skip a whole range with zero tree operations when the
        cursor's position proves it empty — the cheap half of the zig-zag.
        """
        leaf = self._leaf
        if leaf is None or self._mods != self._tree._mods:
            return False
        skeys = self._tree._leaf_skeys(leaf)
        if self._index < len(skeys):
            return skeys[self._index] >= skey
        return False

    # -- scanning ------------------------------------------------------------

    def scan(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """:meth:`BPlusTree.scan_encoded`, resuming from the pinned leaf.

        The cursor is left pinned where the scan stops (bound hit,
        exhaustion, or abandonment), ready to resume the next range.
        """
        tree = self._tree
        if not tree._size:
            return
        if lo is None:
            leaf: _Leaf | None = tree._leftmost_leaf()
            index = 0
            self._token += 1
            self._anchor = leaf
            self._pin(leaf, index)
        else:
            leaf, index = self.seek(lo, right=not inclusive_lo)
        token = self._token
        metrics = tree.metrics
        try:
            while leaf is not None:
                skeys = tree._leaf_skeys(leaf)
                if index >= len(skeys):
                    leaf = leaf.next
                    index = 0
                    if leaf is not None:
                        tree._visit(leaf)
                    continue
                if hi is not None:
                    skey = skeys[index]
                    metrics.key_comparisons += 1
                    past = skey > hi if inclusive_hi else skey >= hi
                    if past:
                        return
                metrics.entries_scanned += 1
                yield leaf.keys[index], leaf.values[index]
                index += 1
        finally:
            # Write the stopping position back — unless a newer scan/seek
            # already moved the cursor (an abandoned generator finalizing
            # late must not clobber it).
            if token == self._token and leaf is not None:
                self._pin(leaf, index)

    def scan_reverse(
        self,
        lo: Any = None,
        hi: Any = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """:meth:`BPlusTree.scan_reverse_encoded` with cursor resume."""
        tree = self._tree
        if not tree._size:
            return
        if hi is None:
            leaf: _Leaf | None = tree._rightmost_leaf()
            index = len(leaf.keys) - 1
            self._token += 1
            self._anchor = leaf
            self._pin(leaf, index)
        else:
            leaf, index = self.seek(hi, right=inclusive_hi)
            index -= 1
        token = self._token
        metrics = tree.metrics
        try:
            while leaf is not None:
                if index < 0:
                    leaf = leaf.prev
                    if leaf is None:
                        return
                    tree._visit(leaf)
                    index = len(leaf.keys) - 1
                    continue
                if lo is not None:
                    skey = tree._leaf_skeys(leaf)[index]
                    metrics.key_comparisons += 1
                    past = skey < lo if inclusive_lo else skey <= lo
                    if past:
                        return
                metrics.entries_scanned += 1
                yield leaf.keys[index], leaf.values[index]
                index -= 1
        finally:
            if token == self._token and leaf is not None:
                self._pin(leaf, max(index, 0))


def _node_count(node: _Leaf | _Internal) -> int:
    return node.count
