"""All 13 XPath axes as key-range computations over the MASS indexes.

This module is the heart of MASS's "multi-axis" claim: every axis reduces
to either pure FLEX-key arithmetic (parent, ancestor, self) or one
contiguous scan of the name index / node index (everything else), in the
direction the axis requires.  No structural joins, no per-step node-set
materialisation.

The generic entry point is :func:`axis_iter`.  It yields ``(key, record)``
pairs where ``record`` is ``None`` when the hit came from the name index —
the caller decides whether materialising the record is necessary, which is
how VAMANA avoids fetching data for nodes that only flow through a plan.

Counting twins (:func:`axis_count_upper`) provide the index-only COUNT
numbers the cost model consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.mass.flexkey import FlexKey
from repro.mass.indexes import index_name_for_test
from repro.mass.records import NodeKind, NodeRecord
from repro.model import Axis, NodeTest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mass.store import MassStore

AxisHit = tuple[FlexKey, NodeRecord | None]

#: Node kinds that only the attribute / namespace axes may deliver.
_SPECIAL_KINDS = frozenset({NodeKind.ATTRIBUTE, NodeKind.NAMESPACE})

#: How many scanned entries a coalesced scan may advance between guard
#: checkpoints.  Small enough that a page budget can only be overshot by a
#: couple of leaves; large enough to amortize the checkpoint call.
_CHECKPOINT_EVERY = 64


class ScanCursors:
    """One lazily-created skip-ahead cursor per index, shared by an operator.

    A :class:`~repro.algebra.execution.StepOperator` issues long runs of
    range scans whose start points advance in document order, so every scan
    it makes through these cursors can usually resume from the previous
    scan's pinned leaf (see :class:`~repro.mass.btree.BTreeCursor`).
    """

    __slots__ = ("_store", "_name", "_node")

    def __init__(self, store: "MassStore"):
        self._store = store
        self._name = None
        self._node = None

    def name_cursor(self):
        if self._name is None:
            self._name = self._store.name_index.cursor()
        return self._name

    def node_cursor(self):
        if self._node is None:
            self._node = self._store.node_index.cursor()
        return self._node

    def fetch(self, key: FlexKey):
        """:meth:`MassStore.fetch` through the node cursor.

        Context nodes arrive in document order, so the record is almost
        always in the pinned leaf's neighbourhood — the lookup resumes
        instead of costing a root-to-leaf descent per context.
        """
        self._store.metrics.record_fetches += 1
        return self._store.node_index.get_cursor(self.node_cursor(), key)


def axis_iter(
    store: "MassStore",
    context: FlexKey,
    axis: Axis,
    test: NodeTest,
    cursors: ScanCursors | None = None,
) -> Iterator[AxisHit]:
    """Iterate the nodes reached from ``context`` along ``axis``.

    Hits arrive in axis order (document order for forward axes, reverse
    document order for reverse axes) and satisfy ``test``.  With
    ``cursors``, range scans position through the shared skip-ahead
    cursors instead of descending from the root each time.
    """
    handler = _HANDLERS[axis]
    return handler(store, context, axis, test, cursors)


def _record_matches(
    record: NodeRecord, axis: Axis, test: NodeTest, selfish: bool = False
) -> bool:
    """Axis membership + node test.

    Attribute/namespace nodes are reachable only via their dedicated axes
    — except as the *context node itself* on the self-including axes
    (``selfish=True``): ``self::node()`` of an attribute is the attribute.
    """
    if record.kind in _SPECIAL_KINDS and not selfish:
        if axis not in (Axis.ATTRIBUTE, Axis.NAMESPACE):
            return False
    if axis is Axis.ATTRIBUTE and record.kind is not NodeKind.ATTRIBUTE:
        return False
    if axis is Axis.NAMESPACE and record.kind is not NodeKind.NAMESPACE:
        return False
    return test.matches(record.kind, record.name, axis.principal_kind)


def _key_bound(store: "MassStore", key: FlexKey):
    """``key`` as an index range bound: its byte image in byte-key mode."""
    return key.sort_bytes if store.byte_keys else key


def _subtree_top(store: "MassStore", key: FlexKey):
    """The exclusive upper bound of ``key``'s subtree as a range bound."""
    if store.byte_keys:
        return key.subtree_upper_bound_bytes()
    return key.subtree_upper_bound()


def _subtree_range(store: "MassStore", context: FlexKey):
    """Range (exclusive of context itself) covering context's subtree.

    In byte-key mode this is the flat byte-prefix range derived straight
    from the context's encoding — no sentinel key is materialised.
    """
    if context.is_document():
        return _key_bound(store, context), None  # everything after the document key
    return _key_bound(store, context), _subtree_top(store, context)


# -- key-arithmetic axes -------------------------------------------------------


def _iter_self(store, context, axis, test, cursors=None):
    record = store.fetch(context)
    if record is not None and _record_matches(record, axis, test, selfish=True):
        yield context, record


def _iter_parent(store, context, axis, test, cursors=None):
    parent = context.parent()
    if parent is None:
        return
    record = store.fetch(parent)
    if record is not None and _record_matches(record, axis, test):
        yield parent, record


def _iter_ancestor(store, context, axis, test, cursors=None):
    for key in context.ancestors():
        record = store.fetch(key)
        if record is not None and _record_matches(record, axis, test):
            yield key, record


def _iter_ancestor_or_self(store, context, axis, test, cursors=None):
    yield from _iter_self(store, context, axis, test)
    yield from _iter_ancestor(store, context, axis, test)


# -- range-scan axes -----------------------------------------------------------


def _scan(
    store,
    axis: Axis,
    test: NodeTest,
    lo,
    hi,
    inclusive_lo: bool,
    reverse: bool = False,
    depth: int | None = None,
    skip_ancestors_of: FlexKey | None = None,
    cursors: ScanCursors | None = None,
) -> Iterator[AxisHit]:
    """One contiguous index scan with the per-axis filters applied.

    ``lo``/``hi`` are range bounds in the store's search space — byte
    prefixes in byte-key mode, FLEX keys otherwise (see :func:`_key_bound`).
    Uses the name index when the node test pins an index name (no record
    fetches at all — depth filtering is key arithmetic); otherwise scans
    the clustered node index and filters records.  With ``cursors``, the
    scan positions through the shared cursor (leaf resume) instead of a
    fresh root descent.
    """
    index_name = index_name_for_test(test, axis.principal_kind)
    if index_name is not None:
        if cursors is not None:
            hits = store.name_index.scan_cursor(
                cursors.name_cursor(), index_name, lo, hi, inclusive_lo, reverse
            )
        else:
            hits = store.name_index.scan(
                index_name, lo=lo, hi=hi, inclusive_lo=inclusive_lo, reverse=reverse
            )
        for key, kind in hits:
            if kind in _SPECIAL_KINDS and axis not in (Axis.ATTRIBUTE, Axis.NAMESPACE):
                continue
            if axis is Axis.ATTRIBUTE and kind is not NodeKind.ATTRIBUTE:
                continue
            if axis is Axis.NAMESPACE and kind is not NodeKind.NAMESPACE:
                continue
            if depth is not None and key.depth != depth:
                continue
            if skip_ancestors_of is not None and key.is_ancestor_of(skip_ancestors_of):
                continue
            yield key, None
        return
    if cursors is not None:
        records = store.node_index.scan_cursor(
            cursors.node_cursor(), lo, hi, inclusive_lo=inclusive_lo, reverse=reverse
        )
    else:
        records = store.node_index.scan(
            lo, hi, inclusive_lo=inclusive_lo, reverse=reverse
        )
    for record in records:
        if depth is not None and record.key.depth != depth:
            continue
        if skip_ancestors_of is not None and record.key.is_ancestor_of(skip_ancestors_of):
            continue
        if _record_matches(record, axis, test):
            yield record.key, record


def _iter_child(store, context, axis, test, cursors=None):
    lo, hi = _subtree_range(store, context)
    yield from _scan(
        store, axis, test, lo, hi, inclusive_lo=False, depth=context.depth + 1,
        cursors=cursors,
    )


def _iter_attribute(store, context, axis, test, cursors=None):
    lo, hi = _subtree_range(store, context)
    yield from _scan(
        store, axis, test, lo, hi, inclusive_lo=False, depth=context.depth + 1,
        cursors=cursors,
    )


def _iter_namespace(store, context, axis, test, cursors=None):
    lo, hi = _subtree_range(store, context)
    yield from _scan(
        store, axis, test, lo, hi, inclusive_lo=False, depth=context.depth + 1,
        cursors=cursors,
    )


def _iter_descendant(store, context, axis, test, cursors=None):
    lo, hi = _subtree_range(store, context)
    yield from _scan(store, axis, test, lo, hi, inclusive_lo=False, cursors=cursors)


def _iter_descendant_or_self(store, context, axis, test, cursors=None):
    yield from _iter_self(store, context, axis, test)
    yield from _iter_descendant(store, context, axis, test, cursors)


def _iter_following(store, context, axis, test, cursors=None):
    if context.is_document():
        return
    bound = _subtree_top(store, context)
    yield from _scan(store, axis, test, bound, None, inclusive_lo=True, cursors=cursors)


def _iter_preceding(store, context, axis, test, cursors=None):
    if context.is_document():
        return
    yield from _scan(
        store,
        axis,
        test,
        None,
        _key_bound(store, context),
        inclusive_lo=True,
        reverse=True,
        skip_ancestors_of=context,
        cursors=cursors,
    )


def _context_has_siblings(store, context: FlexKey, cursors=None) -> bool:
    """Attribute and namespace nodes have no siblings (XPath 1.0 §2.2)."""
    record = cursors.fetch(context) if cursors else store.fetch(context)
    return record is None or record.kind not in _SPECIAL_KINDS


def _iter_following_sibling(store, context, axis, test, cursors=None):
    parent = context.parent()
    if parent is None or not _context_has_siblings(store, context, cursors):
        return
    lo = _subtree_top(store, context)
    hi = None if parent.is_document() else _subtree_top(store, parent)
    yield from _scan(
        store, axis, test, lo, hi, inclusive_lo=True, depth=context.depth,
        cursors=cursors,
    )


def _iter_preceding_sibling(store, context, axis, test, cursors=None):
    parent = context.parent()
    if parent is None or not _context_has_siblings(store, context, cursors):
        return
    yield from _scan(
        store,
        axis,
        test,
        _key_bound(store, parent),
        _key_bound(store, context),
        inclusive_lo=False,
        reverse=True,
        depth=context.depth,
        cursors=cursors,
    )


_HANDLERS = {
    Axis.SELF: _iter_self,
    Axis.PARENT: _iter_parent,
    Axis.ANCESTOR: _iter_ancestor,
    Axis.ANCESTOR_OR_SELF: _iter_ancestor_or_self,
    Axis.CHILD: _iter_child,
    Axis.ATTRIBUTE: _iter_attribute,
    Axis.NAMESPACE: _iter_namespace,
    Axis.DESCENDANT: _iter_descendant,
    Axis.DESCENDANT_OR_SELF: _iter_descendant_or_self,
    Axis.FOLLOWING: _iter_following,
    Axis.PRECEDING: _iter_preceding,
    Axis.FOLLOWING_SIBLING: _iter_following_sibling,
    Axis.PRECEDING_SIBLING: _iter_preceding_sibling,
}


# -- batched scanning (block-at-a-time pipeline) -------------------------------

#: A scan span in byte-key space: ``(lo, hi, inclusive_lo)`` with ``hi=None``
#: for an open range.  Spans produced by :func:`coalesced_spans` are disjoint
#: and sorted.
ScanSpan = tuple[bytes, "bytes | None", bool]

#: Sentinel "covered" value: an earlier span was open-ended, so every later
#: context is inside already-scanned territory.
COVERED_ALL = object()


def coalesced_spans(
    store: "MassStore",
    axis: Axis,
    contexts: list[FlexKey],
    covered: "bytes | object | None" = None,
) -> tuple[list[ScanSpan], "bytes | object | None"]:
    """Coalesce a document-ordered context batch into disjoint scan spans.

    FLEX prefix ranges are nested or disjoint, never partially overlapping,
    so a context whose subtree range ends at or before the previous kept
    span's end (or before ``covered``, the high-water mark of earlier
    batches) contributes nothing new — the covering span's scan already
    emits its self hit and its whole subtree — and is dropped outright.
    This is only sound when the consumer deduplicates (coalescing collapses
    the duplicate hits tuple-at-a-time evaluation would emit), which the
    batch gate in the execution layer guarantees.

    ``axis`` must be DESCENDANT, DESCENDANT_OR_SELF or FOLLOWING.  For
    FOLLOWING the whole batch collapses to one open span starting at the
    lowest subtree top.  Returns ``(spans, covered)`` with the advanced
    high-water mark for the next batch.
    """
    spans: list[ScanSpan] = []
    if axis is Axis.FOLLOWING:
        if covered is COVERED_ALL:
            return spans, covered
        tops = [
            context.subtree_upper_bound_bytes()
            for context in contexts
            if not context.is_document()
        ]
        if tops:
            lo = min(tops)
            if not (isinstance(covered, bytes) and lo < covered):
                spans.append((lo, None, True))
            else:
                spans.append((covered, None, True))
            covered = COVERED_ALL
        return spans, covered
    inclusive = axis is Axis.DESCENDANT_OR_SELF
    for context in contexts:
        if covered is COVERED_ALL:
            break
        if context.is_document():
            # The document's subtree is everything after its key; the
            # document node itself has no name entry, so the self hit of
            # descendant-or-self cannot match an index-resolvable test.
            lo, hi, incl = context.sort_bytes, None, False
        else:
            lo, hi, incl = (
                context.sort_bytes,
                context.subtree_upper_bound_bytes(),
                inclusive,
            )
        if isinstance(covered, bytes) and hi is not None and hi <= covered:
            continue  # nested inside an already-kept span
        spans.append((lo, hi, incl))
        covered = COVERED_ALL if hi is None else hi
    return spans, covered


def scan_coalesced(
    store: "MassStore",
    axis: Axis,
    test: NodeTest,
    spans: list[ScanSpan],
    cursors: ScanCursors,
    guard=None,
) -> Iterator[FlexKey]:
    """Scan disjoint document-ordered spans, yielding matching keys.

    The guard is checkpointed every :data:`_CHECKPOINT_EVERY` scanned
    entries — the batched pipeline's replacement for the per-tuple
    checkpoints of ``next_tuple``.  When the node test pins an index name,
    the zig-zag skip applies: a span whose upper bound lies at or before
    the cursor's pinned position (which, spans being sorted and disjoint,
    is the first entry not yet returned) is proven empty and skipped with
    zero tree operations.
    """
    index_name = index_name_for_test(test, axis.principal_kind)
    since_checkpoint = 0
    if index_name is not None:
        cursor = cursors.name_cursor()
        for lo, hi, inclusive_lo in spans:
            if hi is not None:
                _low, high = store.name_index.search_bounds(index_name, lo, hi)
                if cursor.past(high):
                    continue
            for key, kind in store.name_index.scan_cursor(
                cursor, index_name, lo, hi, inclusive_lo
            ):
                since_checkpoint += 1
                if guard is not None and since_checkpoint >= _CHECKPOINT_EVERY:
                    guard.checkpoint()
                    since_checkpoint = 0
                if kind in _SPECIAL_KINDS:
                    continue
                yield key
        return
    cursor = cursors.node_cursor()
    for lo, hi, inclusive_lo in spans:
        for record in store.node_index.scan_cursor(
            cursor, lo, hi, inclusive_lo=inclusive_lo
        ):
            since_checkpoint += 1
            if guard is not None and since_checkpoint >= _CHECKPOINT_EVERY:
                guard.checkpoint()
                since_checkpoint = 0
            if _record_matches(record, axis, test):
                yield record.key


# -- index-only counting -------------------------------------------------------


def axis_count_upper(
    store: "MassStore", context: FlexKey, axis: Axis, test: NodeTest
) -> int | None:
    """Index-only upper bound on the hits of one axis step, or None.

    For name-test steps this is the exact count of matching index entries
    in the relevant key range (exact for child-free ranges like descendant,
    an upper bound where a depth filter applies).  Returns None when only a
    data scan could answer, in which case the cost model falls back to the
    whole-store COUNT.
    """
    index_name = index_name_for_test(test, axis.principal_kind)
    if index_name is None:
        return None
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.CHILD, Axis.ATTRIBUTE):
        lo, hi = _subtree_range(store, context)
        count = store.name_index.count_between(index_name, lo, hi, inclusive_lo=False)
        if axis is Axis.DESCENDANT_OR_SELF:
            record = store.fetch(context)
            if record is not None and _record_matches(record, axis, test):
                count += 1
        return count
    if axis is Axis.FOLLOWING:
        if context.is_document():
            return 0
        return store.name_index.count_between(
            index_name, _subtree_top(store, context), None
        )
    if axis is Axis.PRECEDING:
        return store.name_index.count_between(
            index_name, None, _key_bound(store, context)
        )
    if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
        parent = context.parent()
        if parent is None:
            return 0
        if axis is Axis.FOLLOWING_SIBLING:
            lo = _subtree_top(store, context)
            hi = None if parent.is_document() else _subtree_top(store, parent)
            return store.name_index.count_between(index_name, lo, hi)
        # preceding-sibling: the parent's own entry must not count.
        return store.name_index.count_between(
            index_name, _key_bound(store, parent), _key_bound(store, context),
            inclusive_lo=False,
        )
    if axis in (Axis.SELF, Axis.PARENT):
        return 1
    if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        return context.depth
    return None


def axis_count_exact(
    store: "MassStore", context: FlexKey, axis: Axis, test: NodeTest
) -> int | None:
    """Exact hit count of one axis step via O(log n) range counts, or None.

    This is the subset of :func:`axis_count_upper` that is provably exact:
    axes whose result is one contiguous name run with no depth filter
    (descendant, descendant-or-self, following) under an index-resolvable
    node test.  ``NodeSetValue.count()`` uses it to answer ``count(...)``
    without materializing a single key — the paper's O(log n) counting
    contract.  Child/attribute need a depth filter (upper bound only) and
    preceding's range includes ancestors, so those return None.
    """
    index_name = index_name_for_test(test, axis.principal_kind)
    if index_name is None:
        return None
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        lo, hi = _subtree_range(store, context)
        count = store.name_index.count_between(index_name, lo, hi, inclusive_lo=False)
        if axis is Axis.DESCENDANT_OR_SELF:
            record = store.fetch(context)
            if record is not None and _record_matches(record, axis, test, selfish=True):
                count += 1
        return count
    if axis is Axis.FOLLOWING:
        if context.is_document():
            return 0
        return store.name_index.count_between(
            index_name, _subtree_top(store, context), None
        )
    return None
