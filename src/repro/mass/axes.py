"""All 13 XPath axes as key-range computations over the MASS indexes.

This module is the heart of MASS's "multi-axis" claim: every axis reduces
to either pure FLEX-key arithmetic (parent, ancestor, self) or one
contiguous scan of the name index / node index (everything else), in the
direction the axis requires.  No structural joins, no per-step node-set
materialisation.

The generic entry point is :func:`axis_iter`.  It yields ``(key, record)``
pairs where ``record`` is ``None`` when the hit came from the name index —
the caller decides whether materialising the record is necessary, which is
how VAMANA avoids fetching data for nodes that only flow through a plan.

Counting twins (:func:`axis_count_upper`) provide the index-only COUNT
numbers the cost model consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.mass.flexkey import FlexKey
from repro.mass.indexes import index_name_for_test
from repro.mass.records import NodeKind, NodeRecord
from repro.model import Axis, NodeTest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mass.store import MassStore

AxisHit = tuple[FlexKey, NodeRecord | None]

#: Node kinds that only the attribute / namespace axes may deliver.
_SPECIAL_KINDS = frozenset({NodeKind.ATTRIBUTE, NodeKind.NAMESPACE})


def axis_iter(
    store: "MassStore", context: FlexKey, axis: Axis, test: NodeTest
) -> Iterator[AxisHit]:
    """Iterate the nodes reached from ``context`` along ``axis``.

    Hits arrive in axis order (document order for forward axes, reverse
    document order for reverse axes) and satisfy ``test``.
    """
    handler = _HANDLERS[axis]
    return handler(store, context, axis, test)


def _record_matches(
    record: NodeRecord, axis: Axis, test: NodeTest, selfish: bool = False
) -> bool:
    """Axis membership + node test.

    Attribute/namespace nodes are reachable only via their dedicated axes
    — except as the *context node itself* on the self-including axes
    (``selfish=True``): ``self::node()`` of an attribute is the attribute.
    """
    if record.kind in _SPECIAL_KINDS and not selfish:
        if axis not in (Axis.ATTRIBUTE, Axis.NAMESPACE):
            return False
    if axis is Axis.ATTRIBUTE and record.kind is not NodeKind.ATTRIBUTE:
        return False
    if axis is Axis.NAMESPACE and record.kind is not NodeKind.NAMESPACE:
        return False
    return test.matches(record.kind, record.name, axis.principal_kind)


def _key_bound(store: "MassStore", key: FlexKey):
    """``key`` as an index range bound: its byte image in byte-key mode."""
    return key.sort_bytes if store.byte_keys else key


def _subtree_top(store: "MassStore", key: FlexKey):
    """The exclusive upper bound of ``key``'s subtree as a range bound."""
    if store.byte_keys:
        return key.subtree_upper_bound_bytes()
    return key.subtree_upper_bound()


def _subtree_range(store: "MassStore", context: FlexKey):
    """Range (exclusive of context itself) covering context's subtree.

    In byte-key mode this is the flat byte-prefix range derived straight
    from the context's encoding — no sentinel key is materialised.
    """
    if context.is_document():
        return _key_bound(store, context), None  # everything after the document key
    return _key_bound(store, context), _subtree_top(store, context)


# -- key-arithmetic axes -------------------------------------------------------


def _iter_self(store, context, axis, test):
    record = store.fetch(context)
    if record is not None and _record_matches(record, axis, test, selfish=True):
        yield context, record


def _iter_parent(store, context, axis, test):
    parent = context.parent()
    if parent is None:
        return
    record = store.fetch(parent)
    if record is not None and _record_matches(record, axis, test):
        yield parent, record


def _iter_ancestor(store, context, axis, test):
    for key in context.ancestors():
        record = store.fetch(key)
        if record is not None and _record_matches(record, axis, test):
            yield key, record


def _iter_ancestor_or_self(store, context, axis, test):
    yield from _iter_self(store, context, axis, test)
    yield from _iter_ancestor(store, context, axis, test)


# -- range-scan axes -----------------------------------------------------------


def _scan(
    store,
    axis: Axis,
    test: NodeTest,
    lo,
    hi,
    inclusive_lo: bool,
    reverse: bool = False,
    depth: int | None = None,
    skip_ancestors_of: FlexKey | None = None,
) -> Iterator[AxisHit]:
    """One contiguous index scan with the per-axis filters applied.

    ``lo``/``hi`` are range bounds in the store's search space — byte
    prefixes in byte-key mode, FLEX keys otherwise (see :func:`_key_bound`).
    Uses the name index when the node test pins an index name (no record
    fetches at all — depth filtering is key arithmetic); otherwise scans
    the clustered node index and filters records.
    """
    index_name = index_name_for_test(test, axis.principal_kind)
    if index_name is not None:
        for key, kind in store.name_index.scan(
            index_name, lo=lo, hi=hi, inclusive_lo=inclusive_lo, reverse=reverse
        ):
            if kind in _SPECIAL_KINDS and axis not in (Axis.ATTRIBUTE, Axis.NAMESPACE):
                continue
            if axis is Axis.ATTRIBUTE and kind is not NodeKind.ATTRIBUTE:
                continue
            if axis is Axis.NAMESPACE and kind is not NodeKind.NAMESPACE:
                continue
            if depth is not None and key.depth != depth:
                continue
            if skip_ancestors_of is not None and key.is_ancestor_of(skip_ancestors_of):
                continue
            yield key, None
        return
    for record in store.node_index.scan(
        lo, hi, inclusive_lo=inclusive_lo, reverse=reverse
    ):
        if depth is not None and record.key.depth != depth:
            continue
        if skip_ancestors_of is not None and record.key.is_ancestor_of(skip_ancestors_of):
            continue
        if _record_matches(record, axis, test):
            yield record.key, record


def _iter_child(store, context, axis, test):
    lo, hi = _subtree_range(store, context)
    yield from _scan(
        store, axis, test, lo, hi, inclusive_lo=False, depth=context.depth + 1
    )


def _iter_attribute(store, context, axis, test):
    lo, hi = _subtree_range(store, context)
    yield from _scan(
        store, axis, test, lo, hi, inclusive_lo=False, depth=context.depth + 1
    )


def _iter_namespace(store, context, axis, test):
    lo, hi = _subtree_range(store, context)
    yield from _scan(
        store, axis, test, lo, hi, inclusive_lo=False, depth=context.depth + 1
    )


def _iter_descendant(store, context, axis, test):
    lo, hi = _subtree_range(store, context)
    yield from _scan(store, axis, test, lo, hi, inclusive_lo=False)


def _iter_descendant_or_self(store, context, axis, test):
    yield from _iter_self(store, context, axis, test)
    yield from _iter_descendant(store, context, axis, test)


def _iter_following(store, context, axis, test):
    if context.is_document():
        return
    bound = _subtree_top(store, context)
    yield from _scan(store, axis, test, bound, None, inclusive_lo=True)


def _iter_preceding(store, context, axis, test):
    if context.is_document():
        return
    yield from _scan(
        store,
        axis,
        test,
        None,
        _key_bound(store, context),
        inclusive_lo=True,
        reverse=True,
        skip_ancestors_of=context,
    )


def _context_has_siblings(store, context: FlexKey) -> bool:
    """Attribute and namespace nodes have no siblings (XPath 1.0 §2.2)."""
    record = store.fetch(context)
    return record is None or record.kind not in _SPECIAL_KINDS


def _iter_following_sibling(store, context, axis, test):
    parent = context.parent()
    if parent is None or not _context_has_siblings(store, context):
        return
    lo = _subtree_top(store, context)
    hi = None if parent.is_document() else _subtree_top(store, parent)
    yield from _scan(
        store, axis, test, lo, hi, inclusive_lo=True, depth=context.depth
    )


def _iter_preceding_sibling(store, context, axis, test):
    parent = context.parent()
    if parent is None or not _context_has_siblings(store, context):
        return
    yield from _scan(
        store,
        axis,
        test,
        _key_bound(store, parent),
        _key_bound(store, context),
        inclusive_lo=False,
        reverse=True,
        depth=context.depth,
    )


_HANDLERS = {
    Axis.SELF: _iter_self,
    Axis.PARENT: _iter_parent,
    Axis.ANCESTOR: _iter_ancestor,
    Axis.ANCESTOR_OR_SELF: _iter_ancestor_or_self,
    Axis.CHILD: _iter_child,
    Axis.ATTRIBUTE: _iter_attribute,
    Axis.NAMESPACE: _iter_namespace,
    Axis.DESCENDANT: _iter_descendant,
    Axis.DESCENDANT_OR_SELF: _iter_descendant_or_self,
    Axis.FOLLOWING: _iter_following,
    Axis.PRECEDING: _iter_preceding,
    Axis.FOLLOWING_SIBLING: _iter_following_sibling,
    Axis.PRECEDING_SIBLING: _iter_preceding_sibling,
}


# -- index-only counting -------------------------------------------------------


def axis_count_upper(
    store: "MassStore", context: FlexKey, axis: Axis, test: NodeTest
) -> int | None:
    """Index-only upper bound on the hits of one axis step, or None.

    For name-test steps this is the exact count of matching index entries
    in the relevant key range (exact for child-free ranges like descendant,
    an upper bound where a depth filter applies).  Returns None when only a
    data scan could answer, in which case the cost model falls back to the
    whole-store COUNT.
    """
    index_name = index_name_for_test(test, axis.principal_kind)
    if index_name is None:
        return None
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.CHILD, Axis.ATTRIBUTE):
        lo, hi = _subtree_range(store, context)
        count = store.name_index.count_between(index_name, lo, hi, inclusive_lo=False)
        if axis is Axis.DESCENDANT_OR_SELF:
            record = store.fetch(context)
            if record is not None and _record_matches(record, axis, test):
                count += 1
        return count
    if axis is Axis.FOLLOWING:
        if context.is_document():
            return 0
        return store.name_index.count_between(
            index_name, _subtree_top(store, context), None
        )
    if axis is Axis.PRECEDING:
        return store.name_index.count_between(
            index_name, None, _key_bound(store, context)
        )
    if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
        parent = context.parent()
        if parent is None:
            return 0
        if axis is Axis.FOLLOWING_SIBLING:
            lo = _subtree_top(store, context)
            hi = None if parent.is_document() else _subtree_top(store, parent)
            return store.name_index.count_between(index_name, lo, hi)
        # preceding-sibling: the parent's own entry must not count.
        return store.name_index.count_between(
            index_name, _key_bound(store, parent), _key_bound(store, context),
            inclusive_lo=False,
        )
    if axis in (Axis.SELF, Axis.PARENT):
        return 1
    if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        return context.depth
    return None
