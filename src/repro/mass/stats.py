"""Store statistics — the numbers the VAMANA cost model reads.

Unlike histogram approaches (Timber's position histograms, StatiX), MASS
derives statistics *from the indexes themselves* at query time: counts are
O(log n) range counts on the counted B+-trees, so they are exact and stay
exact under inserts and deletes with zero maintenance — the property the
paper leans on for "cost accuracy is not affected by updates".

:class:`StoreStatistics` is a snapshot object for reporting; the live
queries (`count`, `text_count`, scoped variants) go through
:class:`~repro.mass.store.MassStore` directly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.mass.records import NodeKind


@dataclass(frozen=True)
class StoreStatistics:
    """A point-in-time summary of one document store."""

    total_nodes: int
    nodes_by_kind: dict[NodeKind, int]
    distinct_names: int
    distinct_values: int
    pages: int
    page_size: int
    node_index_height: int
    name_index_height: int
    value_index_height: int

    @property
    def elements(self) -> int:
        return self.nodes_by_kind.get(NodeKind.ELEMENT, 0)

    @property
    def attributes(self) -> int:
        return self.nodes_by_kind.get(NodeKind.ATTRIBUTE, 0)

    @property
    def text_nodes(self) -> int:
        return self.nodes_by_kind.get(NodeKind.TEXT, 0)

    @property
    def tuples_per_page(self) -> float:
        """Average node records per page — one of the MASS-provided figures."""
        return self.total_nodes / self.pages if self.pages else 0.0

    def describe(self) -> str:
        lines = [
            f"nodes            {self.total_nodes}",
            f"  elements       {self.elements}",
            f"  attributes     {self.attributes}",
            f"  text           {self.text_nodes}",
            f"distinct names   {self.distinct_names}",
            f"distinct values  {self.distinct_values}",
            f"pages            {self.pages} x {self.page_size}B "
            f"({self.tuples_per_page:.1f} tuples/page)",
            f"index heights    node={self.node_index_height} "
            f"name={self.name_index_height} value={self.value_index_height}",
        ]
        return "\n".join(lines)


class _MetricsCounters:
    """One thread's store-work tallies (see :class:`StoreMetrics`)."""

    __slots__ = (
        "record_fetches", "axis_requests", "count_calls", "value_lookups",
        "extra",
    )

    def __init__(self) -> None:
        self.record_fetches = 0
        self.axis_requests = 0
        self.count_calls = 0
        self.value_lookups = 0
        self.extra: dict[str, int] = {}


class StoreMetrics:
    """Cumulative per-store work counters, resettable per query.

    These are the machine-independent cost measures the benchmark harness
    reports next to wall time: a plan that fetches fewer records and
    touches fewer pages is cheaper on any hardware.

    Counters are kept **per thread** (the :class:`~repro.mass.pages.
    PageStats` scheme): ``store.metrics.record_fetches += 1`` from a
    worker thread touches only that thread's tally, so concurrent
    increments never lose updates — the plain-``int`` version dropped
    counts under the query server's worker pool, where two threads'
    read-modify-write cycles interleave.  The attribute surface reads and
    writes the *calling thread's* tally (per-query deltas stay exact on a
    worker); :meth:`totals` is the merged-on-read cross-thread aggregate
    and :meth:`reset` zeros every thread's tally.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._all: list[_MetricsCounters] = []
        self._local = threading.local()

    def local_counters(self) -> _MetricsCounters:
        """The calling thread's tally (created on first use)."""
        counters = getattr(self._local, "counters", None)
        if counters is None:
            counters = _MetricsCounters()
            self._local.counters = counters
            with self._lock:
                self._all.append(counters)
        return counters

    @property
    def record_fetches(self) -> int:
        return self.local_counters().record_fetches

    @record_fetches.setter
    def record_fetches(self, value: int) -> None:
        self.local_counters().record_fetches = value

    @property
    def axis_requests(self) -> int:
        return self.local_counters().axis_requests

    @axis_requests.setter
    def axis_requests(self, value: int) -> None:
        self.local_counters().axis_requests = value

    @property
    def count_calls(self) -> int:
        return self.local_counters().count_calls

    @count_calls.setter
    def count_calls(self, value: int) -> None:
        self.local_counters().count_calls = value

    @property
    def value_lookups(self) -> int:
        return self.local_counters().value_lookups

    @value_lookups.setter
    def value_lookups(self, value: int) -> None:
        self.local_counters().value_lookups = value

    @property
    def extra(self) -> dict[str, int]:
        return self.local_counters().extra

    def reset(self) -> None:
        """Zero every thread's counters (dead threads' tallies included)."""
        with self._lock:
            tallies = list(self._all)
        for counters in tallies:
            counters.record_fetches = 0
            counters.axis_requests = 0
            counters.count_calls = 0
            counters.value_lookups = 0
            counters.extra.clear()

    def snapshot(self) -> dict[str, int]:
        """The calling thread's tally — what per-query deltas diff."""
        counters = self.local_counters()
        data = {
            "record_fetches": counters.record_fetches,
            "axis_requests": counters.axis_requests,
            "count_calls": counters.count_calls,
            "value_lookups": counters.value_lookups,
        }
        data.update(counters.extra)
        return data

    def totals(self) -> dict[str, int]:
        """Counters summed over every thread that ever touched the store."""
        with self._lock:
            tallies = list(self._all)
        data = {
            "record_fetches": sum(c.record_fetches for c in tallies),
            "axis_requests": sum(c.axis_requests for c in tallies),
            "count_calls": sum(c.count_calls for c in tallies),
            "value_lookups": sum(c.value_lookups for c in tallies),
        }
        for counters in tallies:
            for key, value in counters.extra.items():
                data[key] = data.get(key, 0) + value
        return data
