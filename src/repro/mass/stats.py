"""Store statistics — the numbers the VAMANA cost model reads.

Unlike histogram approaches (Timber's position histograms, StatiX), MASS
derives statistics *from the indexes themselves* at query time: counts are
O(log n) range counts on the counted B+-trees, so they are exact and stay
exact under inserts and deletes with zero maintenance — the property the
paper leans on for "cost accuracy is not affected by updates".

:class:`StoreStatistics` is a snapshot object for reporting; the live
queries (`count`, `text_count`, scoped variants) go through
:class:`~repro.mass.store.MassStore` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mass.records import NodeKind


@dataclass(frozen=True)
class StoreStatistics:
    """A point-in-time summary of one document store."""

    total_nodes: int
    nodes_by_kind: dict[NodeKind, int]
    distinct_names: int
    distinct_values: int
    pages: int
    page_size: int
    node_index_height: int
    name_index_height: int
    value_index_height: int

    @property
    def elements(self) -> int:
        return self.nodes_by_kind.get(NodeKind.ELEMENT, 0)

    @property
    def attributes(self) -> int:
        return self.nodes_by_kind.get(NodeKind.ATTRIBUTE, 0)

    @property
    def text_nodes(self) -> int:
        return self.nodes_by_kind.get(NodeKind.TEXT, 0)

    @property
    def tuples_per_page(self) -> float:
        """Average node records per page — one of the MASS-provided figures."""
        return self.total_nodes / self.pages if self.pages else 0.0

    def describe(self) -> str:
        lines = [
            f"nodes            {self.total_nodes}",
            f"  elements       {self.elements}",
            f"  attributes     {self.attributes}",
            f"  text           {self.text_nodes}",
            f"distinct names   {self.distinct_names}",
            f"distinct values  {self.distinct_values}",
            f"pages            {self.pages} x {self.page_size}B "
            f"({self.tuples_per_page:.1f} tuples/page)",
            f"index heights    node={self.node_index_height} "
            f"name={self.name_index_height} value={self.value_index_height}",
        ]
        return "\n".join(lines)


@dataclass
class StoreMetrics:
    """Cumulative per-store work counters, resettable per query.

    These are the machine-independent cost measures the benchmark harness
    reports next to wall time: a plan that fetches fewer records and
    touches fewer pages is cheaper on any hardware.
    """

    record_fetches: int = 0
    axis_requests: int = 0
    count_calls: int = 0
    value_lookups: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.record_fetches = 0
        self.axis_requests = 0
        self.count_calls = 0
        self.value_lookups = 0
        self.extra.clear()

    def snapshot(self) -> dict[str, int]:
        data = {
            "record_fetches": self.record_fetches,
            "axis_requests": self.axis_requests,
            "count_calls": self.count_calls,
            "value_lookups": self.value_lookups,
        }
        data.update(self.extra)
        return data
