"""On-disk persistence for MASS stores.

A real MASS instance lives on disk; this module gives the reproduction the
same workflow — index once, reopen instantly — with a compact custom
binary format (no pickle: the format is versioned, endian-stable and
readable by any implementation).

Layout (little-endian), format version 2:

.. code-block:: text

    header    magic "MASS" | u16 version | u32 record count | u16 name len
              | document name (utf-8)
    records   per node:
                u32  payload length
                payload:
                  u8   kind tag
                  u8   key depth, then per component: u8 part count,
                       u32 parts...
                  u16  name length  | utf-8 bytes
                  u32  value length | utf-8 bytes
                u32  adler32 of the payload
    footer    u32 adler32 of everything after the magic

Version 1 files (no per-record length/checksum framing) are still read.
The per-record framing is what makes partial recovery possible: after a
torn write or bit flip, :func:`open_store` with ``recover=True`` salvages
the longest prefix of intact records and reports what was dropped, and
:func:`fsck_store` diagnoses a file without building a store.

Writes are crash-safe: :func:`save_store` writes ``path + ".tmp"``,
flushes and fsyncs it, then atomically renames over ``path`` — a crash
mid-save never clobbers an existing store.

Indexes are rebuilt via bulk load on open — they are derived data, and
bulk loading is a single sorted pass (the file stores records in document
order, which is exactly bulk-load order).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.mass.flexkey import FlexKey
from repro.mass.records import NodeKind, NodeRecord
from repro.mass.store import MassStore

MAGIC = b"MASS"
VERSION = 2
#: Magic (4) + fixed header (8) + footer checksum (4): no valid store file
#: can be smaller, even with an empty document name and zero records.
MIN_FILE_BYTES = 16

_KIND_TAGS = {kind: index for index, kind in enumerate(NodeKind)}
_KINDS_BY_TAG = {index: kind for kind, index in _KIND_TAGS.items()}

#: Exceptions a garbled byte stream can raise while decoding; they are
#: translated into :class:`StorageError` with the failing record index.
_DECODE_ERRORS = (struct.error, IndexError, ValueError, UnicodeDecodeError)


# -- encoding -----------------------------------------------------------------


def _encode_record(record: NodeRecord) -> bytes:
    chunks = [struct.pack("<BB", _KIND_TAGS[record.kind], record.key.depth)]
    for component in record.key.components:
        chunks.append(struct.pack("<B", len(component)))
        chunks.append(struct.pack(f"<{len(component)}I", *component))
    record_name = record.name.encode("utf-8")
    record_value = record.value.encode("utf-8")
    chunks.append(struct.pack("<H", len(record_name)))
    chunks.append(record_name)
    chunks.append(struct.pack("<I", len(record_value)))
    chunks.append(record_value)
    return b"".join(chunks)


def save_store(store: MassStore, path: str, fault_injector=None) -> int:
    """Write the store to ``path`` atomically; returns bytes written.

    The bytes land in ``path + ".tmp"`` first and are fsynced before an
    atomic rename replaces ``path``, so a crash (or an injected fault at
    site ``"persistence.save"``) leaves any existing store untouched.
    I/O failures raise :class:`StorageError` chained on the ``OSError``.
    """
    records = list(store.node_index.scan(None, None))
    name_bytes = store.name.encode("utf-8")
    body: list[bytes] = [
        struct.pack("<HIH", VERSION, len(records), len(name_bytes)),
        name_bytes,
    ]
    for record in records:
        payload = _encode_record(record)
        body.append(struct.pack("<I", len(payload)))
        body.append(payload)
        body.append(struct.pack("<I", zlib.adler32(payload)))
    blob = b"".join(body)
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "wb") as out:
            out.write(MAGIC)
            out.write(blob)
            out.write(struct.pack("<I", zlib.adler32(blob)))
            out.flush()
            os.fsync(out.fileno())
            written = out.tell()
            if fault_injector is not None:
                fault_injector.maybe_fail("persistence.save")
        os.replace(tmp_path, path)
    except OSError as error:
        _remove_quietly(tmp_path)
        raise StorageError(f"{path}: save failed: {error}") from error
    except BaseException:
        _remove_quietly(tmp_path)
        raise
    return written


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass


# -- decoding -----------------------------------------------------------------


def _read_key(data: memoryview, offset: int) -> tuple[FlexKey, int]:
    depth = data[offset]
    offset += 1
    components = []
    for _ in range(depth):
        count = data[offset]
        offset += 1
        parts = struct.unpack_from(f"<{count}I", data, offset)
        offset += 4 * count
        components.append(tuple(parts))
    return FlexKey(tuple(components)), offset


def _decode_record_payload(data: memoryview, offset: int) -> tuple[NodeRecord, int]:
    """Decode one record at ``offset``; returns (record, next offset)."""
    kind = _KINDS_BY_TAG.get(data[offset])
    if kind is None:
        raise StorageError(f"invalid node kind tag {data[offset]}")
    offset += 1
    key, offset = _read_key(data, offset)
    (name_size,) = struct.unpack_from("<H", data, offset)
    offset += 2
    name = bytes(data[offset : offset + name_size]).decode("utf-8")
    offset += name_size
    (value_size,) = struct.unpack_from("<I", data, offset)
    offset += 4
    end = offset + value_size
    if end > len(data):
        raise StorageError(f"record value runs past end of file ({end} > {len(data)})")
    value = bytes(data[offset:end]).decode("utf-8")
    return NodeRecord(key, kind, name=name, value=value), end


@dataclass
class FsckReport:
    """What a store-file scan found (``repro fsck``, ``recover=True``)."""

    path: str
    version: int = 0
    document_name: str = ""
    declared_records: int = 0
    readable_records: int = 0
    checksum_ok: bool = False
    errors: list[str] = field(default_factory=list)

    @property
    def dropped_records(self) -> int:
        return max(0, self.declared_records - self.readable_records)

    @property
    def ok(self) -> bool:
        return self.checksum_ok and not self.errors and self.dropped_records == 0

    def describe(self) -> str:
        status = "clean" if self.ok else "CORRUPT"
        lines = [
            f"{self.path}: {status} "
            f"(format v{self.version}, document {self.document_name!r})",
            f"  records: {self.readable_records}/{self.declared_records} readable"
            + (f", {self.dropped_records} dropped" if self.dropped_records else ""),
            f"  file checksum: {'ok' if self.checksum_ok else 'MISMATCH'}",
        ]
        for error in self.errors:
            lines.append(f"  error: {error}")
        return "\n".join(lines)


def _scan_records(
    body: memoryview,
    offset: int,
    record_count: int,
    version: int,
    path: str,
    tolerant: bool,
    report: FsckReport,
) -> list[NodeRecord]:
    """Decode up to ``record_count`` records starting at ``offset``.

    Strict mode raises :class:`StorageError` naming the failing record;
    tolerant mode stops at the first bad record (noting it on the report)
    and returns the valid prefix — records must also stay in strictly
    ascending key order, so a corrupt-but-decodable key ends the prefix
    rather than poisoning the bulk load.
    """
    records: list[NodeRecord] = []
    previous_key: FlexKey | None = None
    for index in range(record_count):
        try:
            if version >= 2:
                (length,) = struct.unpack_from("<I", body, offset)
                payload_start = offset + 4
                payload_end = payload_start + length
                if payload_end + 4 > len(body):
                    raise StorageError("record frame runs past end of file")
                payload = bytes(body[payload_start:payload_end])
                (stored,) = struct.unpack_from("<I", body, payload_end)
                if zlib.adler32(payload) != stored:
                    raise StorageError("record checksum mismatch")
                record, consumed = _decode_record_payload(memoryview(payload), 0)
                if consumed != length:
                    raise StorageError(
                        f"record payload length mismatch ({consumed} != {length})"
                    )
                next_offset = payload_end + 4
            else:
                record, next_offset = _decode_record_payload(body, offset)
            if previous_key is not None and not (previous_key < record.key):
                raise StorageError("records out of document order")
        except (StorageError, *_DECODE_ERRORS) as error:
            message = f"record {index}: {error}"
            if tolerant:
                report.errors.append(message)
                break
            raise StorageError(f"{path}: {message}") from error
        records.append(record)
        previous_key = record.key
        offset = next_offset
    report.readable_records = len(records)
    return records


def _scan_file(raw: bytes, path: str, tolerant: bool) -> tuple[list[NodeRecord], FsckReport]:
    """Shared parse behind :func:`open_store` and :func:`fsck_store`."""
    report = FsckReport(path=path)
    if len(raw) < MIN_FILE_BYTES or raw[:4] != MAGIC:
        message = (
            f"{path}: not a MASS store file "
            f"(minimum {MIN_FILE_BYTES} bytes with 'MASS' magic)"
        )
        if tolerant:
            report.errors.append(message)
            return [], report
        raise StorageError(message)
    body = memoryview(raw)[4:-4]
    try:
        (stored_checksum,) = struct.unpack_from("<I", raw, len(raw) - 4)
        report.checksum_ok = zlib.adler32(bytes(body)) == stored_checksum
        if not report.checksum_ok and not tolerant:
            raise StorageError(f"{path}: checksum mismatch (corrupt file)")
        version, record_count, name_length = struct.unpack_from("<HIH", body, 0)
    except (StorageError, *_DECODE_ERRORS) as error:
        if isinstance(error, StorageError):
            raise
        raise StorageError(f"{path}: truncated header: {error}") from error
    report.version = version
    if version not in (1, VERSION):
        message = f"{path}: unsupported version {version}"
        if tolerant:
            report.errors.append(message)
            return [], report
        raise StorageError(message)
    report.declared_records = record_count
    offset = 8
    try:
        if offset + name_length > len(body):
            raise StorageError("document name runs past end of file")
        document_name = bytes(body[offset : offset + name_length]).decode("utf-8")
    except (StorageError, *_DECODE_ERRORS) as error:
        message = f"{path}: bad header: {error}"
        if tolerant:
            report.errors.append(message)
            return [], report
        raise StorageError(message) from error
    report.document_name = document_name
    offset += name_length
    records = _scan_records(
        body, offset, record_count, version, path, tolerant, report
    )
    return records, report


def open_store(
    path: str, recover: bool = False, fault_injector=None, **store_options
) -> MassStore:
    """Open a store file written by :func:`save_store` (v1 or v2).

    With ``recover=False`` (the default) any corruption — bad magic,
    checksum mismatch, undecodable record — raises :class:`StorageError`
    naming the failing record.  With ``recover=True`` the longest valid
    record prefix is salvaged instead and the resulting store carries the
    scan's :class:`FsckReport` as ``store.recovery_report`` (``None`` on a
    normal open), including what was dropped.
    """
    if fault_injector is not None:
        fault_injector.maybe_fail("persistence.open")
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as error:
        raise StorageError(f"{path}: cannot read store: {error}") from error
    records, report = _scan_file(raw, path, tolerant=recover)
    if recover and not report.document_name and report.errors:
        # Header damage beyond salvage: nothing to build a store from.
        raise StorageError(f"{path}: unrecoverable: {report.errors[0]}")
    store = MassStore(name=report.document_name, **store_options)
    store.bulk_load(records)
    store.recovery_report = report if recover else None
    return store


def fsck_store(path: str) -> FsckReport:
    """Diagnose a store file without building a store.

    Never raises on corruption — every problem lands in the report —
    only on an unreadable file (:class:`StorageError` chained on the
    ``OSError``).
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as error:
        raise StorageError(f"{path}: cannot read store: {error}") from error
    _records, report = _scan_file(raw, path, tolerant=True)
    return report
