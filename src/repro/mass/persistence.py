"""On-disk persistence for MASS stores.

A real MASS instance lives on disk; this module gives the reproduction the
same workflow — index once, reopen instantly — with a compact custom
binary format (no pickle: the format is versioned, endian-stable and
readable by any implementation).

Layout (little-endian):

.. code-block:: text

    header    magic "MASS" | u16 version | u32 record count | u16 name len
              | document name (utf-8)
    records   per node:
                u8   kind tag
                u8   key depth, then per component: u8 part count,
                     u32 parts...
                u16  name length  | utf-8 bytes
                u32  value length | utf-8 bytes
    footer    u32 adler32 of everything after the magic

Indexes are rebuilt via bulk load on open — they are derived data, and
bulk loading is a single sorted pass (the file stores records in document
order, which is exactly bulk-load order).
"""

from __future__ import annotations

import struct
import zlib
from repro.errors import StorageError
from repro.mass.flexkey import FlexKey
from repro.mass.records import NodeKind, NodeRecord
from repro.mass.store import MassStore

MAGIC = b"MASS"
VERSION = 1

_KIND_TAGS = {kind: index for index, kind in enumerate(NodeKind)}
_KINDS_BY_TAG = {index: kind for kind, index in _KIND_TAGS.items()}


def _read_key(data: memoryview, offset: int) -> tuple[FlexKey, int]:
    depth = data[offset]
    offset += 1
    components = []
    for _ in range(depth):
        count = data[offset]
        offset += 1
        parts = struct.unpack_from(f"<{count}I", data, offset)
        offset += 4 * count
        components.append(tuple(parts))
    return FlexKey(tuple(components)), offset


def save_store(store: MassStore, path: str) -> int:
    """Write the store to ``path``; returns bytes written."""
    records = list(store.node_index.scan(None, None))
    checksum = zlib.adler32(b"")
    with open(path, "wb") as out:
        out.write(MAGIC)
        body: list[bytes] = []
        name_bytes = store.name.encode("utf-8")
        body.append(struct.pack("<HIH", VERSION, len(records), len(name_bytes)))
        body.append(name_bytes)
        for record in records:
            chunks = [struct.pack("<B", _KIND_TAGS[record.kind])]
            chunks.append(struct.pack("<B", record.key.depth))
            for component in record.key.components:
                chunks.append(struct.pack("<B", len(component)))
                chunks.append(struct.pack(f"<{len(component)}I", *component))
            record_name = record.name.encode("utf-8")
            record_value = record.value.encode("utf-8")
            chunks.append(struct.pack("<H", len(record_name)))
            chunks.append(record_name)
            chunks.append(struct.pack("<I", len(record_value)))
            chunks.append(record_value)
            body.append(b"".join(chunks))
        blob = b"".join(body)
        checksum = zlib.adler32(blob)
        out.write(blob)
        out.write(struct.pack("<I", checksum))
        return out.tell()


def open_store(path: str, **store_options) -> MassStore:
    """Open a store file written by :func:`save_store`."""
    with open(path, "rb") as handle:
        raw = handle.read()
    if len(raw) < 14 or raw[:4] != MAGIC:
        raise StorageError(f"{path}: not a MASS store file")
    body = memoryview(raw)[4:-4]
    (stored_checksum,) = struct.unpack_from("<I", raw, len(raw) - 4)
    if zlib.adler32(bytes(body)) != stored_checksum:
        raise StorageError(f"{path}: checksum mismatch (corrupt file)")
    version, record_count, name_length = struct.unpack_from("<HIH", body, 0)
    if version != VERSION:
        raise StorageError(f"{path}: unsupported version {version}")
    offset = 8
    document_name = bytes(body[offset : offset + name_length]).decode("utf-8")
    offset += name_length
    records: list[NodeRecord] = []
    for _ in range(record_count):
        kind = _KINDS_BY_TAG.get(body[offset])
        if kind is None:
            raise StorageError(f"{path}: invalid node kind tag {body[offset]}")
        offset += 1
        key, offset = _read_key(body, offset)
        (name_size,) = struct.unpack_from("<H", body, offset)
        offset += 2
        name = bytes(body[offset : offset + name_size]).decode("utf-8")
        offset += name_size
        (value_size,) = struct.unpack_from("<I", body, offset)
        offset += 4
        value = bytes(body[offset : offset + value_size]).decode("utf-8")
        offset += value_size
        records.append(NodeRecord(key, kind, name=name, value=value))
    store = MassStore(name=document_name, **store_options)
    store.bulk_load(records)
    return store
