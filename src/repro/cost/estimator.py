"""Bottom-up cost estimation over a physical plan (Section VI-B).

For every operator the estimator gathers, straight from the MASS indexes:

* ``COUNT(op)`` — stored nodes satisfying the step's node test,
* ``TC(op)`` — occurrences of a literal's value (value index),
* ``IN(op)`` — the maximum tuples the operator will receive (cases 1-3),
* ``OUT(op)`` — the maximum tuples it can emit (cases 1-6 + Table I),
* ``δ(op) = IN/OUT`` — the selectivity ratio, later min-max scaled to
  [0, 1] across the plan.

The walk is bottom-up along context paths; predicate trees are annotated
with the tuple count of the operator they filter (their "parent operator"
in the paper's terminology).  The estimator performs **no data access** —
every number is an O(log n) index count, which is why VAMANA can afford to
re-cost plans inside the optimization loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mass.records import NodeKind
from repro.mass.store import MassStore
from repro.model import Axis, NodeTestKind
from repro.cost.table import output_bound
from repro.algebra.plan import (
    BinaryPredicateNode,
    ExistsNode,
    ExprNode,
    FunctionNode,
    FusedPathScanNode,
    JoinNode,
    LiteralNode,
    NegateNode,
    NumberNode,
    PathExprNode,
    PlanBase,
    PlanNode,
    QueryPlan,
    RootNode,
    StepNode,
    UnionNode,
    ValueStepNode,
)


@dataclass(frozen=True)
class OrderedOperator:
    """One entry of the ordered list L(P): an operator and its δ ratio."""

    node: PlanBase
    ratio: float
    scaled: float


class CostEstimator:
    """Annotates plans with COUNT/TC/IN/OUT and produces L(P).

    COUNT and TC lookups are memoized per store epoch: the optimizer
    re-costs the same steps many times inside one rewrite loop, and the
    underlying range counts cannot change until the store mutates (which
    bumps :attr:`MassStore.epoch` and drops the memo).
    """

    def __init__(self, store: MassStore):
        self.store = store
        self._cache_epoch = store.epoch
        self._count_cache: dict = {}
        self._text_count_cache: dict[str, int] = {}

    # -- memoized index counts ---------------------------------------------------

    def _validate_caches(self) -> None:
        if self._cache_epoch != self.store.epoch:
            self._count_cache.clear()
            self._text_count_cache.clear()
            self._cache_epoch = self.store.epoch

    def _count(self, test, principal) -> int:
        self._validate_caches()
        key = (test, principal)
        count = self._count_cache.get(key)
        if count is None:
            count = self.store.count(test, principal)
            self._count_cache[key] = count
        return count

    def _text_count(self, value: str) -> int:
        self._validate_caches()
        count = self._text_count_cache.get(value)
        if count is None:
            count = self.store.text_count(value)
            self._text_count_cache[value] = count
        return count

    # -- public -----------------------------------------------------------------

    def estimate(self, plan: QueryPlan) -> list[OrderedOperator]:
        """Annotate every operator and return the selectivity-ordered list."""
        self._annotate_plan_node(plan.root, predicate_input=None)
        return self.ordered_list(plan)

    def suggest_block_size(self, plan: QueryPlan, intervals=None) -> int:
        """Size pipeline blocks from the plan's estimated cardinalities.

        The widest operator in the plan — not the root — sets the block
        size: a selective final step over a broad leaf scan still wants
        big blocks upstream, and every operator in the pipeline shares
        one size.  The suggestion is clamped to [16, 256]: below 16
        batching cannot amortize dispatch, while measurements show the
        coalesced scans that batching exists for are insensitive above
        256 and non-batchable steps pay a small buffering tax for
        oversized blocks.  Falls back to the default size when the
        estimator has no cardinality for the plan.

        ``intervals`` (an ``op_id`` → interval table from
        :func:`repro.analysis.tv.bounds.derive_intervals`) clamps each
        estimate to its provable upper bound first, so an unsound point
        estimate cannot inflate block memory.
        """
        if plan.root.cost.tuples_out is None:
            self.estimate(plan)

        def bounded(node) -> int:
            out = node.cost.tuples_out
            if intervals is not None:
                interval = intervals.get(node.op_id)
                if interval is not None:
                    out = min(out, interval.hi)
            return out

        widest = max(
            (
                bounded(node)
                for node in plan.walk()
                if node.cost.tuples_out is not None
            ),
            default=None,
        )
        if widest is None or widest <= 0:
            from repro.algebra.execution import DEFAULT_BLOCK_SIZE

            return DEFAULT_BLOCK_SIZE
        return max(16, min(256, int(widest)))

    def ordered_list(self, plan: QueryPlan) -> list[OrderedOperator]:
        """L(P): candidate operators sorted by selectivity, then by id."""
        entries: list[tuple[PlanBase, float]] = []
        for node in plan.walk():
            if not isinstance(node, (StepNode, ValueStepNode, BinaryPredicateNode)):
                continue
            cost = node.cost
            if cost.tuples_in is None or cost.tuples_out is None:
                continue
            if cost.tuples_out == 0:
                ratio = float("inf") if cost.tuples_in else 1.0
            else:
                ratio = cost.tuples_in / cost.tuples_out
            entries.append((node, ratio))
        if not entries:
            return []
        finite = [ratio for _node, ratio in entries if ratio != float("inf")]
        top = max(finite) if finite else 1.0
        top = max(top, 1e-9)
        ordered = []
        for node, ratio in entries:
            scaled = 1.0 if ratio == float("inf") else min(1.0, ratio / top)
            node.cost.selectivity = scaled
            ordered.append(OrderedOperator(node, ratio, scaled))
        ordered.sort(key=lambda entry: (-entry.ratio, entry.node.op_id))
        return ordered

    # -- step counts ---------------------------------------------------------------

    def _step_count(self, node: StepNode) -> int:
        """COUNT(op): document-wide population of the node test."""
        return self._count(node.test, node.axis.principal_kind)

    # -- plan nodes -------------------------------------------------------------------

    def _annotate_plan_node(self, node: PlanNode, predicate_input: int | None) -> int:
        """Annotate one tuple-producing operator; returns its OUT bound.

        ``predicate_input`` is set when the node lives on a predicate path
        (case 3 of IN): its leaf receives the tuples of the operator the
        predicate filters.
        """
        if isinstance(node, RootNode):
            if node.context_child is None:
                node.cost.tuples_in = node.cost.tuples_out = 1
                return 1
            child_out = self._annotate_plan_node(node.context_child, predicate_input)
            node.cost.tuples_in = child_out
            node.cost.tuples_out = child_out
            return child_out
        if isinstance(node, UnionNode):
            total = 0
            for branch in node.branches:
                total += self._annotate_plan_node(branch, predicate_input)
            node.cost.tuples_in = total
            node.cost.tuples_out = total
            return total
        if isinstance(node, JoinNode):
            left_out = self._annotate_plan_node(node.left, predicate_input)
            right_out = self._annotate_plan_node(node.right, predicate_input)
            node.cost.tuples_in = left_out + right_out
            # the join emits right tuples only, at most once each
            node.cost.raw_out = right_out
            out = right_out
            for predicate in node.predicates:
                out = min(out, self._annotate_expr(predicate, out))
            node.cost.tuples_out = out
            return out
        if isinstance(node, ValueStepNode):
            # A value-index step: IN = OUT = TC(value)  (case 2 / Figure 9).
            text_count = self._text_count(node.value)
            node.cost.text_count = text_count
            node.cost.count = text_count
            node.cost.tuples_in = text_count
            node.cost.raw_out = text_count
            out = text_count
            for predicate in node.predicates:
                out = min(out, self._annotate_expr(predicate, out))
            node.cost.tuples_out = out
            return out
        if isinstance(node, FusedPathScanNode):
            return self._annotate_fused(node)
        if isinstance(node, StepNode):
            return self._annotate_step(node, predicate_input)
        raise TypeError(f"cannot cost {type(node).__name__}")

    def _annotate_fused(self, node: FusedPathScanNode) -> int:
        """Cost a fused path scan: one pass, entries *touched* as raw OUT.

        The fused operator does not materialise per-step tuples; its cost
        is the entries its single scan must look at.  The automaton walks
        the context subtree in document order, and although it skips
        subtrees it proves dead, the skip is a runtime heuristic the
        statistics cannot see — so the estimate charges the whole node
        index.  Deliberately pessimistic: fusion only beats the per-step
        pipeline when the intermediate populations the pipeline would
        materialise and rescan exceed one full pass, which is exactly
        when the optimizer should pick it.  Selective name-indexed chains
        (whose per-step scans touch far less than the document) stay
        unfused.  OUT is bounded by the final step's population, which
        keeps the estimate inside the abstract-interpretation interval.
        """
        final_axis, final_test = node.steps[-1]
        final_count = self._count(final_test, final_axis.principal_kind)
        node.cost.count = final_count
        scanned = len(self.store.node_index)
        node.cost.tuples_in = 1
        node.cost.raw_out = scanned
        out = min(final_count, scanned)
        for predicate in node.predicates:
            out = min(out, self._annotate_expr(predicate, out))
        node.cost.tuples_out = out
        return out

    def _annotate_step(self, node: StepNode, predicate_input: int | None) -> int:
        count = self._step_count(node)
        node.cost.count = count
        if node.context_child is not None:
            # Case 2 (IN): a non-leaf operator receives OUT of its child.
            tuples_in = self._annotate_plan_node(node.context_child, predicate_input)
        elif predicate_input is not None:
            # Case 3 (IN): a predicate-path leaf receives the tuples of the
            # operator its predicate filters.
            tuples_in = predicate_input
        else:
            # Case 1 (IN): a context-path leaf drains the index.
            tuples_in = count
        node.cost.tuples_in = tuples_in
        if node.context_child is None and predicate_input is None:
            # Case 1 (OUT): the leaf returns every index match.
            out = count
        else:
            # Cases 3/4 (OUT): Table I.
            out = output_bound(node.axis, count, tuples_in)
        node.cost.raw_out = out
        for predicate in node.predicates:
            out = min(out, self._annotate_expr(predicate, out))
        node.cost.tuples_out = out
        return out

    # -- predicate expressions ------------------------------------------------------------

    def _annotate_expr(self, expr: ExprNode, parent_tuples: int) -> int:
        """Annotate a predicate tree; returns the bound it puts on the
        filtered operator's output (cases 5 and 6)."""
        if isinstance(expr, LiteralNode):
            expr.cost.text_count = self._text_count(expr.value)
            return parent_tuples
        if isinstance(expr, NumberNode):
            # A numeric predicate keeps at most one position per context.
            return parent_tuples
        if isinstance(expr, ExistsNode):
            path_out = self._annotate_plan_node(expr.path, parent_tuples)
            expr.cost.tuples_in = path_out
            expr.cost.tuples_out = path_out
            return parent_tuples
        if isinstance(expr, PathExprNode):
            path_out = self._annotate_plan_node(expr.path, parent_tuples)
            expr.cost.tuples_in = path_out
            expr.cost.tuples_out = path_out
            return parent_tuples
        if isinstance(expr, NegateNode):
            self._annotate_expr(expr.operand, parent_tuples)
            return parent_tuples
        if isinstance(expr, FunctionNode):
            for arg in expr.args:
                self._annotate_expr(arg, parent_tuples)
            return parent_tuples
        if isinstance(expr, BinaryPredicateNode):
            return self._annotate_binary(expr, parent_tuples)
        return parent_tuples

    def _annotate_binary(self, expr: BinaryPredicateNode, parent_tuples: int) -> int:
        left_bound = self._annotate_expr(expr.left, parent_tuples)
        right_bound = self._annotate_expr(expr.right, parent_tuples)
        expr.cost.tuples_in = parent_tuples
        literal_count = self.value_equivalence_count(expr)
        if literal_count is not None:
            # Case 5 (OUT): value-based equivalence — the literal occurs
            # TC times, so at most min(parent, TC) tuples can satisfy it.
            expr.cost.text_count = literal_count
            out = min(parent_tuples, literal_count)
        elif expr.op == "and":
            out = min(left_bound, right_bound)
        elif expr.op == "or":
            out = parent_tuples
        else:
            # Case 6 (OUT): no index-derivable reduction.
            out = parent_tuples
        expr.cost.tuples_out = out
        return out

    def value_equivalence_count(self, expr: BinaryPredicateNode) -> int | None:
        """TC for a ``path = 'literal'`` predicate, or None.

        This is the pattern the value-index rewrite (Figure 9) targets:
        an equality between a text()-reaching predicate path and a string
        literal, answerable from the value index alone.
        """
        if expr.op != "=":
            return None
        sides = [expr.left, expr.right]
        literal = next((side for side in sides if isinstance(side, LiteralNode)), None)
        path = next((side for side in sides if isinstance(side, PathExprNode)), None)
        if literal is None or path is None:
            return None
        if not reaches_text_values(path.path):
            return None
        return self._text_count(literal.value)


def reaches_text_values(path: PlanNode) -> bool:
    """True if a predicate path ends in text or attribute nodes.

    Such paths compare raw stored values, which is exactly what the value
    index holds — the precondition for cases 5's TC bound and for the
    value-index rewrite.
    """
    if isinstance(path, StepNode):
        if path.test.kind is NodeTestKind.TEXT:
            return True
        if path.axis is Axis.ATTRIBUTE:
            return True
        if path.axis.principal_kind is NodeKind.ATTRIBUTE:
            return True
    return False


def plan_cost(plan: QueryPlan) -> int:
    """The optimizer's whole-plan cost: estimated tuples *touched*.

    Every tuple-producing operator contributes its pre-predicate output
    bound (Table I applied to its IN): that is how many candidates it
    generates and how many predicate evaluations it triggers.  Predicate
    paths were annotated with the filtered operator's tuple count as
    input, so their raw bounds already aggregate across invocations.  The
    optimizer accepts a rewrite only if this figure strictly drops, which
    both reproduces the paper's accept decisions on Q1/Q2 and guarantees
    termination of the rewrite loop.
    """
    total = 0
    for node in plan.walk():
        if isinstance(node, PlanNode) and not isinstance(node, RootNode):
            if node.cost.raw_out is not None:
                total += node.cost.raw_out
            elif node.cost.tuples_out is not None:
                total += node.cost.tuples_out
    return total


# -- scatter routing (partitioned execution) -----------------------------------


@dataclass(frozen=True)
class FanoutDecision:
    """Which shards a query should be scattered to, and why.

    Produced by :func:`estimate_fanout` from each shard's name-index
    statistics (recorded in the shard manifest at build time).  ``mode``
    is ``"scatter"`` (several shards can contribute), ``"single"``
    (exactly one can — skip the fan-out machinery and its merge), or
    ``"empty"`` (none can — the query is answered without contacting any
    worker).
    """

    mode: str
    shard_ids: tuple[int, ...]
    per_shard_cost: dict[int, float]
    reason: str


def estimate_fanout(
    shard_name_counts: dict[int, dict[str, int]],
    branch_names: list[list[str]],
) -> FanoutDecision:
    """Route a query across shards from per-shard name statistics.

    ``branch_names`` lists, per union branch, the name-index names the
    branch requires on its *main path* (empty when the query was not
    analyzable — then every shard is a candidate).  The estimate per
    shard mirrors the paper's COUNT bound: a branch can emit at most
    ``min(COUNT(name))`` over its required names, and a shard whose
    bound is zero for every branch provably contributes nothing — it is
    dropped from the fan-out exactly like an unsatisfiable shard, but on
    statistics rather than schema structure.
    """
    costs: dict[int, float] = {}
    for shard_id, counts in shard_name_counts.items():
        if not branch_names:
            # No routing signal: assume the shard's whole population.
            costs[shard_id] = float(sum(counts.values()))
            continue
        bound = 0.0
        for names in branch_names:
            if not names:
                bound += float(sum(counts.values()))
                continue
            branch_bound = min(float(counts.get(name, 0)) for name in names)
            bound += branch_bound
        costs[shard_id] = bound
    chosen = tuple(sorted(s for s, cost in costs.items() if cost > 0.0))
    if not chosen and not branch_names:
        chosen = tuple(sorted(costs))
    if not chosen:
        mode, reason = "empty", "no shard holds the required names"
    elif len(chosen) == 1:
        mode = "single"
        reason = f"only shard {chosen[0]} holds the required names"
    else:
        mode = "scatter"
        reason = f"{len(chosen)}/{len(shard_name_counts)} shards hold candidates"
    return FanoutDecision(
        mode=mode, shard_ids=chosen, per_shard_cost=costs, reason=reason
    )
