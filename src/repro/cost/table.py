"""Table I — the per-axis upper bound on a step operator's output.

The table groups the axes by how their fan-out composes with the input
tuple stream:

* **down axes** (child, descendant, descendant-or-self, and — in our
  store — attribute/namespace): one input may reach many matches, but the
  targets reached from distinct contexts are disjoint, so the *node test's
  total population* COUNT bounds the output.
* **up and order axes** (parent, ancestor, ancestor-or-self, following,
  following-sibling, preceding, preceding-sibling): the pipeline emits at
  most a bounded number of tuples per input in the paper's model, so the
  *input* IN bounds the output.  (The paper's Figure 6 walk-through pins
  this down: ``parent::person`` with COUNT = 2550 but IN = 4825 gets
  OUT = 4825, because the pipeline does not eliminate the duplicate
  parents.)
* **self**: a pure filter — both bounds hold, so OUT = min(COUNT, IN).
  (The printed table's self row is garbled in the PDF; min is the only
  reading under which both of its cases are sound bounds.)
"""

from __future__ import annotations

from repro.model import Axis

_DOWN_AXES = frozenset(
    {
        Axis.CHILD,
        Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF,
        Axis.ATTRIBUTE,
        Axis.NAMESPACE,
    }
)

_UP_AND_ORDER_AXES = frozenset(
    {
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.FOLLOWING,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING,
        Axis.PRECEDING_SIBLING,
    }
)


def output_bound(axis: Axis, count: int, tuples_in: int) -> int:
    """OUT(op) for a step operator per Table I.

    ``count`` is COUNT(op) — how many stored nodes satisfy the node test —
    and ``tuples_in`` is IN(op), the tuples arriving from the context
    child.
    """
    if axis in _DOWN_AXES:
        return count
    if axis in _UP_AND_ORDER_AXES:
        return tuples_in
    # Axis.SELF
    return min(count, tuples_in)
