"""VAMANA's cost estimation model (Section VI-B).

Statistics come straight from the MASS indexes at optimization time —
COUNT via name-index range counts, TC via value-index range counts — so
they are exact and immune to update drift (no histograms to maintain).

:mod:`repro.cost.table` implements Table I (per-axis OUT bounds);
:mod:`repro.cost.estimator` runs the bottom-up IN/OUT propagation over a
physical plan and produces the selectivity-ordered operator list the
optimizer consumes.
"""

from repro.cost.table import output_bound
from repro.cost.estimator import CostEstimator, OrderedOperator, plan_cost

__all__ = ["output_bound", "CostEstimator", "OrderedOperator", "plan_cost"]
