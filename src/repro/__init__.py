"""VAMANA — a scalable, cost-driven XPath engine (ICDE 2005), reproduced.

This package is a from-scratch Python implementation of the complete
VAMANA system of Raghavan, Deschler and Rundensteiner, together with every
substrate it depends on:

* :mod:`repro.mass` — the MASS storage structure: FLEX keys, counted
  B+-trees, name/value indexes, all 13 XPath axes as index range scans;
* :mod:`repro.xpath` — the XPath 1.0 compiler;
* :mod:`repro.algebra` — the pipelined physical algebra (Algorithms 1/2);
* :mod:`repro.cost` — the index-derived cost model (Table I, cases 1-6);
* :mod:`repro.optimizer` — clean-up, the transformation library, and the
  selectivity-ordered, cost-gated rewrite loop;
* :mod:`repro.engine` — the :class:`VamanaEngine` facade and multi-document
  :class:`Database`;
* :mod:`repro.baselines` — the paper's comparison systems rebuilt (DOM
  traversal for Galax/Jaxen, structural path joins for eXist);
* :mod:`repro.xmark` — the XMark-style workload generator, calibrated to
  the paper's document statistics;
* :mod:`repro.bench` — the harness regenerating every evaluation figure.

Quickstart::

    from repro import VamanaEngine, load_xml

    store = load_xml("<site><person><name>Ada</name></person></site>")
    engine = VamanaEngine(store)
    for record in engine.evaluate("//person/name").records():
        print(record.label())
"""

from repro.errors import (
    BudgetExceededError,
    DocumentTooLargeError,
    ExecutionError,
    PlanError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
    SnapshotError,
    StorageError,
    TransientStorageError,
    UnsupportedFeatureError,
    XmlError,
    XPathSyntaxError,
)
from repro.model import Axis, NodeTest, NodeTestKind
from repro.mass import FlexKey, MassStore, NodeKind, NodeRecord, load_document, load_xml
from repro.xpath import parse_xpath
from repro.algebra import build_default_plan, execute_plan
from repro.cost import CostEstimator, plan_cost
from repro.optimizer import Optimizer, optimize_plan
from repro.engine import Database, ExecutionMetrics, QueryResult, VamanaEngine
from repro.resilience import FaultInjector, QueryGuard, with_retries
from repro.serving import QueryOutcome, QueryServer, SnapshotManager, StoreSnapshot
from repro.xmark import XmarkGenerator, generate_document, paper_profile

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "XmlError",
    "XPathSyntaxError",
    "StorageError",
    "TransientStorageError",
    "PlanError",
    "ExecutionError",
    "QueryTimeoutError",
    "BudgetExceededError",
    "QueryCancelledError",
    "UnsupportedFeatureError",
    "DocumentTooLargeError",
    "ServingError",
    "ServerOverloadedError",
    "ServerClosedError",
    "SnapshotError",
    # model
    "Axis",
    "NodeTest",
    "NodeTestKind",
    "NodeKind",
    # storage
    "FlexKey",
    "NodeRecord",
    "MassStore",
    "load_xml",
    "load_document",
    # compiler / algebra / optimizer
    "parse_xpath",
    "build_default_plan",
    "execute_plan",
    "CostEstimator",
    "plan_cost",
    "Optimizer",
    "optimize_plan",
    # engine
    "VamanaEngine",
    "Database",
    "QueryResult",
    "ExecutionMetrics",
    # resilience
    "QueryGuard",
    "FaultInjector",
    "with_retries",
    # serving
    "QueryServer",
    "QueryOutcome",
    "SnapshotManager",
    "StoreSnapshot",
    # workload
    "XmarkGenerator",
    "generate_document",
    "paper_profile",
]
