#!/usr/bin/env python
"""Watch the optimizer work: the clean-up of Figure 5, the cost
annotations of Figure 6/7, and the rewrite sequences of Figures 8/9/11,
reproduced step by step on a generated auction document.

Run:  python examples/optimizer_explain.py
"""

from repro import VamanaEngine, generate_document, load_xml
from repro.algebra.builder import build_default_plan
from repro.cost.estimator import CostEstimator
from repro.optimizer.cleanup import cleanup_plan


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    store = load_xml(generate_document(0.02, seed=42), name="explain")
    engine = VamanaEngine(store)
    estimator = CostEstimator(store)

    # ---- Q1: clean-up, costing, reverse-axis, push-down ------------------
    q1 = "descendant::name/parent::*/self::person/address"
    banner(f"Q1: {q1}")

    plan = build_default_plan(q1)
    print("\ndefault parse-tree plan (Figure 4a):")
    print(plan.explain(costs=False))

    cleanup_plan(plan)
    print("\nafter clean-up (Figure 5b: parent::*/self::person merged):")
    print(plan.explain(costs=False))

    ordered = estimator.estimate(plan)
    print("\ncost annotation (Figure 6) and the ordered list L(P):")
    print(plan.explain())
    for entry in ordered:
        print(f"  delta({entry.node.describe()}) = {entry.ratio:.3f} "
              f"(scaled {entry.scaled:.3f})")

    optimized, trace = engine.optimize(build_default_plan(q1))
    print("\noptimization trace:")
    print(trace.describe())
    print("\nfinal plan (Figure 11):")
    estimator.estimate(optimized)
    print(optimized.explain())

    # ---- Q2: the value-index rewrite --------------------------------------
    q2 = "//name[text() = 'Yung Flach']/following-sibling::emailaddress"
    banner(f"Q2: {q2}")

    plan = build_default_plan(q2)
    estimator.estimate(plan)
    print("\ndefault plan with Figure 7 annotation (note TC = "
          f"{store.text_count('Yung Flach')}):")
    print(plan.explain())

    optimized, trace = engine.optimize(plan)
    estimator.estimate(optimized)
    print("\nafter the Figure 9 value-index rewrite:")
    print(optimized.explain())
    print()
    print(trace.describe())

    # ---- Q2': duplicate elimination ----------------------------------------
    q2b = "//watches/watch/ancestor::person"
    banner(f"Q2': {q2b} (duplicate elimination)")
    optimized, trace = engine.optimize(build_default_plan(q2b))
    print(trace.describe())
    print()
    estimator.estimate(optimized)
    print(optimized.explain())

    # ---- proof of the never-slower guarantee --------------------------------
    banner("measured: optimized plans never lose")
    for query in (q1, q2, q2b):
        default = engine.evaluate(query, optimize=False)
        optimized_result = engine.evaluate(query, optimize=True)
        print(f"{query[:58]:60s} "
              f"VQP {default.metrics.wall_seconds * 1000:7.2f}ms   "
              f"VQP-OPT {optimized_result.metrics.wall_seconds * 1000:7.2f}ms")


if __name__ == "__main__":
    main()
