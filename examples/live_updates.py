#!/usr/bin/env python
"""Statistics that survive updates — the paper's argument against
histogram-based costing, demonstrated live.

A histogram system must rebuild after enough updates or its estimates
drift; VAMANA reads counts off the counted B+-trees, so after every
insert/delete the very next cost estimate is exact.  This example
mutates a document and shows COUNT/TC and the optimizer's choices
tracking perfectly.

Run:  python examples/live_updates.py
"""

from repro import Axis, FlexKey, NodeTest, VamanaEngine, generate_document, load_xml

NT = NodeTest.name_test


def show_costs(engine, query):
    plan, trace = engine.plan(query, optimize=True)
    engine.estimator.estimate(plan)
    top = plan.root.context_child
    print(f"    plan head {top.describe():40s} {top.cost.annotate()}")
    if trace and trace.entries:
        print(f"    rewrites: {', '.join(entry.rule for entry in trace.entries)}")


def main() -> None:
    store = load_xml(generate_document(0.01, seed=42), name="updates")
    engine = VamanaEngine(store, plan_cache_size=0)  # re-optimize every call
    query = "//province[text()='Vermont']/ancestor::person"

    print("initial state:")
    print(f"  COUNT(person)={store.count(NT('person'))}  "
          f"COUNT(province)={store.count(NT('province'))}  "
          f"TC('Vermont')={store.text_count('Vermont')}")
    show_costs(engine, query)
    before = len(engine.evaluate(query))
    print(f"  results: {before}")
    print()

    print("inserting 25 new Vermont residents ...")
    people = next(
        record.key
        for record in store.axis_records(store.root_element().key, Axis.CHILD, NT("people"))
    )
    for index in range(25):
        person = store.insert_element(people, "person")
        store.insert_element(person, "name", f"Newcomer {index}")
        address = store.insert_element(person, "address")
        store.insert_element(address, "country", "United States")
        store.insert_element(address, "province", "Vermont")

    print(f"  COUNT(person)={store.count(NT('person'))}  "
          f"COUNT(province)={store.count(NT('province'))}  "
          f"TC('Vermont')={store.text_count('Vermont')}")
    show_costs(engine, query)
    after = len(engine.evaluate(query))
    print(f"  results: {after}  (was {before}; +25 as expected: {after == before + 25})")
    print()

    print("deleting every watches block ...")
    watches_keys = [
        key for key, _ in store.axis(FlexKey.document(), Axis.DESCENDANT, NT("watches"))
    ]
    removed = sum(store.delete_subtree(key) for key in watches_keys)
    print(f"  removed {removed} nodes; COUNT(watch)={store.count(NT('watch'))}")
    print(f"  //watches/watch/ancestor::person now returns "
          f"{len(engine.evaluate('//watches/watch/ancestor::person'))} rows")
    print()
    print("every number above came from the live indexes: no ANALYZE step,")
    print("no histogram rebuild, no stale estimates.")


if __name__ == "__main__":
    main()
