#!/usr/bin/env python
"""Quickstart: index a document, run XPath, inspect plans and costs.

Run:  python examples/quickstart.py
"""

from repro import VamanaEngine, load_xml

DOCUMENT = """\
<site>
  <person id="person144">
    <name>Yung Flach</name>
    <emailaddress>Flach@auth.gr</emailaddress>
    <address>
      <street>92 Pfisterer St</street>
      <city>Monroe</city>
      <country>United States</country>
      <province>Vermont</province>
      <zipcode>12</zipcode>
    </address>
    <watches>
      <watch open_auction="open_auction108"/>
      <watch open_auction="open_auction94"/>
      <watch open_auction="open_auction110"/>
    </watches>
  </person>
  <person id="person145">
    <name>Wilhelmina Sterling</name>
    <emailaddress>Sterling@example.net</emailaddress>
  </person>
</site>
"""


def main() -> None:
    # 1. Parse and index the document into a MASS store: three counted
    #    B+-trees (node / name / value index) over FLEX structural keys.
    store = load_xml(DOCUMENT, name="quickstart")
    print("store:", store)
    print(store.statistics().describe())
    print()

    # 2. Create the engine and run queries.  evaluate() compiles the
    #    expression, runs the cost-driven optimizer, and executes the plan
    #    over the indexes.
    engine = VamanaEngine(store)

    for query in (
        "//person/name",
        "//person[address/province = 'Vermont']/emailaddress",
        "//watch/@open_auction",
        "//name[text() = 'Yung Flach']/following-sibling::emailaddress",
    ):
        result = engine.evaluate(query)
        print(f"{query}")
        for label in result.labels():
            print(f"   -> {label}")
        print(f"   [{result.metrics.describe()}]")
        print()

    # 3. Value expressions work too.
    print("count(//watch)         =", engine.evaluate_value("count(//watch)"))
    print("string(//person/name)  =", engine.evaluate_value("string(//person/name)"))
    print()

    # 4. Look inside: the physical plan with its cost annotations
    #    (COUNT/IN/OUT of Section VI-B) and the optimizer trace.
    print(engine.explain("//name[text() = 'Yung Flach']/following-sibling::emailaddress"))


if __name__ == "__main__":
    main()
