#!/usr/bin/env python
"""Re-create the paper's Figures 12-16 in one run: all five benchmark
queries across the document-size axis for VQP, VQP-OPT and the three
baseline-engine classes (Galax/Jaxen DOM traversal, eXist path joins).

Run:  python examples/engine_shootout.py
Env:  REPRO_BENCH_SCALE=1.0 for the paper's full sizes (slow)
      REPRO_BENCH_SIZES=1,2,5 to narrow the axis
"""

from repro.bench.corpus import corpus_sizes, get_corpus_document
from repro.bench.plots import ascii_figure
from repro.bench.reporting import format_figure_table
from repro.bench.runner import ENGINE_NAMES, run_all_engines

FIGURES = {
    "Figure 12 - Q1 //person/address": "//person/address",
    "Figure 13 - Q2 //watches/watch/ancestor::person": "//watches/watch/ancestor::person",
    "Figure 14 - Q3 /descendant::name/parent::*/self::person/address":
        "/descendant::name/parent::*/self::person/address",
    "Figure 15 - Q4 //itemref/following-sibling::price/parent::*":
        "//itemref/following-sibling::price/parent::*",
    "Figure 16 - Q5 //province[text()='Vermont']/ancestor::person":
        "//province[text()='Vermont']/ancestor::person",
}


def main() -> None:
    sizes = corpus_sizes()
    print(f"building corpus for size labels {sizes} (MB) ...")
    for size in sizes:
        document = get_corpus_document(size)
        print(f"  {size:3d} MB label -> factor {document.factor:.4f}, "
              f"{document.actual_bytes / 1e6:.2f} MB actual")
    print()
    for title, query in FIGURES.items():
        outcomes = {
            size: run_all_engines(query, get_corpus_document(size), repeats=3)
            for size in sizes
        }
        print(format_figure_table(title + " (seconds; '-' = no data point)",
                                  outcomes, ENGINE_NAMES))
        print()
        print(ascii_figure(title + " (chart)", outcomes, ENGINE_NAMES))
        print()
    print("Shape checks to read off the tables, as in the paper:")
    print("  - VQP-OPT <= VQP everywhere (the optimizer never loses)")
    print("  - VAMANA beats the DOM class, and the gap widens with size")
    print("  - jaxen stops before 10 MB, exist before 20 MB (size caps)")
    print("  - galax and exist have no Q4 points (missing sibling axes)")
    print("  - Q5: VAMANA ~2x+ faster than exist (value-predicate fallback)")


if __name__ == "__main__":
    main()
