#!/usr/bin/env python
"""The paper's workload end to end: generate an XMark auction document,
index it, and run the five benchmark queries of Section VIII with and
without the optimizer, reporting times and index work.

Run:  python examples/auction_queries.py [factor]

``factor`` is the XMark scale (default 0.02; the paper's 10 MB document
is factor 0.1).
"""

import sys

from repro import VamanaEngine, generate_document, load_xml

PAPER_QUERIES = {
    "Q1": "//person/address",
    "Q2": "//watches/watch/ancestor::person",
    "Q3": "/descendant::name/parent::*/self::person/address",
    "Q4": "//itemref/following-sibling::price/parent::*",
    "Q5": "//province[text()='Vermont']/ancestor::person",
}


def main() -> None:
    factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02

    print(f"generating auction.xml at factor {factor} ...")
    text = generate_document(factor, seed=42)
    print(f"  {len(text) / 1e6:.2f} MB of XML")

    print("indexing into MASS ...")
    store = load_xml(text, name=f"auction-{factor}")
    stats = store.statistics()
    print(f"  {stats.total_nodes} nodes on {stats.pages} pages "
          f"({stats.tuples_per_page:.1f} tuples/page)")
    print()

    engine = VamanaEngine(store)
    header = f"{'query':4s}  {'results':>7s}  {'VQP':>10s}  {'VQP-OPT':>10s}  {'speedup':>7s}  rewrites"
    print(header)
    print("-" * len(header))
    for label, query in PAPER_QUERIES.items():
        default = engine.evaluate(query, optimize=False)
        optimized = engine.evaluate(query, optimize=True)
        assert default.key_set() == optimized.key_set(), "optimizer changed results!"
        speedup = default.metrics.wall_seconds / max(optimized.metrics.wall_seconds, 1e-9)
        rewrites = ", ".join(e.rule for e in optimized.trace.entries) or "(none)"
        print(
            f"{label:4s}  {len(default):7d}  "
            f"{default.metrics.wall_seconds * 1000:8.2f}ms  "
            f"{optimized.metrics.wall_seconds * 1000:8.2f}ms  "
            f"{speedup:6.1f}x  {rewrites}"
        )
    print()

    print("Q1 in detail — the paper's 40% fetch-reduction claim:")
    for name, optimize in (("default //person/address", False),
                           ("optimized //address[parent::person]", True)):
        store.reset_metrics()
        plan, trace = engine.plan(PAPER_QUERIES["Q1"], optimize)
        engine.execute(plan)
        snapshot = store.io_snapshot()
        print(f"  {name:38s} page touches={snapshot['logical_reads']:7d} "
              f"entries scanned={snapshot['entries_scanned']:7d}")


if __name__ == "__main__":
    main()
