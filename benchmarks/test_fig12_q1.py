"""Figure 12 — Q1: ``//person/address``, execution time vs document size.

Paper shape: both VAMANA variants beat Galax/Jaxen/eXist at every size;
VQP-OPT (the ``//address[parent::person]`` rewrite) beats VQP; the gap to
the DOM engines widens with document size; Jaxen stops at 10 MB and eXist
at 20 MB.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES, bench_query, figure_summary, run_once, seconds
from repro.bench.runner import ENGINE_NAMES
from repro.bench.reporting import supported_sizes

QUERY = "//person/address"


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_fig12_cell(benchmark, engine, size):
    bench_query(benchmark, engine, QUERY, size)


def test_fig12_shape(benchmark):
    outcomes = run_once(benchmark, lambda: figure_summary("Figure 12 - Q1 //person/address (seconds)", QUERY))
    largest = max(SIZES)
    # VAMANA beats the DOM class at the largest size both engines can run.
    dom_largest = max(supported_sizes(outcomes, "galax"))
    assert seconds(outcomes, dom_largest, "VQP-OPT") < seconds(outcomes, dom_largest, "galax")
    assert seconds(outcomes, dom_largest, "VQP") < seconds(outcomes, dom_largest, "galax")
    # optimizer never slower (execution time of the plan itself)
    for size in SIZES:
        assert seconds(outcomes, size, "VQP-OPT") <= seconds(outcomes, size, "VQP") * 1.5
    # missing data points reproduce the published caps
    assert max(supported_sizes(outcomes, "jaxen")) < 10 or 10 not in SIZES
    assert all(size < 20 for size in supported_sizes(outcomes, "exist"))
    assert supported_sizes(outcomes, "VQP-OPT") == list(SIZES)
    # the DOM gap widens with size: galax slowdown outpaces VAMANA's
    smallest = min(SIZES)
    if dom_largest > smallest:
        galax_growth = seconds(outcomes, dom_largest, "galax") / seconds(outcomes, smallest, "galax")
        vamana_growth = seconds(outcomes, dom_largest, "VQP-OPT") / max(
            seconds(outcomes, smallest, "VQP-OPT"), 1e-9
        )
        assert galax_growth > 1.0
    assert largest in supported_sizes(outcomes, "VQP")
