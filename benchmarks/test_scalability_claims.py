"""The scalability headline: index-only plans read a fraction of the data.

Not one numbered figure but the paper's title claim ("scalable ... engine",
"queries evaluated while reading only a fraction of the data").  We measure
VAMANA's index work as a share of the document across the size axis, and
the growth exponents of each engine class.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES, run_once
from repro.bench.corpus import get_corpus_document
from repro.bench.runner import prepare_engine
from repro.algebra.execution import execute_plan

POINT_QUERY = "//name[text()='Yung Flach']/following-sibling::emailaddress"
SELECTIVE_QUERY = "//province[text()='Vermont']/ancestor::person"


def vamana_work(document, query):
    engine = prepare_engine("VQP-OPT", document)
    plan, _trace = engine.plan(query, optimize=True)
    document.store.reset_metrics()
    list(execute_plan(plan, document.store))
    snapshot = document.store.io_snapshot()
    return snapshot["logical_reads"] + snapshot["entries_scanned"]


@pytest.mark.parametrize("query", [POINT_QUERY, SELECTIVE_QUERY], ids=["point", "selective"])
def test_fraction_of_data_read(benchmark, query):
    document = get_corpus_document(max(SIZES))
    work = run_once(benchmark, lambda: vamana_work(document, query))
    nodes = len(document.store.node_index)
    fraction = work / nodes
    print(f"\n{query}: work={work} over {nodes} nodes ({100 * fraction:.2f}% of data)")
    assert fraction < 0.05, "an index-only plan must read a small fraction"


def test_point_query_growth_is_sublinear(benchmark):
    """Work for a TC=1 probe grows ~log(document), not linearly."""

    def measure():
        return {size: vamana_work(get_corpus_document(size), POINT_QUERY) for size in SIZES}

    work_by_size = run_once(benchmark, measure)
    smallest, largest = min(SIZES), max(SIZES)
    data_growth = largest / smallest
    work_growth = work_by_size[largest] / max(work_by_size[smallest], 1)
    print(f"\ndata grew {data_growth:.0f}x, point-query work grew {work_growth:.1f}x")
    assert work_growth < data_growth / 3


@pytest.mark.parametrize("size", SIZES)
def test_vamana_point_query_bench(benchmark, size):
    document = get_corpus_document(size)
    engine = prepare_engine("VQP-OPT", document)
    plan, _trace = engine.plan(POINT_QUERY, optimize=True)
    benchmark(lambda: engine.execute(plan))


class TestBufferPoolAblation:
    """Warm vs cold buffer pool: how much the LRU pool actually saves."""

    def test_warm_vs_cold_page_reads(self, benchmark):
        from repro.mass.loader import load_xml

        document = get_corpus_document(max(SIZES))
        # cold store: zero-capacity pool — every touch is a physical read
        cold = load_xml(document.text, name="cold", buffer_capacity=0)
        warm = document.store
        query = "//person/address"

        from repro.engine.engine import VamanaEngine

        warm_engine = VamanaEngine(warm)
        cold_engine = VamanaEngine(cold)
        warm_engine.evaluate(query)  # populate the pool

        warm.reset_metrics()
        run_once(benchmark, lambda: warm_engine.evaluate(query))
        warm_physical = warm.io_snapshot()["pages_read"]

        cold.reset_metrics()
        cold_engine.evaluate(query)
        cold_physical = cold.io_snapshot()["pages_read"]
        print(f"\nphysical page reads: warm={warm_physical}, cold={cold_physical}")
        assert warm_physical < cold_physical

    def test_hit_ratio_reported(self, benchmark):
        document = get_corpus_document(max(SIZES))
        engine = prepare_engine("VQP-OPT", document)
        engine.evaluate("//person/address")
        document.store.buffer.stats.reset()
        run_once(benchmark, lambda: engine.evaluate("//person/address"))
        assert document.store.buffer.stats.hit_ratio > 0.5
