"""Table I — the cost table, validated empirically per axis.

For every axis group the benchmark compares the Table I OUT bound against
the actual tuple stream measured on the corpus document, and benchmarks
the cost of *obtaining* the estimate (the index-only counting the model
depends on).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES, run_once
from repro.bench.corpus import get_corpus_document
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import execute_plan
from repro.cost.estimator import CostEstimator
from repro.optimizer.cleanup import cleanup_plan

#: One representative query per Table I axis row (axis under test is the
#: top step).
AXIS_QUERIES = {
    "child": "//person/address",
    "descendant": "//people//city",
    "descendant-or-self": "//address/descendant-or-self::city",
    "attribute": "//person/@id",
    "parent": "//name/parent::person",
    "ancestor": "//watch/ancestor::person",
    "ancestor-or-self": "//address/ancestor-or-self::person",
    "following": "//categories/following::person",
    "preceding": "//open_auctions/preceding::name",
    "following-sibling": "//itemref/following-sibling::price",
    "preceding-sibling": "//price/preceding-sibling::itemref",
    "self": "//person/self::person",
}

_SOUND = {
    "child", "descendant", "descendant-or-self", "attribute",
    "parent", "self", "following-sibling", "preceding-sibling",
}


@pytest.fixture(scope="module")
def document():
    return get_corpus_document(min(SIZES))


def annotated_plan(store, query):
    plan = build_default_plan(query)
    cleanup_plan(plan)
    CostEstimator(store).estimate(plan)
    return plan


@pytest.mark.parametrize("axis,query", AXIS_QUERIES.items(), ids=AXIS_QUERIES.keys())
def test_table1_bound_vs_actual(benchmark, document, axis, query):
    store = document.store
    plan = annotated_plan(store, query)
    top = plan.root.context_child
    bound = top.cost.raw_out
    actual = run_once(benchmark, lambda: sum(1 for _ in execute_plan(plan, store)))
    print(f"\nTable I {axis:20s} bound={bound:7d} actual={actual:7d} {query}")
    if axis in _SOUND:
        assert bound >= actual
    assert bound >= 0


@pytest.mark.parametrize("axis,query", AXIS_QUERIES.items(), ids=AXIS_QUERIES.keys())
def test_table1_estimation_speed(benchmark, document, axis, query):
    """Estimation must be index-only and cheap — this is what makes the
    optimizer's per-rule re-costing affordable."""
    store = document.store
    plan = build_default_plan(query)
    cleanup_plan(plan)
    estimator = CostEstimator(store)
    benchmark(lambda: estimator.estimate(plan))
    store.reset_metrics()
    estimator.estimate(plan)
    assert store.io_snapshot()["record_fetches"] == 0
