"""Ablation: drop each rewrite rule and measure what it costs.

Not in the paper, but it answers the natural question its Section VI
raises: which rules carry the speedups on which query?  For each paper
query we run the optimizer with each single rule removed and report the
measured index work of the resulting plan.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES, run_once
from repro.bench.corpus import get_corpus_document
from repro.engine.engine import VamanaEngine
from repro.algebra.execution import execute_plan
from repro.optimizer.rules import DEFAULT_RULES

PAPER_QUERIES = {
    "Q1": "//person/address",
    "Q2": "//watches/watch/ancestor::person",
    "Q3": "/descendant::name/parent::*/self::person/address",
    "Q4": "//itemref/following-sibling::price/parent::*",
    "Q5": "//province[text()='Vermont']/ancestor::person",
}

#: Which ablation must hurt which query (the load-bearing rule).
LOAD_BEARING = {
    "Q2": "duplicate-elimination",
    "Q5": "value-index",
}


@pytest.fixture(scope="module")
def document():
    return get_corpus_document(max(SIZES))


def work_without(document, query, dropped_rule: str | None):
    rules = tuple(rule for rule in DEFAULT_RULES if rule.name != dropped_rule)
    engine = VamanaEngine(document.store, rules=rules)
    plan, _trace = engine.plan(query, optimize=True)
    document.store.reset_metrics()
    result = set(execute_plan(plan, document.store))
    snapshot = document.store.io_snapshot()
    return len(result), snapshot["logical_reads"] + snapshot["entries_scanned"]


@pytest.mark.parametrize("label,query", PAPER_QUERIES.items(), ids=PAPER_QUERIES.keys())
def test_rule_ablation(benchmark, document, label, query):
    full_count, full_work = run_once(benchmark, lambda: work_without(document, query, None))
    print(f"\n{label}: full library work={full_work}")
    for rule in DEFAULT_RULES:
        count, work = work_without(document, query, rule.name)
        print(f"  - without {rule.name:25s} work={work}")
        assert count == full_count, "ablation changed results"
        # removing a rule can never *help*: the library is cost-gated
        assert work >= full_work * 0.95 - 10


@pytest.mark.parametrize("label", list(LOAD_BEARING), ids=list(LOAD_BEARING))
def test_load_bearing_rules_matter(benchmark, document, label):
    query = PAPER_QUERIES[label]
    rule_name = LOAD_BEARING[label]
    _count, full_work = work_without(document, query, None)
    _count2, ablated_work = run_once(
        benchmark, lambda: work_without(document, query, rule_name)
    )
    assert ablated_work > full_work, (
        f"{rule_name} should be load-bearing for {label}: "
        f"{ablated_work} vs {full_work}"
    )


@pytest.mark.parametrize("label,query", PAPER_QUERIES.items(), ids=PAPER_QUERIES.keys())
def test_full_library_benchmark(benchmark, document, label, query):
    engine = VamanaEngine(document.store)
    plan, _trace = engine.plan(query, optimize=True)
    benchmark(lambda: engine.execute(plan))
