#!/usr/bin/env python
"""Concurrent-serving benchmark harness (QPS and tail latency under load).

Thin executable wrapper over :mod:`repro.bench.serving`; the same harness
backs the ``repro bench-serving`` CLI subcommand.

Run:  PYTHONPATH=src python benchmarks/serving.py [--quick] [-o out.json]
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench-serving", *sys.argv[1:]]))
