"""Figure 15 — Q4: ``//itemref/following-sibling::price/parent::*``.

Paper shape: the sibling axis knocks engines out — Galax and eXist have
*no data points at all* (missing axis), Jaxen runs but only below its
size ceiling; VAMANA (which supports all 13 axes) runs everywhere and
fastest.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES, bench_query, figure_summary, run_once, seconds
from repro.bench.runner import ENGINE_NAMES
from repro.bench.reporting import supported_sizes

QUERY = "//itemref/following-sibling::price/parent::*"


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_fig15_cell(benchmark, engine, size):
    bench_query(benchmark, engine, QUERY, size)


def test_fig15_shape(benchmark):
    outcomes = run_once(benchmark, lambda: figure_summary("Figure 15 - Q4 (seconds)", QUERY))
    # engines lacking following-sibling have empty series
    assert supported_sizes(outcomes, "galax") == []
    assert supported_sizes(outcomes, "exist") == []
    # jaxen runs, but only below its cap
    jaxen_sizes = supported_sizes(outcomes, "jaxen")
    assert jaxen_sizes and all(size < 10 for size in jaxen_sizes)
    # VAMANA covers the full axis range and beats jaxen where both run
    assert supported_sizes(outcomes, "VQP-OPT") == list(SIZES)
    for size in jaxen_sizes:
        assert seconds(outcomes, size, "VQP-OPT") < seconds(outcomes, size, "jaxen")
