"""Figure 16 — Q5: ``//province[text()='Vermont']/ancestor::person``.

Paper shape: "in comparison with eXist for query Q5, VAMANA performs
nearly 100% faster" — the value predicate forces eXist back to
memory-based tree traversal while VAMANA answers it with one value-index
probe.  We assert VAMANA ≥ 2x faster than the eXist stand-in wherever
both run.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES, bench_query, figure_summary, run_once, seconds
from repro.bench.runner import ENGINE_NAMES
from repro.bench.reporting import supported_sizes

QUERY = "//province[text()='Vermont']/ancestor::person"


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_fig16_cell(benchmark, engine, size):
    bench_query(benchmark, engine, QUERY, size)


def test_fig16_shape(benchmark):
    outcomes = run_once(benchmark, lambda: figure_summary("Figure 16 - Q5 (seconds)", QUERY))
    exist_sizes = supported_sizes(outcomes, "exist")
    assert exist_sizes, "the eXist profile supports ancestor + value predicates"
    for size in exist_sizes:
        vamana = seconds(outcomes, size, "VQP-OPT")
        exist = seconds(outcomes, size, "exist")
        assert vamana * 2 <= exist, (
            f"expected VAMANA >= 2x faster than eXist at {size} MB: "
            f"{vamana:.5f}s vs {exist:.5f}s"
        )
    assert supported_sizes(outcomes, "VQP-OPT") == list(SIZES)


def test_fig16_exist_fallback_is_the_cause(benchmark):
    """The asymmetry is the documented mechanism: eXist's fallback walks
    element subtrees while VAMANA's value index probes once."""
    from repro.bench.corpus import get_corpus_document
    from repro.bench.runner import prepare_engine

    document = get_corpus_document(max(size for size in SIZES if size < 20))
    exist = prepare_engine("exist", document)
    exist.reset_metrics()
    run_once(benchmark, lambda: exist.evaluate(QUERY))
    assert exist.fallback_nodes > 0

    vamana = prepare_engine("VQP-OPT", document)
    plan, trace = vamana.plan(QUERY, optimize=True)
    assert trace.entries and trace.entries[0].rule == "value-index"
    document.store.reset_metrics()
    vamana.execute(plan)
    snapshot = document.store.io_snapshot()
    assert snapshot["entries_scanned"] < exist.fallback_nodes
