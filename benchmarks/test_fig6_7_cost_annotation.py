"""Figures 6 & 7 — cost annotation of the running examples.

Built on the calibrated factor-0.1 document (the paper's "10 MB"
``auction.xml``), independent of ``REPRO_BENCH_SCALE``: the annotations
must read COUNT(name)=4825, COUNT(person)=2550, COUNT(address)=1256 and
TC('Yung Flach')=1 exactly, and producing them must be index-only.
"""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.xmark.generator import generate_document
from repro.algebra.builder import build_default_plan
from repro.cost.estimator import CostEstimator
from repro.optimizer.cleanup import cleanup_plan
from benchmarks.conftest import run_once

Q1 = "descendant::name/parent::*/self::person/address"
Q2 = "//name[text() = 'Yung Flach']/following-sibling::emailaddress"


@pytest.fixture(scope="module")
def store():
    return load_xml(generate_document(0.1, seed=42), name="paper-10mb")


def chain(plan):
    nodes = []
    node = plan.root.context_child
    while node is not None:
        nodes.append(node)
        node = node.context_child
    return nodes


def test_figure6_annotation(benchmark, store):
    plan = build_default_plan(Q1)
    cleanup_plan(plan)
    run_once(benchmark, lambda: CostEstimator(store).estimate(plan))
    print("\n" + plan.explain())
    address, person, name = chain(plan)
    assert (name.cost.count, name.cost.tuples_in, name.cost.tuples_out) == (4825, 4825, 4825)
    assert (person.cost.count, person.cost.tuples_in, person.cost.tuples_out) == (2550, 4825, 4825)
    assert (address.cost.count, address.cost.tuples_in, address.cost.tuples_out) == (1256, 4825, 1256)


def test_figure7_annotation(benchmark, store):
    plan = build_default_plan(Q2)
    run_once(benchmark, lambda: CostEstimator(store).estimate(plan))
    print("\n" + plan.explain())
    sibling, name = chain(plan)
    assert (name.cost.count, name.cost.tuples_in, name.cost.tuples_out) == (4825, 4825, 1)
    beta = name.predicates[0]
    assert (beta.cost.tuples_in, beta.cost.tuples_out, beta.cost.text_count) == (4825, 1, 1)
    assert (sibling.cost.tuples_in, sibling.cost.tuples_out) == (1, 1)


def test_annotation_speed(benchmark, store):
    """Costing a plan is O(log n) counts: microseconds, not query time."""
    plan = build_default_plan(Q1)
    cleanup_plan(plan)
    estimator = CostEstimator(store)
    benchmark(lambda: estimator.estimate(plan))


def test_annotation_is_index_only(benchmark, store):
    plan = build_default_plan(Q2)
    store.reset_metrics()
    run_once(benchmark, lambda: CostEstimator(store).estimate(plan))
    snapshot = store.io_snapshot()
    assert snapshot["record_fetches"] == 0
    assert snapshot["entries_scanned"] == 0
