"""Figure 14 — Q3: ``/descendant::name/parent::*/self::person/address``.

This is the figure the paper uses to show "the VAMANA optimizer each time
generates an optimized query plan that runs faster than the default plan":
the interesting series are VQP vs VQP-OPT (clean-up + reverse-axis +
push-down ending at ``//address[parent::person[child::name]]``).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES, bench_query, figure_summary, run_once, seconds
from repro.bench.runner import ENGINE_NAMES
from repro.bench.reporting import supported_sizes

QUERY = "/descendant::name/parent::*/self::person/address"


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_fig14_cell(benchmark, engine, size):
    bench_query(benchmark, engine, QUERY, size)


def test_fig14_shape(benchmark):
    outcomes = run_once(benchmark, lambda: figure_summary("Figure 14 - Q3 (seconds)", QUERY))
    # the optimized plan is faster than the default at every size — the
    # figure's core message (allow measurement jitter at sub-ms scales)
    for size in SIZES:
        assert seconds(outcomes, size, "VQP-OPT") <= seconds(outcomes, size, "VQP") * 1.2
    # and clearly faster at the largest size
    largest = max(SIZES)
    assert seconds(outcomes, largest, "VQP-OPT") < seconds(outcomes, largest, "VQP")
    assert supported_sizes(outcomes, "VQP-OPT") == list(SIZES)


def test_fig14_rewrite_sequence_matches_paper(benchmark):
    from repro.bench.corpus import get_corpus_document
    from repro.bench.runner import prepare_engine

    engine = prepare_engine("VQP-OPT", get_corpus_document(max(SIZES)))
    _plan, trace = run_once(benchmark, lambda: engine.plan(QUERY, optimize=True))
    assert [entry.rule for entry in trace.entries] == [
        "reverse-axis",
        "predicate-pushdown",
    ]
