"""Shared benchmark fixtures and helpers.

Figures 12-16 sweep the paper's document-size axis for five engines.  The
corpus is cached per process (see :mod:`repro.bench.corpus`); set
``REPRO_BENCH_SCALE=1.0`` for the paper's full sizes or
``REPRO_BENCH_SIZES=1,5`` to narrow the axis.
"""

from __future__ import annotations

import pytest

from repro.bench.corpus import corpus_sizes, get_corpus_document
from repro.bench.runner import ENGINE_NAMES, prepare_engine, run_all_engines
from repro.bench.reporting import format_figure_table
from repro.errors import DocumentTooLargeError, UnsupportedFeatureError

SIZES = corpus_sizes()


def engine_callable(engine_name: str, query: str, document):
    """A zero-arg callable running one query once, or None if unsupported."""
    try:
        engine = prepare_engine(engine_name, document)
    except DocumentTooLargeError:
        return None
    if engine_name in ("VQP", "VQP-OPT"):
        optimize = engine_name == "VQP-OPT"
        plan, _trace = engine.plan(query, optimize)

        def run():
            return engine.execute(plan)

    else:

        def run():
            return engine.evaluate(query)

    try:
        run()  # probe once: unsupported axes raise here
    except UnsupportedFeatureError:
        return None
    return run


def bench_query(benchmark, engine_name: str, query: str, size_mb: int):
    """Benchmark one (engine, query, size) cell; skip missing data points."""
    document = get_corpus_document(size_mb)
    run = engine_callable(engine_name, query, document)
    if run is None:
        pytest.skip(f"{engine_name} has no data point at {size_mb} MB for {query!r}")
    result = benchmark(run)
    benchmark.extra_info["result_count"] = len(result)
    benchmark.extra_info["nominal_mb"] = size_mb


def run_once(benchmark, func):
    """Register ``func`` as a single-shot benchmark and return its value.

    Shape/summary checks must still run under ``--benchmark-only`` (which
    skips tests that never touch the benchmark fixture), but repeating a
    whole figure sweep dozens of times would be wasteful — one measured
    round is enough.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)


def figure_summary(title: str, query: str, capsys=None) -> dict:
    """A best-of-3 pass over the whole figure; prints the paper-style table."""
    outcomes = {
        size: run_all_engines(query, get_corpus_document(size), repeats=3)
        for size in SIZES
    }
    table = format_figure_table(title, outcomes, ENGINE_NAMES)
    print()
    print(table)
    return outcomes


def seconds(outcomes, size, engine):
    outcome = next(o for o in outcomes[size] if o.engine == engine)
    return outcome.seconds if outcome.supported else None
