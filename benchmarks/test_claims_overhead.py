"""Section VIII claims: optimization overhead is negligible and the
optimized plan is never slower than the default plan."""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import SIZES, run_once
from repro.bench.corpus import get_corpus_document
from repro.bench.runner import prepare_engine

PAPER_QUERIES = [
    "//person/address",
    "//watches/watch/ancestor::person",
    "/descendant::name/parent::*/self::person/address",
    "//itemref/following-sibling::price/parent::*",
    "//province[text()='Vermont']/ancestor::person",
]


@pytest.fixture(scope="module")
def document():
    return get_corpus_document(max(SIZES))


@pytest.mark.parametrize("query", PAPER_QUERIES, ids=["Q1", "Q2", "Q3", "Q4", "Q5"])
def test_optimization_overhead(benchmark, document, query):
    """Benchmark compile+optimize alone (the added cost of VQP-OPT)."""
    engine = prepare_engine("VQP-OPT", document)

    def compile_and_optimize():
        plan = engine.compile(query)
        return engine.optimize(plan)

    benchmark(compile_and_optimize)


@pytest.mark.parametrize("query", PAPER_QUERIES, ids=["Q1", "Q2", "Q3", "Q4", "Q5"])
def test_overhead_is_negligible_vs_default_execution(benchmark, document, query):
    """optimize_time << default-plan execution time on the largest corpus
    document (the 'negligible optimization overhead' claim)."""
    engine = prepare_engine("VQP-OPT", document)
    plan = engine.compile(query)
    started = time.perf_counter()
    optimized, trace = run_once(benchmark, lambda: engine.optimize(plan))
    optimize_seconds = time.perf_counter() - started

    default_result = engine.execute(plan)
    # overhead under half of one default execution (paper: negligible)
    assert optimize_seconds < max(default_result.metrics.wall_seconds * 0.5, 0.02)


@pytest.mark.parametrize("query", PAPER_QUERIES, ids=["Q1", "Q2", "Q3", "Q4", "Q5"])
def test_never_slower_even_with_overhead(benchmark, document, query):
    """total(optimize + optimized run) <= default run, with jitter slack."""
    engine = prepare_engine("VQP-OPT", document)
    default_plan, _ = engine.plan(query, optimize=False)
    optimized_plan, trace = engine.plan(query, optimize=True)

    def best_of(plan, repeats=3):
        return min(engine.execute(plan).metrics.wall_seconds for _ in range(repeats))

    default_seconds = best_of(default_plan)
    optimized_seconds = run_once(benchmark, lambda: best_of(optimized_plan))
    assert optimized_seconds <= default_seconds * 1.25 + 0.002
