"""Figure 13 — Q2: ``//watches/watch/ancestor::person`` vs document size.

Paper shape: the optimizer's duplicate-elimination rewrite
(``//watches[watch]/ancestor::person``) makes VQP-OPT faster than VQP;
VAMANA beats the DOM engines; eXist has no data points at all here in
spirit (ancestor is supported, so it runs, but loses), and the size caps
cut the jaxen/exist series short.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES, bench_query, figure_summary, run_once, seconds
from repro.bench.runner import ENGINE_NAMES
from repro.bench.reporting import supported_sizes

QUERY = "//watches/watch/ancestor::person"


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_fig13_cell(benchmark, engine, size):
    bench_query(benchmark, engine, QUERY, size)


def test_fig13_shape(benchmark):
    outcomes = run_once(benchmark, lambda: figure_summary("Figure 13 - Q2 //watches/watch/ancestor::person (seconds)", QUERY))
    dom_largest = max(supported_sizes(outcomes, "galax"))
    assert seconds(outcomes, dom_largest, "VQP-OPT") < seconds(outcomes, dom_largest, "galax")
    for size in SIZES:
        # dup-elimination reduces the ancestor step's input: OPT <= default
        assert seconds(outcomes, size, "VQP-OPT") <= seconds(outcomes, size, "VQP") * 1.5
    assert supported_sizes(outcomes, "VQP") == list(SIZES)
    assert all(size < 10 for size in supported_sizes(outcomes, "jaxen"))


def test_fig13_duplicate_elimination_reduces_tuples(benchmark):
    from repro.bench.corpus import get_corpus_document
    from repro.bench.runner import prepare_engine
    from repro.algebra.execution import execute_plan

    document = get_corpus_document(max(SIZES))
    engine = prepare_engine("VQP-OPT", document)
    default_plan, _ = engine.plan(QUERY, optimize=False)
    optimized_plan, trace = engine.plan(QUERY, optimize=True)
    assert "duplicate-elimination" in [entry.rule for entry in trace.entries]
    raw_default = sum(1 for _ in execute_plan(default_plan, document.store))
    raw_optimized = run_once(
        benchmark, lambda: sum(1 for _ in execute_plan(optimized_plan, document.store))
    )
    assert raw_optimized < raw_default
