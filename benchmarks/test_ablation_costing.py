"""Ablation: counted-B+-tree costing vs scan-based costing.

DESIGN.md calls out the counted B+-tree as the enabler of cheap, always
exact statistics.  This bench quantifies it: COUNT via the counted
descent (O(log n)) against COUNT via an index scan (O(matches)) and
against what a DOM engine would do (O(document)).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES, run_once
from repro.bench.corpus import get_corpus_document
from repro.model import NodeTest


@pytest.fixture(scope="module")
def store():
    return get_corpus_document(max(SIZES)).store


def scan_count(store, name: str) -> int:
    """The ablated alternative: count by scanning the name index run."""
    return sum(1 for _ in store.name_index.scan(name))


class TestCountedVsScan:
    @pytest.mark.parametrize("name", ["person", "name", "bidder", "province"])
    def test_counts_agree(self, benchmark, store, name):
        assert run_once(benchmark, lambda: store.count(NodeTest.name_test(name))) == scan_count(store, name)

    @pytest.mark.parametrize("name", ["person", "name"])
    def test_counted_descent_benchmark(self, benchmark, store, name):
        test = NodeTest.name_test(name)
        benchmark(lambda: store.count(test))

    @pytest.mark.parametrize("name", ["person", "name"])
    def test_scan_count_benchmark(self, benchmark, store, name):
        benchmark(lambda: scan_count(store, name))

    def test_counted_descent_touches_logarithmic_entries(self, benchmark, store):
        store.reset_metrics()
        run_once(benchmark, lambda: store.count(NodeTest.name_test("name")))
        counted = store.io_snapshot()["entries_scanned"]
        store.reset_metrics()
        scan_count(store, "name")
        scanned = store.io_snapshot()["entries_scanned"]
        print(f"\ncounted descent entries={counted}, scan entries={scanned}")
        assert counted == 0
        assert scanned >= store.count(NodeTest.name_test("name"))


class TestTextCount:
    def test_tc_benchmark(self, benchmark, store):
        benchmark(lambda: store.text_count("Yung Flach"))

    def test_tc_is_probe_not_scan(self, benchmark, store):
        store.reset_metrics()
        run_once(benchmark, lambda: store.text_count("Yung Flach"))
        assert store.io_snapshot()["entries_scanned"] == 0
