#!/usr/bin/env python
"""Hot-path microbenchmark harness (byte-encoded vs tuple-compared keys).

Thin executable wrapper over :mod:`repro.bench.hotpath`; the same harness
backs the ``repro bench-hotpath`` CLI subcommand.

Run:  PYTHONPATH=src python benchmarks/hotpath.py [--quick] [-o out.json]
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench-hotpath", *sys.argv[1:]]))
