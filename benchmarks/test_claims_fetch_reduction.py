"""Section VIII claim: the optimized Q1 'reduces cost by at least 40%'.

The paper counts fetch operations: the default plan fetches an address
per person (2550 persons for 1256 addresses on the 10 MB document,
"twice as many fetch operations"), while ``//address[parent::person]``
drives the scan off the smaller address population.  We measure index
work (page touches + entries scanned) and require the 40% cut.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES, run_once
from repro.bench.corpus import get_corpus_document
from repro.bench.runner import prepare_engine
from repro.algebra.execution import execute_plan

QUERY = "//person/address"


def index_work(store, plan):
    store.reset_metrics()
    count = sum(1 for _ in execute_plan(plan, store))
    snapshot = store.io_snapshot()
    return count, snapshot["logical_reads"] + snapshot["entries_scanned"]


@pytest.mark.parametrize("size", SIZES)
def test_q1_fetch_reduction(benchmark, size):
    document = get_corpus_document(size)
    engine = prepare_engine("VQP-OPT", document)
    default_plan, _ = engine.plan(QUERY, optimize=False)
    optimized_plan, _ = engine.plan(QUERY, optimize=True)
    default_count, default_work = index_work(document.store, default_plan)
    optimized_count, optimized_work = run_once(
        benchmark, lambda: index_work(document.store, optimized_plan)
    )
    assert default_count == optimized_count
    print(
        f"\nQ1 @ {size}MB label: default work={default_work}, "
        f"optimized work={optimized_work} "
        f"({100 * (1 - optimized_work / default_work):.1f}% reduction)"
    )
    # >= 30% at every corpus size; the full 40% of the paper is asserted at
    # the paper's own scale (factor 0.1) in tests/optimizer/test_paper_rewrites.py,
    # where it holds — at the scaled-down bench sizes tree-height effects
    # make the cut fluctuate between ~33% and ~46%.
    assert optimized_work <= 0.7 * default_work


def test_q1_work_benchmark(benchmark):
    document = get_corpus_document(max(SIZES))
    engine = prepare_engine("VQP-OPT", document)
    optimized_plan, _ = engine.plan(QUERY, optimize=True)
    benchmark(lambda: engine.execute(optimized_plan))
