"""Database: multiple documents, cross-document counts and queries."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.model import NodeTest
from repro.engine.database import Database


@pytest.fixture
def database():
    db = Database()
    db.add_document("east", "<site><person><name>Ada</name></person></site>")
    db.add_document(
        "west",
        "<site><person><name>Grace</name></person><person><name>Ada</name></person></site>",
    )
    return db


class TestDocumentManagement:
    def test_documents_listed(self, database):
        assert database.documents() == ["east", "west"]
        assert len(database) == 2
        assert "east" in database and "north" not in database

    def test_duplicate_name_rejected(self, database):
        with pytest.raises(ReproError):
            database.add_document("east", "<a/>")

    def test_unknown_document_rejected(self, database):
        with pytest.raises(ReproError):
            database.store("north")
        with pytest.raises(ReproError):
            database.engine("north")

    def test_drop_document(self, database):
        database.drop_document("east")
        assert database.documents() == ["west"]
        with pytest.raises(ReproError):
            database.drop_document("east")

    def test_add_existing_store(self, database, small_store):
        database.add_store("small", small_store)
        assert database.store("small") is small_store


class TestQueries:
    def test_per_document_query(self, database):
        results = database.evaluate("//person", document="west")
        assert set(results) == {"west"}
        assert len(results["west"]) == 2

    def test_all_documents_query(self, database):
        results = database.evaluate("//person")
        assert len(results["east"]) == 1
        assert len(results["west"]) == 2

    def test_database_wide_count(self, database):
        assert database.count(NodeTest.name_test("person")) == 3
        assert database.count(NodeTest.name_test("person"), document="east") == 1

    def test_database_wide_text_count(self, database):
        assert database.text_count("Ada") == 2
        assert database.text_count("Ada", document="west") == 1
        assert database.text_count("Grace", document="east") == 0

    def test_iter_stores(self, database):
        names = [name for name, _store in database.iter_stores()]
        assert names == ["east", "west"]

    def test_unoptimized_evaluation(self, database):
        results = database.evaluate("//person/name", optimize=False)
        assert len(results["west"]) == 2
