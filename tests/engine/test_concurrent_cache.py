"""Thread-safety regression for the engine plan cache (8-thread hammer).

Before the cache was put under a lock, concurrent ``evaluate`` calls
could interleave dict mutation mid-eviction or double-compile the same
expression.  The hammer checks both: results stay correct under eight
threads, and each distinct (expression, options) key compiles exactly
once — every other lookup is a hit.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.engine import VamanaEngine
from repro.mass.loader import load_xml

DOC = """<site>
<people>
<person><name>Ada</name><age>36</age></person>
<person><name>Bob</name><age>41</age></person>
<person><name>Cyd</name></person>
</people>
<items><item><price>7</price></item><item><price>9</price></item></items>
</site>"""

EXPRESSIONS = {
    "//person/name": 3,
    "//person[age]/name": 2,
    "//item/price": 2,
    "/site//name": 3,
    "//person": 3,
}

THREADS = 8
ROUNDS = 25


def hammer(engine, errors):
    barrier = threading.Barrier(THREADS)

    def worker() -> None:
        try:
            barrier.wait(timeout=30)
            for _ in range(ROUNDS):
                for expression, count in EXPRESSIONS.items():
                    if len(engine.evaluate(expression)) != count:
                        errors.append(f"wrong cardinality for {expression!r}")
        except Exception as error:  # noqa: BLE001 - the test reports it
            errors.append(repr(error))

    threads = [threading.Thread(target=worker) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "hammer thread hung"


def test_eight_thread_hammer_no_corruption_no_double_compiles():
    engine = VamanaEngine(load_xml(DOC, name="hammer"))
    errors: list[str] = []
    hammer(engine, errors)
    assert not errors, errors[:5]
    # Exactly one compile per distinct expression; every other plan
    # lookup across all threads was served from the cache.
    total = THREADS * ROUNDS * len(EXPRESSIONS)
    assert engine.plan_cache_misses == len(EXPRESSIONS)
    assert engine.plan_cache_hits == total - len(EXPRESSIONS)


def test_hammer_with_tiny_cache_still_correct():
    # Constant eviction pressure: misses are allowed, corruption is not.
    engine = VamanaEngine(load_xml(DOC, name="hammer-tiny"), plan_cache_size=2)
    errors: list[str] = []
    hammer(engine, errors)
    assert not errors, errors[:5]
    total = THREADS * ROUNDS * len(EXPRESSIONS)
    assert engine.plan_cache_hits + engine.plan_cache_misses == total
